//! `dasched` — command-line front end for the scheduling toolkit.
//!
//! ```text
//! dasched run        --graph grid:8x8 --workload mixed:18 --scheduler private [--seed 42]
//! dasched plan       --graph grid:8x8 --workload mixed:18 --scheduler uniform [--sched-seed 7] [--out plan.json]
//!                    [--in plan.json] [--execute] [--shards N] [--engine row|columnar|batched]
//!                    [--dump-outcome FILE] [--reuse-artifact]
//! dasched plan       --graph grid:8x8 --workload mixed:18 --diff a.json b.json
//! dasched trace      --graph grid:8x8 --workload mixed:18 --scheduler uniform [--sched-seed 7]
//!                    [--shards N] [--export chrome|jsonl|text] [--top K] [--out trace.json]
//!                    [--serve [ADDR]] [--keep-open] [--dump-outcome FILE]
//! dasched compare    --graph path:100 --workload segments:32:14 [--seed 42]
//! dasched carve      --graph grid:10x10 --dilation 3 [--layers 20] [--seed 42]
//! dasched lowerbound --layers 6 --eta 64 --k 32 --p 0.12 [--seed 42]
//! dasched mst        --graph gnp:100:0.05 [--cap 8] [--k 4] [--seed 42]
//! dasched coordinator --graph grid:8x8 --workload mixed:18 --scheduler uniform --workers 3
//!                    [--seed 42] [--sched-seed 7] [--listen 127.0.0.1:0] [--timeout-ms 30000]
//!                    [--dump-outcome FILE] [--serve-obs ADDR] [--keep-open]
//! dasched worker     --graph grid:8x8 --workload mixed:18 --connect HOST:PORT [--seed 42]
//!                    [--timeout-ms 30000]
//! dasched serve      --graph grid:8x8 [--scheduler uniform] [--seed 42] [--listen 127.0.0.1:0]
//!                    [--batch 4] [--batch-wait-ms 50] [--pool 2] [--engine row|columnar|batched]
//!                    [--max-dilation N] [--max-congestion N] [--max-payload N]
//!                    [--serve-obs ADDR] [--timeout-ms 30000]
//! dasched loadgen    --graph grid:8x8 --connect HOST:PORT [--seed 42] [--clients 2] [--jobs 8]
//!                    [--depth 6] [--check] [--reject-every N] [--out bench.json]
//!                    [--dump-outputs FILE] [--timeout-ms 30000]
//! ```
//!
//! `coordinator`/`worker` run one plan across OS processes: the
//! coordinator listens, partitions, and relays cross-shard traffic at
//! big-round boundaries; each worker must be launched with the *same*
//! graph/workload/seed flags (enforced by a handshake fingerprint). The
//! outcome is byte-identical to `plan --execute` on the same flags.
//!
//! `serve` keeps a scheduling daemon alive: clients SUBMIT jobs with
//! declared budgets, admission compares them against the advertised
//! capacity (content-free — see DESIGN.md), admitted jobs are batched
//! into DAS instances, and each RESULT carries outputs byte-identical to
//! a one-shot `plan --execute` of the same jobs under the same seed.
//! `loadgen` drives a daemon with deterministic concurrent job streams
//! and reports sustained jobs/sec plus latency quantiles.
//!
//! Graph specs: `path:N`, `cycle:N`, `grid:RxC`, `gnp:N:P`, `tree:N:ARITY`,
//! `expander:N:D`, `star:N`, `hypercube:D`.
//! Workload specs: `mixed:K[:DEPTH]`, `floods:K[:DEPTH]`, `relays:K`,
//! `segments:K:SEG`, `bfs:K[:DEPTH]`, `routing:K`.

use dasched::algos::bfs::HopBfs;
use dasched::algos::broadcast::SingleBroadcast;
use dasched::algos::mst::{EdgeWeights, MstAlgorithm};
use dasched::algos::routing::RoutingInstance;
use dasched::cluster::{quality, CarveConfig, Clustering};
use dasched::core::plan::analysis as plan_analysis;
use dasched::core::plan::diff::PlanDiff;
use dasched::core::synthetic::{FloodBall, RelayChain};
use dasched::core::{
    execute_plan_networked, execute_plan_sharded_with, execute_plan_with, install_ctrl_c,
    run_loadgen, run_traced_live, run_worker, verify, BlackBoxAlgorithm, Capacity, DasProblem,
    EngineKind, ExecutorConfig, InterleaveScheduler, LoadgenConfig, NetConfig, PrivateScheduler,
    SchedulePlan, Scheduler, SequentialScheduler, ServeConfig, TunedUniformScheduler,
    UniformScheduler,
};
use dasched::graph::{generators, Graph, NodeId};
use dasched::lowerbound::{analysis, search, HardInstance, HardInstanceParams};
use dasched::obs::{LiveHub, ObsServer};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dasched run        --graph SPEC --workload SPEC --scheduler NAME [--seed N]
  dasched plan       --graph SPEC --workload SPEC --scheduler NAME [--seed N] [--sched-seed N] [--out FILE]
                     [--in FILE] [--execute] [--shards N] [--engine row|columnar|batched]
                     [--dump-outcome FILE] [--reuse-artifact]
  dasched plan       --graph SPEC --workload SPEC --diff A.json B.json
  dasched trace      --graph SPEC --workload SPEC --scheduler NAME [--seed N] [--sched-seed N]
                     [--shards N] [--export chrome|jsonl|text] [--top K] [--out FILE]
                     [--serve [ADDR]] [--keep-open] [--dump-outcome FILE]
  dasched compare    --graph SPEC --workload SPEC [--seed N]
  dasched carve      --graph SPEC --dilation D [--layers L] [--seed N]
  dasched lowerbound --layers L --eta E --k K --p P [--seed N]
  dasched mst        --graph SPEC [--cap C] [--k K] [--seed N]
  dasched coordinator --graph SPEC --workload SPEC --scheduler NAME --workers N [--seed N]
                     [--sched-seed N] [--listen ADDR] [--timeout-ms N] [--dump-outcome FILE]
                     [--serve-obs ADDR] [--keep-open]
  dasched worker     --graph SPEC --workload SPEC --connect HOST:PORT [--seed N] [--timeout-ms N]
  dasched serve      --graph SPEC [--scheduler NAME] [--seed N] [--listen ADDR] [--batch N]
                     [--batch-wait-ms N] [--pool N] [--engine row|columnar|batched]
                     [--max-dilation N] [--max-congestion N] [--max-payload N]
                     [--serve-obs ADDR] [--timeout-ms N]
  dasched loadgen    --graph SPEC --connect HOST:PORT [--seed N] [--clients N] [--jobs N]
                     [--depth N] [--check] [--reject-every N] [--out FILE]
                     [--dump-outputs FILE] [--timeout-ms N]

graph specs:    path:N  cycle:N  grid:RxC  gnp:N:P  tree:N:ARITY
                expander:N:D  star:N  hypercube:D
workload specs: mixed:K[:DEPTH]  floods:K[:DEPTH]  relays:K
                segments:K:SEG  bfs:K[:DEPTH]  routing:K
schedulers:     sequential  interleave  uniform  tuned  private";

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    let opts = parse_flags(rest)?;
    let seed = opt_u64(&opts, "seed")?.unwrap_or(42);
    match cmd.as_str() {
        "run" => cmd_run(&opts, seed),
        "plan" => cmd_plan(&opts, seed),
        "trace" => cmd_trace(&opts, seed),
        "compare" => cmd_compare(&opts, seed),
        "carve" => cmd_carve(&opts, seed),
        "lowerbound" => cmd_lowerbound(&opts, seed),
        "mst" => cmd_mst(&opts, seed),
        "coordinator" => cmd_coordinator(&opts, seed),
        "worker" => cmd_worker(&opts, seed),
        "serve" => cmd_serve(&opts, seed),
        "loadgen" => cmd_loadgen(&opts, seed),
        other => Err(format!("unknown command `{other}`")),
    }
}

// ---------------------------------------------------------------- parsing

/// Flags that take no value (present = set).
const BOOLEAN_FLAGS: &[&str] = &["execute", "reuse-artifact", "keep-open", "check"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{flag}`"))?;
        if BOOLEAN_FLAGS.contains(&name) {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        // --serve takes an *optional* bind address: consume the next token
        // only when it is not another flag, defaulting to an OS-chosen port
        if name == "serve" {
            let addr = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "127.0.0.1:0".to_string(),
            };
            out.insert("serve".to_string(), addr);
            continue;
        }
        // --diff is the one flag taking two values: the plan files A and B
        if name == "diff" {
            let a = it.next().ok_or("flag --diff needs two plan files")?;
            let b = it.next().ok_or("flag --diff needs two plan files")?;
            out.insert("diff-a".to_string(), a.clone());
            out.insert("diff-b".to_string(), b.clone());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing --{key}"))
}

fn opt_u64(opts: &HashMap<String, String>, key: &str) -> Result<Option<u64>, String> {
    opts.get(key)
        .map(|s| s.parse().map_err(|_| format!("--{key} must be a number")))
        .transpose()
}

/// Checked `usize` flag parse: out-of-range values are a usage error, not
/// a silent truncation (`opt_u64(...)? as usize` wrapped on 32-bit hosts).
fn opt_usize(opts: &HashMap<String, String>, key: &str) -> Result<Option<usize>, String> {
    opts.get(key)
        .map(|s| {
            s.parse()
                .map_err(|_| format!("--{key} must be a non-negative integer fitting usize"))
        })
        .transpose()
}

/// Checked `u32` flag parse; same contract as [`opt_usize`].
fn opt_u32(opts: &HashMap<String, String>, key: &str) -> Result<Option<u32>, String> {
    opts.get(key)
        .map(|s| {
            s.parse()
                .map_err(|_| format!("--{key} must be a non-negative integer fitting u32"))
        })
        .transpose()
}

/// Parses a shard/worker count flag. Zero is rejected at parse time: the
/// partitioner would silently clamp it to 1 and the run would be
/// misreported as what the user asked for.
fn opt_count(opts: &HashMap<String, String>, key: &str) -> Result<Option<usize>, String> {
    match opt_usize(opts, key)? {
        Some(0) => Err(format!("--{key} must be >= 1")),
        v => Ok(v),
    }
}

/// Reports when a requested shard/worker count exceeds the node count and
/// will run clamped, so the console record matches reality.
fn note_clamped(key: &str, requested: usize, n: usize) {
    if requested > n {
        println!("note: --{key} {requested} exceeds n={n}; running {n} effective shard(s)");
    }
}

/// Parses a graph spec like `grid:8x8` or `gnp:100:0.05`.
fn parse_graph(spec: &str, seed: u64) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let usize_at = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad graph spec `{spec}`"))
    };
    match parts[0] {
        "path" => Ok(generators::path(usize_at(1)?)),
        "cycle" => Ok(generators::cycle(usize_at(1)?)),
        "star" => Ok(generators::star(usize_at(1)?)),
        "hypercube" => Ok(generators::hypercube(usize_at(1)?)),
        "grid" => {
            let dims: Vec<&str> = parts
                .get(1)
                .ok_or_else(|| format!("bad graph spec `{spec}`"))?
                .split('x')
                .collect();
            let r: usize = dims
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad grid spec `{spec}`"))?;
            let c: usize = dims
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad grid spec `{spec}`"))?;
            Ok(generators::grid(r, c))
        }
        "tree" => Ok(generators::balanced_tree(usize_at(1)?, usize_at(2)?)),
        "expander" => Ok(generators::random_regular_expander(
            usize_at(1)?,
            usize_at(2)?,
            seed,
        )),
        "gnp" => {
            let n = usize_at(1)?;
            let p: f64 = parts
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad gnp spec `{spec}`"))?;
            Ok(generators::gnp_connected(n, p, seed))
        }
        other => Err(format!("unknown graph kind `{other}`")),
    }
}

/// Parses a workload spec like `mixed:18` into black boxes.
fn parse_workload(
    spec: &str,
    g: &Graph,
    seed: u64,
) -> Result<Vec<Box<dyn BlackBoxAlgorithm>>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let k: usize = parts
        .get(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad workload spec `{spec}` (need KIND:K)"))?;
    if k == 0 {
        return Err("workload needs k >= 1".into());
    }
    let n = g.node_count() as u64;
    let depth: u32 = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let src = |i: u64| NodeId(((i * 2654435761 + seed) % n) as u32);
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = match parts[0] {
        "floods" => (0..k as u64)
            .map(|i| Box::new(FloodBall::new(i, g, src(i), depth)) as Box<dyn BlackBoxAlgorithm>)
            .collect(),
        "bfs" => (0..k as u64)
            .map(|i| Box::new(HopBfs::new(i, g, src(i), depth)) as Box<dyn BlackBoxAlgorithm>)
            .collect(),
        "relays" => (0..k as u64)
            .map(|i| Box::new(RelayChain::new(i, g)) as Box<dyn BlackBoxAlgorithm>)
            .collect(),
        "segments" => {
            let seg: usize = parts
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or("segments needs KIND:K:SEG")?;
            if seg + 1 >= g.node_count() {
                return Err("segment longer than the path".into());
            }
            (0..k)
                .map(|i| {
                    let start = (i * 2) % (g.node_count() - seg - 1);
                    let route: Vec<NodeId> =
                        (start..=start + seg).map(|v| NodeId(v as u32)).collect();
                    Box::new(RelayChain::along(i as u64, g, route)) as Box<dyn BlackBoxAlgorithm>
                })
                .collect()
        }
        "routing" => RoutingInstance::random_shortest_paths(g, k, seed).algorithms(g),
        "mixed" => (0..k as u64)
            .map(|i| match i % 3 {
                0 => Box::new(HopBfs::new(i, g, src(i), depth)) as Box<dyn BlackBoxAlgorithm>,
                1 => Box::new(SingleBroadcast::new(i, g, src(i), depth)),
                _ => Box::new(FloodBall::new(i, g, src(i), depth)),
            })
            .collect(),
        other => return Err(format!("unknown workload kind `{other}`")),
    };
    Ok(algos)
}

fn parse_scheduler(name: &str) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "sequential" => Box::new(SequentialScheduler),
        "interleave" => Box::new(InterleaveScheduler),
        "uniform" => Box::new(UniformScheduler::default()),
        "tuned" => Box::new(TunedUniformScheduler::default()),
        "private" => Box::new(PrivateScheduler::default()),
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

// ---------------------------------------------------------------- commands

fn describe(problem: &DasProblem<'_>) -> Result<String, String> {
    let params = problem.parameters().map_err(|e| e.to_string())?;
    Ok(format!(
        "n={} k={} congestion={} dilation={} (trivial LB {})",
        problem.graph().node_count(),
        problem.k(),
        params.congestion,
        params.dilation,
        params.trivial_lower_bound()
    ))
}

fn report_one(name: &str, problem: &DasProblem<'_>, s: &dyn Scheduler) -> Result<(), String> {
    let outcome = s.run(problem).map_err(|e| e.to_string())?;
    let rep = verify::against_references(problem, &outcome).map_err(|e| e.to_string())?;
    println!(
        "{name:<12} schedule {:>6} rounds  precompute {:>6}  late {:>4}  correct {:>5.1}%",
        outcome.schedule_rounds(),
        outcome.precompute_rounds,
        outcome.stats.late_messages,
        rep.correctness_rate() * 100.0
    );
    Ok(())
}

fn cmd_run(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let algos = parse_workload(req(opts, "workload")?, &g, seed)?;
    let sched = parse_scheduler(req(opts, "scheduler")?)?;
    let problem = DasProblem::new(&g, algos, seed);
    println!("{}", describe(&problem)?);
    report_one(sched.name(), &problem, sched.as_ref())
}

fn cmd_plan(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let algos = parse_workload(req(opts, "workload")?, &g, seed)?;
    let problem = DasProblem::new(&g, algos, seed);
    if let Some(path_a) = opts.get("diff-a") {
        let path_b = opts.get("diff-b").expect("--diff parses both files");
        return diff_plans(&problem, path_a, path_b);
    }
    let plan = match opts.get("in") {
        Some(path) => {
            // deserialized plans are untrusted: validate before executing
            let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let plan = SchedulePlan::from_json(&json).map_err(|e| e.to_string())?;
            plan.validate(&problem).map_err(|e| e.to_string())?;
            println!("loaded plan from {path}");
            plan
        }
        None => {
            let sched = parse_scheduler(req(opts, "scheduler")?)?;
            let sched_seed =
                opt_u64(opts, "sched-seed")?.unwrap_or_else(|| sched.default_sched_seed());
            if opts.contains_key("reuse-artifact") {
                // the doubling path: build the guess-independent artifact
                // once, size the plan from it, and prove the split is
                // invisible against a from-scratch plan()
                let t = std::time::Instant::now();
                let artifact = sched
                    .build_artifact(&problem, sched_seed)
                    .map_err(|e| e.to_string())?;
                let build_us = t.elapsed().as_secs_f64() * 1e6;
                let t = std::time::Instant::now();
                let plan = sched
                    .size_plan(&problem, &artifact, None)
                    .map_err(|e| e.to_string())?;
                let size_us = t.elapsed().as_secs_f64() * 1e6;
                let scratch = sched
                    .plan(&problem, sched_seed)
                    .map_err(|e| e.to_string())?;
                if plan.to_json() != scratch.to_json() {
                    return Err(
                        "artifact-sized plan diverged from plan() — plan cache bug".to_string()
                    );
                }
                println!(
                    "artifact: built in {build_us:.1} µs, plan sized in {size_us:.1} µs \
                     (byte-identical to plan())"
                );
                plan
            } else {
                sched
                    .plan(&problem, sched_seed)
                    .map_err(|e| e.to_string())?
            }
        }
    };
    println!("{}", describe(&problem)?);
    println!(
        "plan: scheduler={} sched_seed={} phase_len={} units={} precompute={} predicted={} rounds",
        plan.scheduler,
        plan.sched_seed,
        plan.phase_len,
        plan.unit_count(),
        plan.precompute_rounds,
        plan.predicted_rounds
    );
    let load = plan_analysis::predict(&problem, &plan).map_err(|e| e.to_string())?;
    println!(
        "load: delivered={} late={} peak arc load/big-round={} max queue={} -> {}",
        load.predicted_delivered,
        load.predicted_late,
        load.peak_big_round_arc_load,
        load.predicted_max_arc_queue,
        if load.feasible() {
            "feasible"
        } else {
            "infeasible"
        }
    );
    if opts.contains_key("execute") {
        execute_planned(opts, &problem, &plan)?;
    }
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, plan.to_json()).map_err(|e| e.to_string())?;
            println!("wrote plan JSON to {path}");
        }
        None => println!("{}", plan.to_json()),
    }
    Ok(())
}

/// The `plan --diff A.json B.json` tail: load both plans, diff them
/// unit-by-unit, and print the per-phase predicted-load comparison.
fn diff_plans(problem: &DasProblem<'_>, path_a: &str, path_b: &str) -> Result<(), String> {
    let load = |path: &str| -> Result<SchedulePlan, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        SchedulePlan::from_json(&json).map_err(|e| format!("{path}: {e}"))
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    // validation happens inside `between`: deserialized plans are untrusted
    let diff = PlanDiff::between(problem, &a, &b).map_err(|e| e.to_string())?;
    print!("{}", diff.render());
    Ok(())
}

/// The `plan --execute` tail: run the plan (sharded when `--shards N > 1`,
/// with a fused-identity check and per-shard report) on the selected
/// engine (`--engine row|columnar|batched`, columnar by default), verify, and
/// honor `--dump-outcome`.
fn execute_planned(
    opts: &HashMap<String, String>,
    problem: &DasProblem<'_>,
    plan: &dasched::core::SchedulePlan,
) -> Result<(), String> {
    let shards = opt_count(opts, "shards")?.unwrap_or(1);
    note_clamped("shards", shards, problem.graph().node_count());
    let engine = parse_engine(opts, EngineKind::Columnar)?;
    let config = ExecutorConfig::default()
        .with_engine(engine)
        .with_phase_len(plan.phase_len);
    let t0 = std::time::Instant::now();
    let fused = execute_plan_with(problem, plan, &config).map_err(|e| e.to_string())?;
    let fused_ms = t0.elapsed().as_secs_f64() * 1e3;
    let outcome = if shards > 1 {
        let t1 = std::time::Instant::now();
        let (sharded, report) =
            execute_plan_sharded_with(problem, plan, &config.clone().with_shards(shards))
                .map_err(|e| e.to_string())?;
        let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "sharded: {} shards, {} cross-shard messages, wall {sharded_ms:.1} ms (fused {fused_ms:.1} ms)",
            report.shards, report.cross_shard_messages
        );
        for s in &report.per_shard {
            println!(
                "  shard {}: {} nodes (degree {}), steps {}, delivered {}, cross-sent {}, step {:.1} ms, drain {:.1} ms",
                s.shard,
                s.nodes,
                s.degree,
                s.steps,
                s.delivered,
                s.cross_sent,
                s.step_nanos as f64 / 1e6,
                s.drain_nanos as f64 / 1e6
            );
        }
        if format!("{fused:?}") != format!("{sharded:?}") {
            return Err("sharded outcome diverged from the fused execution".into());
        }
        println!("sharded outcome is byte-identical to the fused execution");
        sharded
    } else {
        println!("executed fused in {fused_ms:.1} ms");
        fused
    };
    let rep = verify::against_references(problem, &outcome).map_err(|e| e.to_string())?;
    println!(
        "executed: schedule {} rounds, precompute {}, late {}, correct {:.1}%",
        outcome.schedule_rounds(),
        outcome.precompute_rounds,
        outcome.stats.late_messages,
        rep.correctness_rate() * 100.0
    );
    if let Some(path) = opts.get("dump-outcome") {
        std::fs::write(path, format!("{outcome:?}")).map_err(|e| e.to_string())?;
        println!("wrote outcome debug dump to {path}");
    }
    if let Some(path) = opts.get("dump-outputs") {
        let entries: Vec<(u64, Vec<Option<Vec<u8>>>)> = outcome
            .outputs
            .iter()
            .enumerate()
            .map(|(i, outs)| (problem.algorithms()[i].aid().0, outs.clone()))
            .collect();
        std::fs::write(path, render_outputs(&entries)).map_err(|e| e.to_string())?;
        println!("wrote per-job outputs to {path}");
    }
    Ok(())
}

/// Parses `--engine row|columnar|batched` (shared by `plan --execute` and
/// `serve`), falling back to `default` when absent.
fn parse_engine(opts: &HashMap<String, String>, default: EngineKind) -> Result<EngineKind, String> {
    match opts.get("engine").map(String::as_str) {
        None => Ok(default),
        Some("columnar") => Ok(EngineKind::Columnar),
        Some("batched") => Ok(EngineKind::ColumnarBatched),
        Some("row") => Ok(EngineKind::Row),
        Some(other) => Err(format!(
            "unknown engine `{other}` (row, columnar, or batched)"
        )),
    }
}

/// Canonical per-job output dump: one line per `(job, node)` pair, keyed
/// by algorithm/job id so a served run and a one-shot run of the same job
/// set diff byte-identically regardless of batching.
fn render_outputs(entries: &[(u64, Vec<Option<Vec<u8>>>)]) -> String {
    let mut out = String::new();
    for (aid, outputs) in entries {
        for (v, bytes) in outputs.iter().enumerate() {
            out.push_str(&format!("job={aid} node={v} out="));
            match bytes {
                Some(b) => {
                    for byte in b {
                        out.push_str(&format!("{byte:02x}"));
                    }
                }
                None => out.push('-'),
            }
            out.push('\n');
        }
    }
    out
}

/// `dasched trace`: one fully observed plan → execute → verify run, with
/// the assembled report exported as a Chrome `trace_events` JSON (load it
/// at <https://ui.perfetto.dev>), a JSONL event stream, or a plain-text
/// hot-spot report. Status goes to stderr so stdout stays a clean export
/// when `--out` is not given.
fn cmd_trace(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let algos = parse_workload(req(opts, "workload")?, &g, seed)?;
    let problem = DasProblem::new(&g, algos, seed);
    let sched = parse_scheduler(req(opts, "scheduler")?)?;
    let sched_seed = opt_u64(opts, "sched-seed")?.unwrap_or_else(|| sched.default_sched_seed());
    let shards = opt_count(opts, "shards")?.unwrap_or(1);
    note_clamped("shards", shards, problem.graph().node_count());
    let top = opt_usize(opts, "top")?.unwrap_or(10);
    let export = opts.get("export").map(String::as_str).unwrap_or("chrome");

    let obs = dasched::obs::ObsConfig::full();
    if !obs.enabled() {
        return Err("das-obs was built without the `record` feature".into());
    }
    // --serve: share a live hub between the executing threads and an HTTP
    // server; snapshots publish only at big-round barriers, so the served
    // run's outcome stays byte-identical to an unserved one.
    let live = opts.get("serve").map(|_| Arc::new(LiveHub::new()));
    let server = match (opts.get("serve"), &live) {
        (Some(addr), Some(hub)) => {
            let srv =
                ObsServer::bind(addr, hub.clone()).map_err(|e| format!("bind {addr}: {e}"))?;
            // launch contract: scripts read the bound address (port 0 is
            // resolved by the OS) from this exact stdout line
            println!("listening on {}", srv.local_addr());
            Some(srv)
        }
        _ => None,
    };
    let traced = run_traced_live(&problem, sched.as_ref(), sched_seed, shards, &obs, live)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "traced {} on {} shard(s): schedule {} rounds, precompute {}, late {}, correct {:.1}%, {} events",
        sched.name(),
        traced.shard_report.as_ref().map_or(1, |r| r.shards),
        traced.outcome.schedule_rounds(),
        traced.outcome.precompute_rounds,
        traced.outcome.stats.late_messages,
        traced.verify.correctness_rate() * 100.0,
        traced.report.events.len(),
    );
    let body = match export {
        "chrome" => traced.report.to_chrome_trace(),
        "jsonl" => traced.report.to_jsonl(),
        "text" => traced.report.hot_text(top),
        other => {
            return Err(format!(
                "unknown export format `{other}` (chrome|jsonl|text)"
            ))
        }
    };
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| e.to_string())?;
            eprintln!("wrote {export} export to {path}");
        }
        None => print!("{body}"),
    }
    if let Some(path) = opts.get("dump-outcome") {
        std::fs::write(path, format!("{:?}", traced.outcome)).map_err(|e| e.to_string())?;
        eprintln!("wrote outcome debug dump to {path}");
    }
    if let Some(srv) = &server {
        if opts.contains_key("keep-open") {
            eprintln!("run finished; serving on {} until Ctrl-C", srv.local_addr());
            let stop = install_ctrl_c();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
    drop(server);
    Ok(())
}

fn cmd_compare(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let algos = parse_workload(req(opts, "workload")?, &g, seed)?;
    let problem = DasProblem::new(&g, algos, seed);
    println!("{}", describe(&problem)?);
    for name in ["sequential", "interleave", "uniform", "tuned", "private"] {
        let sched = parse_scheduler(name)?;
        report_one(name, &problem, sched.as_ref())?;
    }
    Ok(())
}

fn cmd_carve(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let dilation = opt_u32(opts, "dilation")?.ok_or("missing --dilation")?;
    let mut cfg = CarveConfig::for_dilation(&g, dilation);
    if let Some(l) = opt_usize(opts, "layers")? {
        cfg = cfg.with_num_layers(l);
    }
    let cl = Clustering::carve_centralized(&g, &cfg, seed);
    let q = quality::measure(&g, &cl, dilation);
    println!(
        "n={} dilation={} layers={} horizon={}",
        g.node_count(),
        dilation,
        cfg.num_layers,
        cfg.horizon
    );
    println!(
        "weak radius {} (cap {}), padding/layer {:.2}, covering layers min {} avg {:.1}",
        q.max_weak_radius,
        cfg.horizon,
        q.padding_rate,
        q.min_covering_layers,
        q.avg_covering_layers
    );
    println!(
        "clusters/layer {:.1}, pre-computation rounds {}",
        q.avg_clusters_per_layer,
        cl.precompute_rounds()
    );
    Ok(())
}

fn cmd_lowerbound(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let layers = opt_usize(opts, "layers")?.ok_or("missing --layers")?;
    let eta = opt_usize(opts, "eta")?.ok_or("missing --eta")?;
    let k = opt_usize(opts, "k")?.ok_or("missing --k")?;
    let p: f64 = req(opts, "p")?
        .parse()
        .map_err(|_| "--p must be a probability")?;
    let inst = HardInstance::sample(HardInstanceParams::custom(layers, eta, k, p), seed);
    let (c, d, trivial, target) = analysis::targets(&inst);
    println!(
        "hard instance: n={} C={c} D={d} trivial LB={trivial} log-factor target={target}",
        inst.graph().node_count()
    );
    for rounds in [1u32, 2, 4, 8] {
        let rate = analysis::pattern_failure_rate(&inst, rounds, d, 100, seed);
        println!(
            "  capacity {rounds}/edge/phase over {d} phases: {:>5.1}% of crossing patterns overload",
            rate * 100.0
        );
    }
    let best = search::best_greedy(&inst, 12);
    println!(
        "best greedy schedule: {} rounds (ratio to C+D: {:.2})",
        best.length,
        best.length as f64 / trivial as f64
    );
    Ok(())
}

fn cmd_mst(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let cap = opt_u32(opts, "cap")?.unwrap_or(0);
    let k = opt_usize(opts, "k")?.unwrap_or(1);
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..k as u64)
        .map(|i| {
            Box::new(MstAlgorithm::new(
                i,
                &g,
                EdgeWeights::random(&g, seed + i),
                cap,
            )) as Box<dyn BlackBoxAlgorithm>
        })
        .collect();
    let frag = {
        let a = MstAlgorithm::new(0, &g, EdgeWeights::random(&g, seed), cap);
        (a.decomposition().count, a.decomposition().charged_rounds)
    };
    let problem = DasProblem::new(&g, algos, seed);
    println!(
        "{} | fragments {} (cap {cap}, {} charged rounds)",
        describe(&problem)?,
        frag.0,
        frag.1
    );
    report_one("uniform", &problem, &UniformScheduler::default())
}

/// Builds a [`NetConfig`] from the shared networking flags.
fn parse_net(opts: &HashMap<String, String>) -> Result<NetConfig, String> {
    let mut net = NetConfig::default();
    if let Some(ms) = opt_u64(opts, "timeout-ms")? {
        if ms == 0 {
            return Err("--timeout-ms must be >= 1".into());
        }
        net = net.with_io_timeout_ms(ms);
    }
    Ok(net)
}

/// `dasched coordinator`: plan locally, accept one TCP connection per
/// worker, relay cross-shard traffic at big-round boundaries, and verify
/// the collected outcome. Workers must be launched with the same
/// `--graph/--workload/--seed` flags; the handshake enforces it.
fn cmd_coordinator(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let algos = parse_workload(req(opts, "workload")?, &g, seed)?;
    let problem = DasProblem::new(&g, algos, seed);
    let sched = parse_scheduler(req(opts, "scheduler")?)?;
    let sched_seed = opt_u64(opts, "sched-seed")?.unwrap_or_else(|| sched.default_sched_seed());
    let workers = opt_count(opts, "workers")?.ok_or("missing --workers")?;
    let listen = opts
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let plan = sched
        .plan(&problem, sched_seed)
        .map_err(|e| e.to_string())?;
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // this line is the launch contract: workers (and scripts spawning
    // them) read the bound address from it, so print it before blocking
    println!("listening on {addr}");
    println!("{}", describe(&problem)?);
    note_clamped("workers", workers, problem.graph().node_count());
    // --serve-obs: aggregate the workers' ACTIVITY-piggybacked telemetry
    // and the coordinator-side link traffic behind a live HTTP endpoint.
    let obs_hub = match opts.get("serve-obs") {
        Some(bind) => {
            let hub = Arc::new(LiveHub::new());
            hub.set_run_info("networked", workers.min(problem.graph().node_count()));
            hub.set_phase("execute");
            let srv =
                ObsServer::bind(bind, hub.clone()).map_err(|e| format!("bind {bind}: {e}"))?;
            println!("obs listening on {}", srv.local_addr());
            Some((hub, srv))
        }
        None => None,
    };
    let stop = install_ctrl_c();
    let net = parse_net(opts)?
        .with_stop(stop.clone())
        .with_live(obs_hub.as_ref().map(|(h, _)| h.clone()));
    let t0 = std::time::Instant::now();
    let (outcome, report) = execute_plan_networked(&problem, &plan, workers, listener, &net)
        .map_err(|e| e.to_string())?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "networked: {} worker(s), {} cross-shard messages, wall {wall_ms:.1} ms",
        report.shard.shards, report.shard.cross_shard_messages
    );
    for (s, t) in report.shard.per_shard.iter().zip(&report.traffic) {
        println!(
            "  worker {}: {} nodes, steps {}, delivered {}, cross-sent {}, \
             tx {} frames / {} B, rx {} frames / {} B",
            s.shard,
            s.nodes,
            s.steps,
            s.delivered,
            s.cross_sent,
            t.frames_sent,
            t.bytes_sent,
            t.frames_received,
            t.bytes_received
        );
    }
    let rep = verify::against_references(&problem, &outcome).map_err(|e| e.to_string())?;
    println!(
        "executed: schedule {} rounds, precompute {}, late {}, correct {:.1}%",
        outcome.schedule_rounds(),
        outcome.precompute_rounds,
        outcome.stats.late_messages,
        rep.correctness_rate() * 100.0
    );
    if let Some(path) = opts.get("dump-outcome") {
        std::fs::write(path, format!("{outcome:?}")).map_err(|e| e.to_string())?;
        println!("wrote outcome debug dump to {path}");
    }
    if let Some((hub, srv)) = &obs_hub {
        hub.set_phase("done");
        if opts.contains_key("keep-open") {
            println!(
                "run finished; obs serving on {} until Ctrl-C",
                srv.local_addr()
            );
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
    Ok(())
}

/// `dasched worker`: rebuild the problem from the same flags as the
/// coordinator, connect, and run the assigned shard to completion.
fn cmd_worker(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let algos = parse_workload(req(opts, "workload")?, &g, seed)?;
    let problem = DasProblem::new(&g, algos, seed);
    let connect = req(opts, "connect")?;
    let net = parse_net(opts)?;
    println!("connecting to {connect}");
    let out = run_worker(&problem, connect, &net).map_err(|e| e.to_string())?;
    println!(
        "worker done: shard {}/{}, steps {}, delivered {}, cross-sent {}, big-rounds {}, \
         tx {} frames / {} B, rx {} frames / {} B",
        out.shard,
        out.shards,
        out.steps,
        out.delivered,
        out.cross_sent,
        out.big_rounds,
        out.traffic.frames_sent,
        out.traffic.bytes_sent,
        out.traffic.frames_received,
        out.traffic.bytes_received
    );
    Ok(())
}

/// `dasched serve`: a long-lived scheduling daemon. Clients SUBMIT jobs
/// with declared budgets; admission is a content-free comparison against
/// the advertised capacity; admitted jobs are batched into DAS instances,
/// planned through the sweep cache, executed on the in-process pool, and
/// verified before each RESULT goes back. Runs until Ctrl-C, then drains
/// the admitted queue and prints the final counters.
fn cmd_serve(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let sched = parse_scheduler(
        opts.get("scheduler")
            .map(String::as_str)
            .unwrap_or("uniform"),
    )?;
    let sched_seed = opt_u64(opts, "sched-seed")?.unwrap_or_else(|| sched.default_sched_seed());
    let listen = opts
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // launch contract, same as coordinator/trace: scripts read the bound
    // address from this exact line before connecting
    println!("listening on {addr}");
    let pool = opt_count(opts, "pool")?.unwrap_or(2);
    note_clamped("pool", pool, g.node_count());
    let obs_hub = match opts.get("serve-obs") {
        Some(bind) => {
            let hub = Arc::new(LiveHub::new());
            hub.set_run_info("serve", pool.min(g.node_count()));
            hub.set_phase("serve");
            let srv =
                ObsServer::bind(bind, hub.clone()).map_err(|e| format!("bind {bind}: {e}"))?;
            println!("obs listening on {}", srv.local_addr());
            Some((hub, srv))
        }
        None => None,
    };
    let stop = install_ctrl_c();
    let net = parse_net(opts)?
        .with_stop(stop.clone())
        .with_live(obs_hub.as_ref().map(|(h, _)| h.clone()));
    let defaults = ServeConfig::default();
    let mut capacity = Capacity::default();
    if let Some(v) = opt_u32(opts, "max-dilation")? {
        capacity.max_dilation = v;
    }
    if let Some(v) = opt_u64(opts, "max-congestion")? {
        capacity.max_congestion = v;
    }
    if let Some(v) = opt_u32(opts, "max-payload")? {
        capacity.max_payload_bytes = v;
    }
    let cfg = ServeConfig {
        batch_max: opt_count(opts, "batch")?.unwrap_or(defaults.batch_max),
        batch_wait_ms: opt_u64(opts, "batch-wait-ms")?.unwrap_or(defaults.batch_wait_ms),
        pool_shards: pool,
        capacity,
        tape_seed: seed,
        sched_seed,
        engine: parse_engine(opts, defaults.engine)?,
        net,
    };
    println!(
        "serving {} jobs/batch (wait {} ms) on {} pool shard(s), capacity: dilation {} congestion {} payload {} B",
        cfg.batch_max,
        cfg.batch_wait_ms,
        cfg.pool_shards,
        cfg.capacity.max_dilation,
        cfg.capacity.max_congestion,
        cfg.capacity.max_payload_bytes
    );
    let report =
        dasched::core::serve(&g, sched.as_ref(), listener, &cfg).map_err(|e| e.to_string())?;
    if let Some((hub, _)) = &obs_hub {
        hub.set_phase("done");
    }
    println!(
        "serve done: admitted {} rejected {} completed {} failed {} over {} batch(es)",
        report.admitted, report.rejected, report.completed, report.failed, report.batches
    );
    Ok(())
}

/// `dasched loadgen`: deterministic concurrent job streams against a serve
/// daemon. `--check` re-derives every output locally and fails on any byte
/// mismatch; `--out` writes the bench point JSON; `--dump-outputs` writes
/// the canonical per-job output lines for diffing against
/// `plan --execute --dump-outputs`.
fn cmd_loadgen(opts: &HashMap<String, String>, seed: u64) -> Result<(), String> {
    let g = parse_graph(req(opts, "graph")?, seed)?;
    let connect = req(opts, "connect")?;
    let cfg = LoadgenConfig {
        clients: opt_count(opts, "clients")?.unwrap_or(2),
        jobs_per_client: opt_count(opts, "jobs")?.unwrap_or(8),
        depth: opt_u32(opts, "depth")?.unwrap_or(6),
        seed,
        check: opts.contains_key("check"),
        reject_every: opt_usize(opts, "reject-every")?.unwrap_or(0),
        net: parse_net(opts)?,
    };
    println!(
        "loadgen: {} client(s) x {} job(s), depth {}, seed {seed} -> {connect}",
        cfg.clients, cfg.jobs_per_client, cfg.depth
    );
    let report = run_loadgen(&g, connect, &cfg).map_err(|e| e.to_string())?;
    println!(
        "loadgen done: submitted {} completed {} rejected {} failed {} in {} ms",
        report.submitted, report.completed, report.rejected, report.failed, report.wall_ms
    );
    println!(
        "throughput {:.1} jobs/s, latency p50 {:.1} ms p95 {:.1} ms p99 {:.1} ms",
        report.jobs_per_sec, report.p50_ms, report.p95_ms, report.p99_ms
    );
    if cfg.check {
        println!(
            "output check: {} byte mismatch(es)",
            report.check_mismatches
        );
    }
    if let Some(path) = opts.get("out") {
        let json = format!(
            "{{\n  \"label\": \"e01_serve\",\n  \"jobs_per_sec\": {:.3},\n  \"p50_ms\": {:.3},\n  \
             \"p95_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"submitted\": {},\n  \"completed\": {},\n  \
             \"rejected\": {},\n  \"failed\": {},\n  \"check_mismatches\": {},\n  \"wall_ms\": {}\n}}\n",
            report.jobs_per_sec,
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.submitted,
            report.completed,
            report.rejected,
            report.failed,
            report.check_mismatches,
            report.wall_ms
        );
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote bench point to {path}");
    }
    if let Some(path) = opts.get("dump-outputs") {
        std::fs::write(path, render_outputs(&report.outputs)).map_err(|e| e.to_string())?;
        println!("wrote per-job outputs to {path}");
    }
    if report.failed > 0 {
        return Err(format!("{} job(s) failed", report.failed));
    }
    if report.check_mismatches > 0 {
        return Err(format!(
            "{} output byte mismatch(es) against local alone runs",
            report.check_mismatches
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--graph", "path:5", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_flags(&args).unwrap();
        assert_eq!(opts["graph"], "path:5");
        assert_eq!(opt_u64(&opts, "seed").unwrap(), Some(7));
        assert_eq!(opt_u64(&opts, "nope").unwrap(), None);
        assert!(parse_flags(&["--x".to_string()]).is_err());
        assert!(parse_flags(&["y".to_string()]).is_err());
        // --execute is boolean: it consumes no value
        let args: Vec<String> = ["--execute", "--shards", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_flags(&args).unwrap();
        assert_eq!(opts["execute"], "true");
        assert_eq!(opt_u64(&opts, "shards").unwrap(), Some(3));
    }

    #[test]
    fn serve_flag_takes_an_optional_address() {
        let mk = |args: &[&str]| {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_flags(&args).unwrap()
        };
        // explicit address
        let opts = mk(&["--serve", "0.0.0.0:8080", "--shards", "2"]);
        assert_eq!(opts["serve"], "0.0.0.0:8080");
        assert_eq!(opt_u64(&opts, "shards").unwrap(), Some(2));
        // bare --serve followed by another flag: defaults, consumes nothing
        let opts = mk(&["--serve", "--keep-open", "--top", "5"]);
        assert_eq!(opts["serve"], "127.0.0.1:0");
        assert_eq!(opts["keep-open"], "true");
        assert_eq!(opt_u64(&opts, "top").unwrap(), Some(5));
        // bare --serve at the end of the line
        let opts = mk(&["--serve"]);
        assert_eq!(opts["serve"], "127.0.0.1:0");
        // --serve-obs is an ordinary valued flag
        let opts = mk(&["--serve-obs", "127.0.0.1:9000"]);
        assert_eq!(opts["serve-obs"], "127.0.0.1:9000");
    }

    #[test]
    fn graph_specs() {
        assert_eq!(parse_graph("path:5", 0).unwrap().node_count(), 5);
        assert_eq!(parse_graph("grid:3x4", 0).unwrap().node_count(), 12);
        assert_eq!(parse_graph("hypercube:3", 0).unwrap().node_count(), 8);
        assert_eq!(parse_graph("tree:7:2", 0).unwrap().edge_count(), 6);
        assert!(parse_graph("gnp:20:0.2", 1).is_ok());
        assert!(parse_graph("expander:12:4", 1).is_ok());
        assert!(parse_graph("blob:3", 0).is_err());
        assert!(parse_graph("grid:3", 0).is_err());
    }

    #[test]
    fn workload_specs() {
        let g = parse_graph("grid:4x4", 0).unwrap();
        assert_eq!(parse_workload("mixed:6", &g, 1).unwrap().len(), 6);
        assert_eq!(parse_workload("floods:3:2", &g, 1).unwrap().len(), 3);
        assert_eq!(parse_workload("routing:4", &g, 1).unwrap().len(), 4);
        assert!(parse_workload("mixed:0", &g, 1).is_err());
        assert!(parse_workload("nope:3", &g, 1).is_err());
        let path = parse_graph("path:30", 0).unwrap();
        assert_eq!(parse_workload("segments:5:10", &path, 1).unwrap().len(), 5);
        assert!(parse_workload("segments:5:40", &path, 1).is_err());
    }

    #[test]
    fn schedulers_resolve() {
        for n in ["sequential", "interleave", "uniform", "tuned", "private"] {
            assert!(!parse_scheduler(n).unwrap().name().is_empty());
        }
        assert!(parse_scheduler("magic").is_err());
    }

    #[test]
    fn end_to_end_run_command() {
        let args: Vec<String> = [
            "run",
            "--graph",
            "path:12",
            "--workload",
            "relays:3",
            "--scheduler",
            "sequential",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn plan_command_dumps_json_that_round_trips() {
        use dasched::core::{execute_plan, SchedulePlan};
        let dir = std::env::temp_dir().join("dasched_plan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("plan.json");
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:16",
            "--workload",
            "relays:3",
            "--scheduler",
            "uniform",
            "--sched-seed",
            "9",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();

        // the dumped JSON re-executes to the same outcome as the fused path
        let json = std::fs::read_to_string(&out).unwrap();
        let plan = SchedulePlan::from_json(&json).unwrap();
        assert_eq!(plan.scheduler, "uniform-shared");
        assert_eq!(plan.sched_seed, 9);
        let g = parse_graph("path:16", 42).unwrap();
        let algos = parse_workload("relays:3", &g, 42).unwrap();
        let problem = DasProblem::new(&g, algos, 42);
        let replayed = execute_plan(&problem, &plan).unwrap();
        let fused = UniformScheduler::default()
            .with_seed(9)
            .run(&problem)
            .unwrap();
        assert_eq!(format!("{replayed:?}"), format!("{fused:?}"));
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn plan_reuse_artifact_emits_the_same_plan_bytes() {
        use dasched::core::SchedulePlan;
        let dir = std::env::temp_dir().join("dasched_artifact_plan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let direct = dir.join("direct.json");
        let via_artifact = dir.join("artifact.json");
        for (out, extra) in [(&direct, None), (&via_artifact, Some("--reuse-artifact"))] {
            let mut args = vec![
                "plan",
                "--graph",
                "path:16",
                "--workload",
                "relays:3",
                "--scheduler",
                "private",
                "--sched-seed",
                "9",
                "--out",
                out.to_str().unwrap(),
            ];
            args.extend(extra);
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            run(&args).unwrap();
        }
        let a = std::fs::read_to_string(&direct).unwrap();
        let b = std::fs::read_to_string(&via_artifact).unwrap();
        assert_eq!(a, b, "--reuse-artifact must not change the plan bytes");
        assert!(SchedulePlan::from_json(&a).is_ok());
        std::fs::remove_file(direct).unwrap();
        std::fs::remove_file(via_artifact).unwrap();
    }

    #[test]
    fn plan_execute_sharded_round_trips_through_files() {
        let dir = std::env::temp_dir().join("dasched_sharded_plan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan_file = dir.join("plan.json");
        let fused_dump = dir.join("fused.txt");
        let sharded_dump = dir.join("sharded.txt");

        // plan + execute fused (shards 1), dumping plan and outcome
        let base = [
            "plan",
            "--graph",
            "path:14",
            "--workload",
            "relays:4",
            "--scheduler",
            "uniform",
            "--sched-seed",
            "5",
        ];
        let args: Vec<String> = base
            .iter()
            .copied()
            .chain([
                "--execute",
                "--out",
                plan_file.to_str().unwrap(),
                "--dump-outcome",
                fused_dump.to_str().unwrap(),
            ])
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();

        // re-load the plan with --in and execute on 3 shards
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:14",
            "--workload",
            "relays:4",
            "--in",
            plan_file.to_str().unwrap(),
            "--execute",
            "--shards",
            "3",
            "--dump-outcome",
            sharded_dump.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();

        let fused = std::fs::read_to_string(&fused_dump).unwrap();
        let sharded = std::fs::read_to_string(&sharded_dump).unwrap();
        assert_eq!(fused, sharded, "sharded dump must match the fused dump");
        for f in [plan_file, fused_dump, sharded_dump] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn malformed_plan_file_is_rejected() {
        let dir = std::env::temp_dir().join("dasched_bad_plan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan_file = dir.join("bad_plan.json");
        // a plan for a 5-node path cannot execute on a 14-node path
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:5",
            "--workload",
            "relays:2",
            "--scheduler",
            "sequential",
            "--out",
            plan_file.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:14",
            "--workload",
            "relays:2",
            "--in",
            plan_file.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("delay vector"), "got: {err}");
        std::fs::remove_file(plan_file).unwrap();
    }

    #[test]
    fn diff_flag_consumes_two_values() {
        let args: Vec<String> = ["--diff", "a.json", "b.json", "--seed", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_flags(&args).unwrap();
        assert_eq!(opts["diff-a"], "a.json");
        assert_eq!(opts["diff-b"], "b.json");
        assert_eq!(opt_u64(&opts, "seed").unwrap(), Some(3));
        assert!(parse_flags(&["--diff".to_string(), "a.json".to_string()]).is_err());
    }

    #[test]
    fn plan_diff_command_diffs_two_plan_files() {
        let dir = std::env::temp_dir().join("dasched_plan_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        for (path, sched_seed) in [(&a, "1"), (&b, "2")] {
            let args: Vec<String> = [
                "plan",
                "--graph",
                "path:14",
                "--workload",
                "relays:4",
                "--scheduler",
                "uniform",
                "--sched-seed",
                sched_seed,
                "--out",
                path.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            run(&args).unwrap();
        }
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:14",
            "--workload",
            "relays:4",
            "--diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        // diffing a plan against itself also works (and reports identity)
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:14",
            "--workload",
            "relays:4",
            "--diff",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        for f in [a, b] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn trace_command_exports_all_formats() {
        let dir = std::env::temp_dir().join("dasched_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (export, shards) in [
            ("chrome", "1"),
            ("chrome", "3"),
            ("jsonl", "2"),
            ("text", "1"),
        ] {
            let out = dir.join(format!("trace_{export}_{shards}.out"));
            let args: Vec<String> = [
                "trace",
                "--graph",
                "path:14",
                "--workload",
                "relays:4",
                "--scheduler",
                "uniform",
                "--shards",
                shards,
                "--export",
                export,
                "--top",
                "5",
                "--out",
                out.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            run(&args).unwrap();
            let body = std::fs::read_to_string(&out).unwrap();
            assert!(!body.is_empty());
            if export == "chrome" {
                let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
                assert!(
                    !doc.get("traceEvents")
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .is_empty(),
                    "chrome export must carry events"
                );
            }
            std::fs::remove_file(out).unwrap();
        }
        // unknown formats are rejected
        let args: Vec<String> = [
            "trace",
            "--graph",
            "path:8",
            "--workload",
            "relays:2",
            "--scheduler",
            "uniform",
            "--export",
            "svg",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&args).unwrap_err().contains("unknown export format"));
    }

    #[test]
    fn zero_and_overflowing_counts_are_usage_errors() {
        let mk = |pairs: &[(&str, &str)]| {
            let mut m = HashMap::new();
            for (k, v) in pairs {
                m.insert(k.to_string(), v.to_string());
            }
            m
        };
        // --shards 0 used to be silently clamped to 1 by the partitioner
        let err = opt_count(&mk(&[("shards", "0")]), "shards").unwrap_err();
        assert!(err.contains(">= 1"), "got: {err}");
        assert_eq!(
            opt_count(&mk(&[("shards", "3")]), "shards").unwrap(),
            Some(3)
        );
        assert_eq!(opt_count(&mk(&[]), "shards").unwrap(), None);
        // values that fit the flag's type parse checked...
        assert_eq!(opt_u32(&mk(&[("cap", "8")]), "cap").unwrap(), Some(8));
        assert_eq!(opt_usize(&mk(&[("top", "10")]), "top").unwrap(), Some(10));
        // ...and values that do not are usage errors, not truncations
        let err = opt_u32(&mk(&[("cap", "4294967296")]), "cap").unwrap_err();
        assert!(err.contains("u32"), "got: {err}");
        assert!(opt_u32(&mk(&[("cap", "-1")]), "cap").is_err());
        assert!(opt_usize(&mk(&[("top", "1e9")]), "top").is_err());
        // end to end: the run command rejects --shards 0 before executing
        let args: Vec<String> = [
            "plan",
            "--graph",
            "path:8",
            "--workload",
            "relays:2",
            "--scheduler",
            "sequential",
            "--execute",
            "--shards",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--shards must be >= 1"), "got: {err}");
    }

    #[test]
    fn coordinator_rejects_missing_or_zero_workers() {
        let base = [
            "coordinator",
            "--graph",
            "path:8",
            "--workload",
            "relays:2",
            "--scheduler",
            "sequential",
        ];
        let args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        assert!(run(&args).unwrap_err().contains("missing --workers"));
        let args: Vec<String> = base
            .iter()
            .copied()
            .chain(["--workers", "0"])
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("--workers must be >= 1"));
        let args: Vec<String> = base
            .iter()
            .copied()
            .chain(["--workers", "2", "--timeout-ms", "0"])
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args)
            .unwrap_err()
            .contains("--timeout-ms must be >= 1"));
    }

    #[test]
    fn worker_requires_connect() {
        let args: Vec<String> = ["worker", "--graph", "path:8", "--workload", "relays:2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("missing --connect"));
    }

    /// Full coordinator/worker round trip in one process: the coordinator
    /// command runs on a fixed port with two worker threads driving the
    /// `worker` command against it, and the dumped outcome matches the
    /// fused `plan --execute` dump byte for byte.
    #[test]
    fn coordinator_and_worker_commands_round_trip() {
        let dir = std::env::temp_dir().join("dasched_networked_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let fused_dump = dir.join("fused.txt");
        let net_dump = dir.join("networked.txt");
        let base = [
            "--graph",
            "path:12",
            "--workload",
            "relays:3",
            "--seed",
            "11",
        ];

        let fused_args: Vec<String> = ["plan"]
            .iter()
            .copied()
            .chain(base)
            .chain([
                "--scheduler",
                "uniform",
                "--execute",
                "--dump-outcome",
                fused_dump.to_str().unwrap(),
            ])
            .map(|s| s.to_string())
            .collect();
        run(&fused_args).unwrap();

        // a pre-bound port lets the worker threads know where to connect
        // without parsing the coordinator's stdout
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let worker_args: Vec<String> = ["worker"]
            .iter()
            .copied()
            .chain(base)
            .chain(["--connect", &addr, "--timeout-ms", "20000"])
            .map(|s| s.to_string())
            .collect();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let args = worker_args.clone();
                std::thread::spawn(move || run(&args))
            })
            .collect();
        let coord_args: Vec<String> = ["coordinator"]
            .iter()
            .copied()
            .chain(base)
            .chain([
                "--scheduler",
                "uniform",
                "--workers",
                "2",
                "--listen",
                &addr,
                "--timeout-ms",
                "20000",
                "--dump-outcome",
                net_dump.to_str().unwrap(),
            ])
            .map(|s| s.to_string())
            .collect();
        run(&coord_args).unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }

        let fused = std::fs::read_to_string(&fused_dump).unwrap();
        let networked = std::fs::read_to_string(&net_dump).unwrap();
        assert_eq!(fused, networked, "networked dump must match the fused dump");
        for f in [fused_dump, net_dump] {
            std::fs::remove_file(f).unwrap();
        }
    }

    /// The serve-path byte-identity contract, through the CLI surfaces: a
    /// loadgen run against a live daemon dumps the same per-job output
    /// lines as a one-shot `plan --execute` of the identical job set
    /// (same graph, seed, depth, and source formula), regardless of how
    /// the daemon batched the jobs.
    #[test]
    fn loadgen_dump_matches_one_shot_plan_execute_dump() {
        use dasched::core::serve as serve_daemon;
        use std::sync::atomic::{AtomicBool, Ordering};

        let dir = std::env::temp_dir().join("dasched_serve_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let served_dump = dir.join("served.txt");
        let oneshot_dump = dir.join("oneshot.txt");

        // library-side daemon on an ephemeral port (the serve *command*
        // blocks on Ctrl-C, which a unit test cannot deliver cleanly)
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let g = parse_graph("grid:3x3", 42).unwrap();
        let cfg = ServeConfig {
            batch_max: 2, // forces multi-batch execution of the 3 jobs
            tape_seed: 42,
            net: NetConfig::default().with_stop(stop.clone()),
            ..ServeConfig::default()
        };
        let daemon = {
            let g = g.clone();
            std::thread::spawn(move || {
                serve_daemon(&g, &UniformScheduler::default(), listener, &cfg).unwrap()
            })
        };

        // `loadgen --check --dump-outputs`: 1 client, 3 jobs, depth 4
        let args: Vec<String> = [
            "loadgen",
            "--graph",
            "grid:3x3",
            "--connect",
            &addr,
            "--clients",
            "1",
            "--jobs",
            "3",
            "--depth",
            "4",
            "--check",
            "--dump-outputs",
            served_dump.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        stop.store(true, Ordering::SeqCst);
        let report = daemon.join().unwrap();
        assert_eq!(report.completed, 3);
        assert!(report.batches >= 2, "batch_max 2 must split 3 jobs");

        // the identical job set as a one-shot plan --execute
        let args: Vec<String> = [
            "plan",
            "--graph",
            "grid:3x3",
            "--workload",
            "floods:3:4",
            "--scheduler",
            "uniform",
            "--seed",
            "42",
            "--execute",
            "--dump-outputs",
            oneshot_dump.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();

        let served = std::fs::read_to_string(&served_dump).unwrap();
        let oneshot = std::fs::read_to_string(&oneshot_dump).unwrap();
        assert!(!served.is_empty());
        assert_eq!(
            served, oneshot,
            "served outputs must be byte-identical to the one-shot run"
        );
        for f in [served_dump, oneshot_dump] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn loadgen_requires_connect_and_serve_validates_counts() {
        let args: Vec<String> = ["loadgen", "--graph", "path:8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("missing --connect"));
        let args: Vec<String> = ["serve", "--graph", "path:8", "--pool", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("--pool must be >= 1"));
        let args: Vec<String> = ["serve", "--graph", "path:8", "--engine", "quantum"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn render_outputs_is_canonical() {
        let entries = vec![
            (0u64, vec![Some(vec![0xab, 0x01]), None]),
            (1u64, vec![None, Some(vec![])]),
        ];
        assert_eq!(
            render_outputs(&entries),
            "job=0 node=0 out=ab01\njob=0 node=1 out=-\n\
             job=1 node=0 out=-\njob=1 node=1 out=\n"
        );
    }

    #[test]
    fn end_to_end_lowerbound_command() {
        let args: Vec<String> = [
            "lowerbound",
            "--layers",
            "3",
            "--eta",
            "10",
            "--k",
            "6",
            "--p",
            "0.3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }
}
