//! # dasched — Near-Optimal Scheduling of Distributed Algorithms
//!
//! A full Rust implementation of the system described in
//! *"Near-Optimal Scheduling of Distributed Algorithms"* (Ghaffari,
//! PODC 2015): run many independent black-box distributed algorithms
//! together in the CONGEST model, in time
//! `O(congestion + dilation · log n)` — using only private randomness
//! after `O(dilation · log² n)` rounds of pre-computation.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `das-graph` | topologies, BFS, trees |
//! | [`congest`] | `das-congest` | the CONGEST round engine |
//! | [`pattern`] | `das-pattern` | time-expanded graphs, congestion/dilation, causality |
//! | [`prg`] | `das-prg` | `GF(p)`, `k`-wise independence, delay laws |
//! | [`cluster`] | `das-cluster` | ball carving + in-cluster randomness sharing |
//! | [`core`] | `das-core` | the schedulers (Thm 1.1, §3 remark, Thm 4.1, baselines) |
//! | [`obs`] | `das-obs` | deterministic tracing, metrics, Perfetto/JSONL export |
//! | [`algos`] | `das-algos` | workloads: broadcast, BFS, routing, MST, distinct elements |
//! | [`lowerbound`] | `das-lowerbound` | the §3 hard-instance family and certificates |
//!
//! ## Quickstart
//!
//! ```
//! use dasched::core::{DasProblem, PrivateScheduler, Scheduler, verify};
//! use dasched::algos::bfs::HopBfs;
//! use dasched::graph::{generators, NodeId};
//!
//! // a 5x5 grid and four BFS instances from different corners
//! let g = generators::grid(5, 5);
//! let algos: Vec<Box<dyn dasched::core::BlackBoxAlgorithm>> = vec![
//!     Box::new(HopBfs::new(0, &g, NodeId(0), 8)),
//!     Box::new(HopBfs::new(1, &g, NodeId(4), 8)),
//!     Box::new(HopBfs::new(2, &g, NodeId(20), 8)),
//!     Box::new(HopBfs::new(3, &g, NodeId(24), 8)),
//! ];
//! let problem = DasProblem::new(&g, algos, 42);
//!
//! // schedule them together with only private randomness (Theorem 4.1)
//! let outcome = PrivateScheduler::default().run(&problem).unwrap();
//! let report = verify::against_references(&problem, &outcome).unwrap();
//! assert!(report.all_correct());
//! println!(
//!     "schedule: {} rounds (+{} pre-computation)",
//!     outcome.schedule_rounds(),
//!     outcome.precompute_rounds
//! );
//! ```

#![warn(missing_docs)]

pub use das_algos as algos;
pub use das_cluster as cluster;
pub use das_congest as congest;
pub use das_core as core;
pub use das_graph as graph;
pub use das_lowerbound as lowerbound;
pub use das_obs as obs;
pub use das_pattern as pattern;
pub use das_prg as prg;
