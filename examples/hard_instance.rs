//! Figure 2 / Section 3: sample a hard instance, show its parameters, and
//! watch schedulers and the anti-concentration certificate at work.
//!
//! ```sh
//! cargo run --release --example hard_instance
//! ```

use dasched::core::{verify, DasProblem, Scheduler, TunedUniformScheduler, UniformScheduler};
use dasched::lowerbound::{analysis, search, HardInstance, HardInstanceParams};

fn main() {
    let params = HardInstanceParams::custom(6, 64, 32, 0.12);
    let inst = HardInstance::sample(params, 7);
    let (c, d, trivial, target) = analysis::targets(&inst);
    println!(
        "hard instance: L={} eta={} k={} p={:.3}  (n={})",
        params.layers,
        params.eta,
        params.k,
        params.p,
        inst.graph().node_count()
    );
    println!("congestion={c} dilation={d}  trivial LB={trivial}  log-factor target={target}");
    println!();

    // the Theorem 3.1 mechanism: at budgets near the trivial bound, random
    // crossing patterns overload edges almost surely
    println!("crossing-pattern failure rates (Theorem 3.1 certificate):");
    for (rounds, phases) in [(1u32, 6u32), (1, 12), (2, 12), (4, 12), (8, 12)] {
        let budget = rounds as u64 * phases as u64 * 2;
        let rate = analysis::pattern_failure_rate(&inst, rounds, phases, 200, 3);
        println!(
            "  {phases} phases x {rounds} rounds/edge (budget ~{budget} rounds): {:.1}% of patterns overload",
            rate * 100.0
        );
    }
    println!();

    // best greedy schedule (an upper bound on OPT)
    let best = search::best_greedy(&inst, 12);
    println!(
        "best greedy schedule: {} rounds ({} phases x {} rounds) — ratio to C+D: {:.2}",
        best.length,
        best.phases_used,
        best.phase_rounds,
        best.length as f64 / trivial as f64
    );
    println!();

    // and the real schedulers
    let problem = DasProblem::new(inst.graph(), inst.algorithms(), 11);
    for s in [
        Box::new(UniformScheduler::default()) as Box<dyn Scheduler>,
        Box::new(TunedUniformScheduler::default()),
    ] {
        let outcome = s.run(&problem).expect("valid instance");
        let report = verify::against_references(&problem, &outcome).expect("references");
        println!(
            "{:<14} schedule {} rounds, correct {:.1}%, ratio to C+D {:.2}",
            s.name(),
            outcome.schedule_rounds(),
            report.correctness_rate() * 100.0,
            outcome.schedule_rounds() as f64 / trivial as f64
        );
    }
}
