//! Figure 1 artifact: the communication pattern of an algorithm as a
//! subgraph of the time-expanded graph `G × [T]`.
//!
//! ```sh
//! cargo run --example communication_pattern
//! ```

use dasched::core::run_alone;
use dasched::core::synthetic::FloodBall;
use dasched::graph::{generators, NodeId};
use dasched::pattern::TimeExpandedGraph;

fn main() {
    // a 4-node path and a 3-round flood from node 0 (a BFS-like algorithm
    // whose pattern is data-dependent)
    let g = generators::path(4);
    let algo = FloodBall::new(0, &g, NodeId(0), 3);
    let reference = run_alone(&g, &algo, 7).expect("valid algorithm");
    let pattern = &reference.pattern;

    println!("communication pattern of a 3-hop flood on a 4-path");
    println!(
        "messages: {}   rounds: {}   max edge load: {}",
        pattern.message_count(),
        pattern.rounds(),
        pattern.edge_loads().iter().max().unwrap()
    );
    println!();

    let te = TimeExpandedGraph::new(&g, pattern.rounds() as usize);
    let rendered = te.render_ascii(|v, i, u| {
        pattern
            .sends_from(&g, v, i as u32)
            .iter()
            .any(|&(_, dst)| dst == u)
    });
    println!("{rendered}");

    println!("timed arcs (round: src -> dst):");
    for ta in pattern.timed_arcs() {
        let (src, dst) = g.arc_endpoints(ta.arc);
        println!("  round {}: {} -> {}", ta.round, src, dst);
    }
}
