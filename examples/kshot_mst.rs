//! Section 5 case study: the MST congestion/dilation trade-off and the
//! k-shot MST experiment.
//!
//! ```sh
//! cargo run --release --example kshot_mst
//! ```

use dasched::algos::mst::{EdgeWeights, MstAlgorithm};
use dasched::core::{verify, BlackBoxAlgorithm, DasProblem, Scheduler, UniformScheduler};
use dasched::graph::generators;

fn main() {
    let g = generators::gnp_connected(64, 0.08, 5);
    let n = g.node_count();

    // 1. single-shot trade-off: sweep the fragment diameter cap
    println!("single-shot MST trade-off on n={n} (larger fragments = lower congestion):");
    println!(
        "{:>5} {:>10} {:>12} {:>10} {:>10}",
        "cap", "fragments", "congestion", "dilation", "charged"
    );
    for cap in [0u32, 2, 4, 8, 16, 32] {
        let algo = MstAlgorithm::new(0, &g, EdgeWeights::random(&g, 1), cap);
        let p = DasProblem::new(&g, vec![Box::new(algo.clone())], 0);
        let params = p.parameters().expect("valid MST algorithm");
        println!(
            "{:>5} {:>10} {:>12} {:>10} {:>10}",
            cap,
            algo.decomposition().count,
            params.congestion,
            algo.rounds(),
            algo.decomposition().charged_rounds
        );
    }
    println!();

    // 2. k-shot: schedule k MST instances together with the cap tuned to
    //    k (fragment count ~ sqrt(nk), the paper's L = sqrt(n/k))
    println!("k-shot MST (k instances, cap tuned vs untuned):");
    println!(
        "{:>3} {:>14} {:>14} {:>9}",
        "k", "tuned rounds", "cap-0 rounds", "correct"
    );
    for k in [1usize, 2, 4, 8] {
        let cap_tuned = ((n as f64 / k as f64).sqrt()).ceil() as u32;
        let mut lengths = Vec::new();
        let mut all_ok = true;
        for cap in [cap_tuned, 0] {
            let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..k as u64)
                .map(|i| {
                    Box::new(MstAlgorithm::new(
                        i,
                        &g,
                        EdgeWeights::random(&g, 100 + i),
                        cap,
                    )) as Box<dyn BlackBoxAlgorithm>
                })
                .collect();
            let p = DasProblem::new(&g, algos, 9);
            let outcome = UniformScheduler::default().run(&p).expect("valid");
            let report = verify::against_references(&p, &outcome).expect("refs");
            all_ok &= report.all_correct();
            lengths.push(outcome.schedule_rounds());
        }
        println!(
            "{:>3} {:>14} {:>14} {:>9}",
            k,
            lengths[0],
            lengths[1],
            if all_ok { "yes" } else { "NO" }
        );
    }
}
