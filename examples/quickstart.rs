//! Quickstart: schedule a mixed bundle of distributed algorithms with
//! every scheduler and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dasched::algos::bfs::HopBfs;
use dasched::algos::broadcast::SingleBroadcast;
use dasched::core::synthetic::RelayChain;
use dasched::core::{
    verify, BlackBoxAlgorithm, DasProblem, InterleaveScheduler, PrivateScheduler, Scheduler,
    SequentialScheduler, TunedUniformScheduler, UniformScheduler,
};
use dasched::graph::{generators, NodeId};

fn main() {
    // An 8x8 grid carrying a mixed workload: BFS trees, broadcasts, and
    // path relays, all independent.
    let g = generators::grid(8, 8);
    let mut algos: Vec<Box<dyn BlackBoxAlgorithm>> = Vec::new();
    for i in 0..6u64 {
        algos.push(Box::new(HopBfs::new(
            i,
            &g,
            NodeId((i * 11 % 64) as u32),
            10,
        )));
    }
    for i in 6..12u64 {
        algos.push(Box::new(SingleBroadcast::new(
            i,
            &g,
            NodeId((i * 7 % 64) as u32),
            8,
        )));
    }
    for i in 12..18u64 {
        let row = (i as usize - 12) % 8;
        let route: Vec<NodeId> = (0..8).map(|c| NodeId((row * 8 + c) as u32)).collect();
        algos.push(Box::new(RelayChain::along(i, &g, route)));
    }

    let problem = DasProblem::new(&g, algos, 2026);
    let params = problem.parameters().expect("valid algorithms");
    println!(
        "workload: k={} algorithms on n={} nodes | congestion={} dilation={} (trivial LB {})",
        problem.k(),
        g.node_count(),
        params.congestion,
        params.dilation,
        params.trivial_lower_bound()
    );
    println!();
    println!(
        "{:<16} {:>10} {:>12} {:>8} {:>9}",
        "scheduler", "schedule", "precompute", "late", "correct"
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SequentialScheduler),
        Box::new(InterleaveScheduler),
        Box::new(UniformScheduler::default()),
        Box::new(TunedUniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ];
    for s in schedulers {
        let outcome = s.run(&problem).expect("valid algorithms");
        let report = verify::against_references(&problem, &outcome).expect("references");
        println!(
            "{:<16} {:>10} {:>12} {:>8} {:>8.1}%",
            s.name(),
            outcome.schedule_rounds(),
            outcome.precompute_rounds,
            outcome.stats.late_messages,
            report.correctness_rate() * 100.0
        );
    }
    println!();
    println!(
        "bound: congestion + dilation*ln(n) = {}",
        params.congestion as f64 + params.dilation as f64 * (g.node_count() as f64).ln()
    );
}
