//! Lemma 4.2 up close: carve a grid, inspect the layers, and export one
//! layer as GraphViz DOT (color by cluster) for visual inspection.
//!
//! ```sh
//! cargo run --release --example clustering > /tmp/clusters.dot
//! dot -Tpng /tmp/clusters.dot -o clusters.png   # if graphviz is installed
//! ```

use dasched::cluster::{quality, CarveConfig, Clustering};
use dasched::graph::{dot, generators};

fn main() {
    let g = generators::grid(9, 9);
    let dilation = 2;
    let cfg = CarveConfig::for_dilation(&g, dilation);
    let cl = Clustering::carve_centralized(&g, &cfg, 7);
    let q = quality::measure(&g, &cl, dilation);

    eprintln!(
        "9x9 grid, dilation {dilation}: {} layers, horizon {}, radius rate {}",
        cfg.num_layers, cfg.horizon, cfg.radius_rate
    );
    eprintln!(
        "weak radius {} | padding rate {:.2} | covering layers min {} avg {:.1}",
        q.max_weak_radius, q.padding_rate, q.min_covering_layers, q.avg_covering_layers
    );
    eprintln!("pre-computation: {} CONGEST rounds", cl.precompute_rounds());
    eprintln!();
    eprintln!("layer  clusters  largest  centers");
    for (i, layer) in cl.layers().iter().enumerate().take(8) {
        let centers = layer.centers();
        let largest = centers
            .iter()
            .map(|&c| layer.center.iter().filter(|&&x| x == c).count())
            .max()
            .unwrap_or(0);
        let names: Vec<String> = centers.iter().take(6).map(|c| c.to_string()).collect();
        eprintln!(
            "{i:>5}  {:>8}  {:>7}  {}{}",
            centers.len(),
            largest,
            names.join(","),
            if centers.len() > 6 { ",…" } else { "" }
        );
    }

    // DOT export of layer 0, labeling nodes by their cluster center
    let layer = &cl.layers()[0];
    let rendered = dot::to_dot(&g, |v| {
        Some(format!("{}\\nC={}", v, layer.center[v.index()]))
    });
    println!("{rendered}");
}
