//! Appendix A, end to end: take a Bellagio algorithm that assumes shared
//! randomness, (1) shrink its seed with the Newman reduction, (2) remove
//! the sharing assumption entirely with the Meta-Theorem A.1 clustering
//! machinery, and check that the canonical outputs survive both.
//!
//! ```sh
//! cargo run --release --example derandomize
//! ```

use dasched::congest::util::seed_mix;
use dasched::core::bellagio::{derandomize, run_with_global_seed, BellagioConfig, SeededFamily};
use dasched::core::newman::{bits_needed, find_subcollection, Collection};
use dasched::core::{AlgoNode, AlgoSend};
use dasched::graph::{generators, traversal, Graph, NodeId};

/// The Bellagio family: "does my 2-ball contain >= `threshold` distinct
/// inputs?" via a seeded threshold-hash OR-flood (the Appendix A example,
/// reduced to one bit).
struct ThresholdTest {
    inputs: Vec<u64>,
    neighbors: Vec<Vec<NodeId>>,
    h: u32,
    threshold: f64,
    iters: u32,
}

struct ThresholdNode {
    neighbors: Vec<NodeId>,
    acc: u64,
    h: u32,
    round: u32,
    iters: u32,
}

impl SeededFamily for ThresholdTest {
    fn rounds(&self) -> u32 {
        self.h + 1
    }

    fn create_node(&self, v: NodeId, _n: usize, shared: u64, _priv: u64) -> Box<dyn AlgoNode> {
        let mut acc = 0u64;
        for i in 0..self.iters {
            let hsh = seed_mix(seed_mix(shared, self.inputs[v.index()]), i as u64);
            let u = (hsh >> 11) as f64 / (1u64 << 53) as f64;
            if u < 1.0 - (-1.0 / self.threshold).exp2() {
                acc |= 1 << i;
            }
        }
        Box::new(ThresholdNode {
            neighbors: self.neighbors[v.index()].clone(),
            acc,
            h: self.h,
            round: 0,
            iters: self.iters,
        })
    }
}

impl AlgoNode for ThresholdNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (_, p) in inbox {
            self.acc |= u64::from_le_bytes(p[..8].try_into().unwrap());
        }
        let mut out = Vec::new();
        if self.round < self.h {
            for &u in &self.neighbors {
                out.push(AlgoSend {
                    to: u,
                    payload: self.acc.to_le_bytes().to_vec(),
                });
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(vec![(self.acc.count_ones() > self.iters / 2) as u8])
    }
}

fn canonical(g: &Graph, inputs: &[u64], h: u32, threshold: f64) -> Vec<u8> {
    g.nodes()
        .map(|v| {
            let mut vals: Vec<u64> = traversal::ball(g, v, h)
                .into_iter()
                .map(|u| inputs[u.index()])
                .collect();
            vals.sort_unstable();
            vals.dedup();
            (vals.len() as f64 >= threshold) as u8
        })
        .collect()
}

fn main() {
    let g = generators::grid(6, 6);
    let n = g.node_count();
    let inputs: Vec<u64> = (0..n).map(|v| seed_mix(12, (v % 14) as u64)).collect();
    let fam = ThresholdTest {
        inputs: inputs.clone(),
        neighbors: g
            .nodes()
            .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
            .collect(),
        h: 2,
        threshold: 5.0,
        iters: 48,
    };
    let canon = canonical(&g, &inputs, 2, 5.0);
    let canonical_rate = |out: &[Option<Vec<u8>>]| {
        let ok = g
            .nodes()
            .filter(|&v| out[v.index()].as_deref() == Some(&canon[v.index()..=v.index()]))
            .count();
        ok as f64 / n as f64
    };

    // 0. the family is Bellagio: most global seeds give the canonical bit
    let trials = 30u64;
    let full: Vec<u64> = (0..trials).map(|s| 500 + s).collect();
    let per_seed: Vec<f64> = full
        .iter()
        .map(|&s| canonical_rate(&run_with_global_seed(&g, &fam, s, 1)))
        .collect();
    let avg = per_seed.iter().sum::<f64>() / trials as f64;
    println!(
        "Bellagio check: avg canonical-output rate over {trials} global seeds = {:.1}%",
        avg * 100.0
    );

    // 1. Newman: shrink the seed space
    let oracle = |_x: u64, s: u64| canonical_rate(&run_with_global_seed(&g, &fam, s, 1)) == 1.0;
    let collection = Collection {
        is_canonical: &oracle,
        seeds: &full,
    };
    match find_subcollection(&collection, &[0], 8, 0.6, 50) {
        Some((idx, sub)) => println!(
            "Newman reduction: {}-seed subcollection found at canonical index {idx} \
             ({} -> {} shared bits)",
            sub.len(),
            bits_needed(full.len()),
            bits_needed(sub.len())
        ),
        None => println!("Newman reduction: no good subcollection within budget"),
    }

    // 2. Meta-Theorem A.1: remove the sharing assumption entirely
    let outcome = derandomize(&g, &fam, &BellagioConfig::default());
    let adopted = outcome.outputs.to_vec();
    println!(
        "Meta-Thm A.1: coverage {:.0}%, canonical rate {:.1}%, total {} rounds \
         (clustering + sharing + {} layer runs)",
        outcome.coverage * 100.0,
        canonical_rate(&adopted) * 100.0,
        outcome.total_rounds,
        outcome.layer_outputs.len()
    );
}
