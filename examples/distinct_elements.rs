//! Appendix A demo: approximate distinct elements in d-hop
//! neighborhoods, with shared vs locally-shared (Bellagio-derandomized)
//! randomness.
//!
//! ```sh
//! cargo run --release --example distinct_elements
//! ```

use dasched::algos::distinct::{estimate_private, estimate_shared, exact_distinct, DistinctConfig};
use dasched::congest::util::seed_mix;
use dasched::graph::generators;

fn main() {
    let g = generators::grid(6, 6);
    let n = g.node_count();
    // 36 nodes, 15 distinct input strings
    let inputs: Vec<u64> = (0..n).map(|v| seed_mix(99, (v % 15) as u64)).collect();
    let config = DistinctConfig::new(2, 0.5);
    let truth = exact_distinct(&g, &inputs, config.radius);

    let (shared, shared_rounds) = estimate_shared(&g, &inputs, &config, 1234);
    let private = estimate_private(&g, &inputs, &config, 16, 77);

    println!(
        "distinct elements within {} hops (eps = {}):",
        config.radius, config.eps
    );
    println!(
        "{:>5} {:>6} {:>9} {:>9}",
        "node", "exact", "shared", "private"
    );
    for v in (0..n).step_by(5) {
        println!(
            "{:>5} {:>6} {:>9.1} {:>9.1}",
            v,
            truth[v],
            shared[v],
            private.estimates[v].unwrap_or(f64::NAN)
        );
    }
    println!();

    let acc = |est: &dyn Fn(usize) -> f64| -> f64 {
        let ok = (0..n)
            .filter(|&v| {
                let e = est(v);
                let t = truth[v] as f64;
                e <= t * 2.5 && e >= t / 2.5
            })
            .count();
        ok as f64 / n as f64
    };
    println!(
        "shared randomness : {} rounds, {:.0}% of nodes within factor 2.5",
        shared_rounds,
        acc(&|v| shared[v]) * 100.0
    );
    println!(
        "private randomness: {} rounds (incl. clustering + sharing), coverage {:.0}%, {:.0}% within factor 2.5",
        private.total_rounds,
        private.coverage * 100.0,
        acc(&|v| private.estimates[v].unwrap_or(0.0)) * 100.0
    );
}
