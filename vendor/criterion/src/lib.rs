//! Offline vendored subset of the `criterion` API.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros so the `benches/e*.rs`
//! harnesses compile and run without crates.io access. Timing is a plain
//! wall-clock sampler (median / mean / min over `sample_size` samples of an
//! auto-calibrated batch), not criterion's full statistical machinery — the
//! printed numbers are honest measurements, just without outlier analysis.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

/// Sample count used by quick mode.
const QUICK_SAMPLES: usize = 5;
/// Measurement-time budget used by quick mode.
const QUICK_TIME: Duration = Duration::from_millis(300);

impl Default for Criterion {
    fn default() -> Self {
        let c = Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        };
        if quick_mode() {
            c.quick()
        } else {
            c
        }
    }
}

/// True when the harness was invoked with `--quick` (or `CRITERION_QUICK=1`):
/// real criterion's quick mode, honoured here so CI can run the ablation
/// suite on every PR without paying the full measurement budget.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1")
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// In quick mode (`--quick` / `CRITERION_QUICK=1`) explicit requests are
    /// clamped down to the quick budget so a harness's own
    /// `sample_size(..)` config can't silently undo the CI speed-up.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        if quick_mode() {
            self.sample_size = self.sample_size.min(QUICK_SAMPLES);
        }
        self
    }

    /// Sets the measurement-time budget per benchmark (clamped in quick
    /// mode, like [`Criterion::sample_size`]).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        if quick_mode() {
            self.measurement_time = self.measurement_time.min(QUICK_TIME);
        }
        self
    }

    /// Shrinks the sampling budget to a PR-sized quick pass. The printed
    /// numbers stay honest measurements — just fewer of them.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.sample_size = QUICK_SAMPLES;
        self.measurement_time = QUICK_TIME;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Times one closure; handed to the benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate a batch size so one sample is >= ~1ms but the whole
        // run respects the measurement-time budget.
        let once = {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        };
        let target = Duration::from_millis(1).max(self.measurement_time / self.sample_size as u32);
        let batch = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "bench {id:<48} median {:>12} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn quick_shrinks_the_budget() {
        let c = Criterion::default().quick();
        assert_eq!(c.sample_size, QUICK_SAMPLES);
        assert_eq!(c.measurement_time, QUICK_TIME);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
