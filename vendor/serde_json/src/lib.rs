//! Offline vendored subset of the `serde_json` API.
//!
//! Serializes the serde shim's [`Value`] data model to JSON text and parses
//! JSON text back. Output is deterministic: object keys keep their
//! declaration order and float formatting uses Rust's shortest round-trip
//! `Display`, so identical values always produce byte-identical JSON — a
//! property the bench-artifact determinism tests assert.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            let s = x.to_string();
            out.push_str(&s);
            // keep the number a float on re-parse
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !pairs.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, got `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, got `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // surrogate pairs are not produced by our writer;
                            // reject rather than mis-decode
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error(format!("invalid codepoint {code:#x}")))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // consume the full UTF-8 sequence starting at pos-1
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("expected a value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Some(neg) = text.strip_prefix('-') {
            neg.parse::<u64>()
                .map_err(|_| Error(format!("invalid number `{text}`")))
                .and_then(|x| {
                    i64::try_from(x)
                        .map(|x| Value::I64(-x))
                        .map_err(|_| Error(format!("number `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let t = (1u8, "x".to_string(), vec![4u64]);
        let json = to_string(&t).unwrap();
        assert_eq!(from_str::<(u8, String, Vec<u64>)>(&json).unwrap(), t);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v: Vec<String> = from_str("[ \"héllo\" , \"wörld\" ]").unwrap();
        assert_eq!(v, vec!["héllo", "wörld"]);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
