//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of rayon the workspace uses: `into_par_iter()` /
//! `par_iter()` plus `map`/`for_each`/`collect`/`sum`, executed on real OS
//! threads via [`std::thread::scope`].
//!
//! Semantics guaranteed here (and relied on by the deterministic trial
//! runner in `das-bench`):
//!
//! * **Order preservation** — `collect()` returns results in the input
//!   order, regardless of which thread computed which item.
//! * **`RAYON_NUM_THREADS`** — honored like upstream rayon: `1` forces
//!   fully sequential execution; unset uses the available parallelism.
//!
//! Work distribution is a shared atomic cursor (dynamic load balancing), so
//! uneven per-item cost does not serialize on the slowest chunk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits, imported as `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads to use: `RAYON_NUM_THREADS` if set and valid,
/// otherwise [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator, consuming the collection.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

/// A materialized parallel pipeline stage.
///
/// Unlike upstream rayon this shim is eager at the `collect`/`for_each`
/// boundary and materializes the input items first; with the coarse-grained
/// work the workspace fans out (whole simulation trials), per-item overhead
/// is irrelevant.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// Core parallel-iterator operations.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materializes the items of this stage, in order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Applies `f` to every item in parallel, preserving order.
    fn map<U: Send, F>(self, f: F) -> ParVec<U>
    where
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        ParVec {
            items: parallel_map(self.into_items(), &f),
        }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = parallel_map(self.into_items(), &|x| f(x));
    }

    /// Collects the items, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_items(self.into_items())
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.into_items().len()
    }
}

/// Collections constructible from ordered parallel results.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in the right order.
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParVec<$t>;

            fn into_par_iter(self) -> ParVec<$t> {
                ParVec { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;

    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;

    fn par_iter(&'a self) -> ParVec<&'a T> {
        self.as_slice().par_iter()
    }
}

/// Maps `f` over `items` on up to [`current_num_threads`] threads, returning
/// results in input order.
fn parallel_map<T: Send, U: Send, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move to whichever worker claims their index; results come back
    // tagged with the index so order is restored independent of scheduling.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each index is claimed once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        let total: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let out: Vec<usize> = (0usize..64)
            .into_par_iter()
            .map(|i| {
                // vary per-item cost to exercise the dynamic cursor
                let mut acc = 0usize;
                for j in 0..(i % 7) * 1000 {
                    acc = acc.wrapping_add(j);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
