//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this dependency-free stand-in. It keeps the parts the repo actually
//! relies on: the [`Serialize`] / [`Deserialize`] traits, `#[derive]`
//! macros for plain structs and unit enums (via the sibling `serde_derive`
//! shim), and a JSON-shaped data model consumed by the `serde_json` shim.
//!
//! Unlike upstream serde there is no visitor machinery: serialization goes
//! through an owned [`Value`] tree. That is entirely sufficient for the
//! small configuration/record types this repo round-trips, and it keeps
//! object key order deterministic (declaration order), which the bench
//! artifact determinism tests rely on.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The serialization data model: a JSON-shaped value tree.
///
/// Objects preserve insertion order so serialized output is a pure function
/// of the value, independent of hash seeds.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key/value map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` when `self` is an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Views `self` as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Views `self` as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Views `self` as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns [`Error`] if the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => return Err(Error(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(raw).map_err(|_| Error(format!(
                    concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| Error(format!("value {x} out of i64 range")))?,
                    Value::I64(x) => *x,
                    other => return Err(Error(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(raw).map_err(|_| Error(format!(
                    concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    other => Err(Error(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(Error(format!("expected tuple array, got {other:?}"))),
                };
                let want = [$($n),+].len();
                if items.len() != want {
                    return Err(Error(format!(
                        "expected tuple of {want}, got {} elements", items.len())));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

/// Helpers used by the generated derive code; not a public API.
pub mod de {
    use super::{Deserialize, Error, Value};

    /// Views `v` as an object, naming `ty` in the error.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error(format!("expected {ty} object, got {other:?}"))),
        }
    }

    /// Views `v` as an array, naming `ty` in the error.
    pub fn as_array<'v>(v: &'v Value, ty: &str) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(items) => Ok(items),
            other => Err(Error(format!("expected {ty} array, got {other:?}"))),
        }
    }

    /// Extracts and deserializes field `name` of struct `ty`.
    pub fn field<T: Deserialize>(
        obj: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error(format!("missing field `{name}` of {ty}"))),
        }
    }

    /// Extracts and deserializes field `name` of struct `ty`, falling back
    /// to `T::default()` when the field is absent — the shim's
    /// `#[serde(default)]`, used for fields added after artifacts of the
    /// type were already written.
    pub fn field_or_default<T: Deserialize + Default>(
        obj: &[(String, Value)],
        name: &str,
        _ty: &str,
    ) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Ok(T::default()),
        }
    }

    /// Extracts and deserializes element `i` of tuple struct `ty`.
    pub fn elem<T: Deserialize>(items: &[Value], i: usize, ty: &str) -> Result<T, Error> {
        match items.get(i) {
            Some(v) => T::from_value(v),
            None => Err(Error(format!("missing element {i} of {ty}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, "x".to_string());
        assert_eq!(
            <(u32, String)>::from_value(&t.to_value()).unwrap(),
            (1, "x".to_string())
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
    }

    #[test]
    fn range_errors_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }
}
