//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation of exactly the surface the
//! repo uses: [`rngs::StdRng`], [`SeedableRng`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256**, seeded through SplitMix64, so streams are
//! deterministic, high-quality, and stable across platforms. Values differ
//! from upstream `rand` (which uses ChaCha12 for `StdRng`); nothing in this
//! repo depends on the exact stream, only on determinism per seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a word stream ("standard"
/// distribution): the target of [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value using the provided word source.
    fn sample_standard(next: impl FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(mut next: impl FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard(mut next: impl FnMut() -> u64) -> Self {
        ((next() as u128) << 64) | next() as u128
    }
}

impl Standard for bool {
    fn sample_standard(mut next: impl FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(mut next: impl FnMut() -> u64) -> Self {
        // 53 random mantissa bits in [0, 1)
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(mut next: impl FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, next: impl FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, mut next: impl FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                // Debiased multiply-shift (Lemire): reject draws whose low
                // word lands in the short band of size 2^64 mod span.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = (next() as u128).wrapping_mul(span as u128);
                    if (m as u64) >= threshold {
                        return lo + (m >> 64) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, next: impl FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = <u64 as SampleUniform>::sample_range(0, span, next);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, next: impl FnMut() -> u64) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(next);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: Self, hi: Self, next: impl FnMut() -> u64) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f32::sample_standard(next);
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(|| self.next_u64())
    }

    /// Samples uniformly from the half-open `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(range.start, range.end, || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // avoid the all-zero state, which xoshiro cannot leave
            if s == [0; 4] {
                let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "value {v} drawn {c}/3000 times");
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
