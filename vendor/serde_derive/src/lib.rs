//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the serde shim.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are not
//! available offline). Supports exactly the shapes this workspace derives:
//!
//! * structs with named fields → JSON objects in declaration order,
//! * tuple structs with one field (newtypes) → the inner value,
//! * tuple structs with several fields → JSON arrays,
//! * unit structs → `null`,
//! * enums whose variants are all unit variants → the variant name string.
//!
//! The only `#[serde(...)]` attribute supported is `#[serde(default)]` on a
//! named field: a missing field deserializes to `Default::default()` (for
//! fields added after artifacts of the type were written). Generics,
//! data-carrying enum variants, and any other `#[serde(...)]` attribute are
//! rejected with a compile-time panic so a mismatch is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the shim's `serde::Serialize` for a supported type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|Field { name: f, .. }| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` for a supported type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|Field { name: f, default }| {
                    let getter = if *default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    format!("{f}: ::serde::de::{getter}(__obj, \"{f}\", \"{name}\")?")
                })
                .collect();
            format!(
                "let __obj = ::serde::de::as_object(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de::elem(__arr, {i}, \"{name}\")?"))
                .collect();
            format!(
                "let __arr = ::serde::de::as_array(v, \"{name}\")?;\n\
                 if __arr.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"expected {arity} elements for {name}, got {{}}\", __arr.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {},\n\
                         __other => ::std::result::Result::Err(::serde::Error(\n\
                             ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                     }},\n\
                     __other => ::std::result::Result::Err(::serde::Error(\n\
                         ::std::format!(\"expected {name} variant string, got {{__other:?}}\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn parse(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                shape: Shape::Named(named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream()).len();
                Input {
                    name,
                    shape: Shape::Tuple(arity),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input {
                name,
                shape: Shape::Unit,
            },
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                shape: Shape::UnitEnum(unit_variants(g.stream())),
            },
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Splits a token stream on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments do not split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: i32 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut iter = chunk.into_iter().peekable();
            let mut default = false;
            loop {
                match iter.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        iter.next();
                        if let Some(TokenTree::Group(g)) = iter.next() {
                            default |= is_serde_default(&g);
                        }
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        iter.next();
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    _ => break,
                }
            }
            match iter.next() {
                Some(TokenTree::Ident(id)) => Field {
                    name: id.to_string(),
                    default,
                },
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Whether an attribute's `[...]` group is exactly `serde(default)`. Any
/// other `serde(...)` attribute is rejected loudly — the shim would
/// silently ignore it otherwise.
fn is_serde_default(attr: &proc_macro::Group) -> bool {
    let mut iter = attr.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false, // a non-serde attribute (e.g. doc): skip it
    }
    match iter.next() {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            if inner == ["default"] {
                true
            } else {
                panic!(
                    "serde shim derive: unsupported serde attribute `serde({})`; \
                     only `serde(default)` is supported",
                    inner.join("")
                );
            }
        }
        other => panic!("serde shim derive: malformed serde attribute {other:?}"),
    }
}

fn unit_variants(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut iter = chunk.into_iter().peekable();
            while let Some(TokenTree::Punct(p)) = iter.peek() {
                if p.as_char() == '#' {
                    iter.next();
                    iter.next();
                } else {
                    break;
                }
            }
            let name = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected variant name, got {other:?}"),
            };
            if let Some(extra) = iter.next() {
                panic!(
                    "serde shim derive: variant `{name}` carries data ({extra:?}); \
                     only unit variants are supported"
                );
            }
            name
        })
        .collect()
}
