//! Offline vendored subset of the `proptest` API.
//!
//! Supports the constructs this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] #[test] fn f(x in strat, y: ty) { .. } }`
//! * range strategies (`4usize..60`, `0.1f64..0.9`) and plain-type
//!   parameters drawn from the full domain,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! file: inputs are drawn from a deterministic per-test stream (seeded from
//! the test path and case index, overridable with `PROPTEST_RNG_SEED`), so
//! every failure is reproducible by rerunning the same test binary.
//! `prop_assume!` skips the case rather than re-drawing.

/// Execution configuration: how many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic input stream for one test case (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for case `case` of the test identified by `path`.
    ///
    /// Honors `PROPTEST_RNG_SEED` (a u64) as an extra perturbation so suites
    /// can be re-rolled without editing code.
    pub fn for_case(path: &str, case: u32) -> Self {
        let base: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        let mut state = base ^ fnv1a(path.as_bytes()) ^ ((case as u64) << 32 | case as u64);
        // decorrelate nearby case indices
        for _ in 0..2 {
            state = splitmix(&mut state);
        }
        TestRng { state }
    }

    /// Next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        splitmix(&mut self.state)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Whole-domain generation for plain-typed parameters (`x: u64`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A strategy for [`Arbitrary`] types, proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; failure fails the test with the
/// case's inputs in the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `fn` item in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __outcome = $crate::__proptest_case! {
                    rng = __rng; body = $body; bindings = []; $($params)*
                };
                let _ = __outcome;
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: munches the parameter list of one property, accumulating
/// bindings, then runs the body in a skippable closure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `name in strategy` (more params follow)
    (rng = $rng:ident; body = $body:block; bindings = [$($acc:tt)*];
     $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case! {
            rng = $rng; body = $body;
            bindings = [$($acc)* (strat $name ($strat))];
            $($rest)*
        }
    };
    // `name in strategy` (final)
    (rng = $rng:ident; body = $body:block; bindings = [$($acc:tt)*];
     $name:ident in $strat:expr) => {
        $crate::__proptest_case! {
            rng = $rng; body = $body;
            bindings = [$($acc)* (strat $name ($strat))];
        }
    };
    // `name: Type` (more params follow)
    (rng = $rng:ident; body = $body:block; bindings = [$($acc:tt)*];
     $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case! {
            rng = $rng; body = $body;
            bindings = [$($acc)* (arb $name ($ty))];
            $($rest)*
        }
    };
    // `name: Type` (final)
    (rng = $rng:ident; body = $body:block; bindings = [$($acc:tt)*];
     $name:ident : $ty:ty) => {
        $crate::__proptest_case! {
            rng = $rng; body = $body;
            bindings = [$($acc)* (arb $name ($ty))];
        }
    };
    // all params munched: bind in order, run body
    (rng = $rng:ident; body = $body:block; bindings = [$($binding:tt)*];) => {
        {
            let mut __case = || -> ::core::ops::ControlFlow<()> {
                $crate::__proptest_bind! { rng = $rng; $($binding)* }
                $body
                ::core::ops::ControlFlow::Continue(())
            };
            __case()
        }
    };
}

/// Internal: emits one `let` per accumulated binding, in declaration order.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (rng = $rng:ident;) => {};
    (rng = $rng:ident; (strat $name:ident ($strat:expr)) $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
    (rng = $rng:ident; (arb $name:ident ($ty:ty)) $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 5u64..50, y in 0.25f64..0.75, z in 3usize..9) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((3..9).contains(&z));
        }

        /// Plain-typed params and assume-skips both work.
        #[test]
        fn arbitrary_and_assume(a: u64, b: u64) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        let mut c = TestRng::for_case("mod::test", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn just_returns_value() {
        let mut rng = TestRng::for_case("j", 0);
        assert_eq!(Just(7u32).sample(&mut rng), 7);
        let s = any::<bool>();
        let _: bool = s.sample(&mut rng);
    }
}
