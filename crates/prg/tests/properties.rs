//! Additional property and object-safety tests for the PRG crate.

use das_prg::{primes, BlockDecay, DelayLaw, KWiseGenerator, Uniform};
use proptest::prelude::*;

#[test]
fn delay_laws_are_object_safe() {
    // the private scheduler selects the law at runtime as a trait object
    let laws: Vec<Box<dyn DelayLaw>> = vec![
        Box::new(Uniform::new(10)),
        Box::new(BlockDecay::new(8, 4, 0.5)),
    ];
    for law in laws {
        let s = law.sample_from_pair(12345, 678);
        assert!(s < law.support());
        assert!(law.pmf(s) > 0.0);
    }
}

#[test]
fn kwise_values_depend_on_every_seed_byte() {
    let p = primes::next_prime(1 << 20);
    let base = KWiseGenerator::from_seed_bytes(b"abcdefgh", 8, p);
    for i in 0..8 {
        let mut seed = *b"abcdefgh";
        seed[i] ^= 1;
        let other = KWiseGenerator::from_seed_bytes(&seed, 8, p);
        assert!(
            (0..16).any(|x| base.value(x) != other.value(x)),
            "flipping byte {i} changed nothing"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bucketed values never collide across evaluation points: buckets are
    /// disjoint ranges, so (aid, idx) pairs map to distinct points.
    #[test]
    fn bucket_points_are_distinct(aid1 in 0u64..100, aid2 in 0u64..100,
                                  i1 in 0u64..8, i2 in 0u64..8) {
        prop_assume!((aid1, i1) != (aid2, i2));
        let width = 8u64;
        let x1 = aid1 * width + i1;
        let x2 = aid2 * width + i2;
        prop_assert_ne!(x1, x2);
    }

    /// Uniform samples driven by a matching-modulus generator are exactly
    /// the generator values (no bias path).
    #[test]
    fn uniform_prime_matching_is_identity(range in 2u64..5000, x in 0u64..1000) {
        let law = Uniform::prime_at_least(range);
        let gen = KWiseGenerator::from_seed_bytes(b"bias", 4, law.range());
        let v = gen.value(x);
        prop_assert_eq!(law.sample_from_pair(v, 0), v);
    }

    /// Block-decay tail masses decay geometrically: mass of any suffix of
    /// blocks i.. equals (beta - i)/beta.
    #[test]
    fn block_decay_suffix_mass(l in 4u64..100, beta in 2usize..12) {
        let d = BlockDecay::new(l, beta, 0.5);
        for i in 0..beta {
            let lo: u64 = (0..i).map(|j| d.block_size(j)).sum();
            let mass: f64 = (lo..d.support()).map(|x| d.pmf(x)).sum();
            let want = (beta - i) as f64 / beta as f64;
            prop_assert!((mass - want).abs() < 1e-9, "suffix {i}: {mass} vs {want}");
        }
    }

    /// next_prime is idempotent on primes and monotone.
    #[test]
    fn next_prime_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(primes::next_prime(lo) <= primes::next_prime(hi));
        let p = primes::next_prime(a);
        prop_assert_eq!(primes::next_prime(p), p);
    }
}
