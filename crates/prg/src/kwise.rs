//! The `k`-wise independent generator (Reed–Solomon construction).

use crate::field::PrimeField;
use crate::seed::BitPool;

/// A `k`-wise independent family member: the random degree-`(k-1)`
/// polynomial `f(x) = c_0 + c_1 x + … + c_{k-1} x^{k-1}` over `GF(p)`,
/// with coefficients derived from a shared seed.
///
/// For any `k` distinct evaluation points, the values `f(x_1) … f(x_k)` are
/// uniform and independent over the random choice of coefficients — the
/// classical construction the paper cites ([Alon–Spencer, Thm 15.2.1]),
/// extended from `GF(2)` to `GF(p)` as in the paper's footnote 6.
///
/// The paper indexes the required `poly(n)` values by *algorithm id* (AID)
/// buckets; [`KWiseGenerator::bucket_value`] implements that indexing.
#[derive(Clone, Debug)]
pub struct KWiseGenerator {
    field: PrimeField,
    coeffs: Vec<u64>,
}

impl KWiseGenerator {
    /// Derives the `k` coefficients from shared seed bytes over `GF(p)`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `p` is out of [`PrimeField`] range.
    pub fn from_seed_bytes(seed: &[u8], k: usize, p: u64) -> Self {
        assert!(k > 0, "independence parameter must be positive");
        let field = PrimeField::new(p);
        let mut pool = BitPool::new(seed);
        let coeffs = pool.take_below(p, k);
        KWiseGenerator { field, coeffs }
    }

    /// Builds the generator from explicit coefficients (canonical in
    /// `[0, p)`); mainly for tests and exhaustive enumeration.
    pub fn from_coefficients(coeffs: Vec<u64>, p: u64) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        let field = PrimeField::new(p);
        assert!(
            coeffs.iter().all(|&c| c < p),
            "coefficients must be canonical"
        );
        KWiseGenerator { field, coeffs }
    }

    /// The independence parameter `k`.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// The field modulus `p`.
    pub fn modulus(&self) -> u64 {
        self.field.modulus()
    }

    /// The `x`-th pseudo-random value, uniform in `[0, p)`.
    pub fn value(&self, x: u64) -> u64 {
        self.field.poly_eval(&self.coeffs, x)
    }

    /// The `idx`-th value of bucket `aid` — the paper's per-algorithm
    /// bucketing of the generated values. Buckets are disjoint ranges of
    /// evaluation points of width `bucket_width`.
    pub fn bucket_value(&self, aid: u64, idx: u64, bucket_width: u64) -> u64 {
        assert!(idx < bucket_width, "index outside bucket");
        self.value(aid.wrapping_mul(bucket_width).wrapping_add(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Exhaustively verify k-wise independence for small parameters: over
    /// all p^k coefficient vectors, every k-tuple of values at k distinct
    /// points appears exactly once (perfect uniformity).
    fn check_kwise_exact(p: u64, k: usize, points: &[u64]) {
        assert_eq!(points.len(), k);
        let total = (p as usize).pow(k as u32);
        let mut counts: HashMap<Vec<u64>, usize> = HashMap::new();
        for code in 0..total {
            let mut c = code;
            let coeffs: Vec<u64> = (0..k)
                .map(|_| {
                    let v = (c % p as usize) as u64;
                    c /= p as usize;
                    v
                })
                .collect();
            let gen = KWiseGenerator::from_coefficients(coeffs, p);
            let tuple: Vec<u64> = points.iter().map(|&x| gen.value(x)).collect();
            *counts.entry(tuple).or_default() += 1;
        }
        assert_eq!(counts.len(), total, "all tuples must appear");
        for (tuple, cnt) in counts {
            assert_eq!(cnt, 1, "tuple {tuple:?} appeared {cnt} times");
        }
    }

    #[test]
    fn pairwise_independence_exact() {
        check_kwise_exact(5, 2, &[0, 3]);
        check_kwise_exact(7, 2, &[1, 6]);
    }

    #[test]
    fn threewise_independence_exact() {
        check_kwise_exact(5, 3, &[0, 1, 4]);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = KWiseGenerator::from_seed_bytes(b"seed", 8, 101);
        let b = KWiseGenerator::from_seed_bytes(b"seed", 8, 101);
        for x in 0..50 {
            assert_eq!(a.value(x), b.value(x));
        }
        let c = KWiseGenerator::from_seed_bytes(b"other", 8, 101);
        assert!((0..50).any(|x| a.value(x) != c.value(x)));
    }

    #[test]
    fn values_in_field() {
        let g = KWiseGenerator::from_seed_bytes(b"range", 4, 13);
        for x in 0..200 {
            assert!(g.value(x) < 13);
        }
        assert_eq!(g.k(), 4);
        assert_eq!(g.modulus(), 13);
    }

    #[test]
    fn buckets_are_disjoint_evaluations() {
        let g = KWiseGenerator::from_seed_bytes(b"bucket", 4, 1009);
        // same (aid, idx) -> same value; different aid -> different point
        assert_eq!(g.bucket_value(3, 5, 100), g.bucket_value(3, 5, 100));
        assert_eq!(g.bucket_value(2, 7, 100), g.value(207));
    }

    #[test]
    #[should_panic]
    fn bucket_index_out_of_range_panics() {
        let g = KWiseGenerator::from_seed_bytes(b"x", 2, 11);
        g.bucket_value(0, 5, 5);
    }

    #[test]
    fn rough_uniformity_over_seeds() {
        // over many random seeds, value(0) should hit all residues about
        // equally often
        let p = 11u64;
        let mut counts = vec![0u32; p as usize];
        for s in 0..11_000u32 {
            let g = KWiseGenerator::from_seed_bytes(&s.to_le_bytes(), 3, p);
            counts[g.value(0) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "residue count {c} far from 1000");
        }
    }
}
