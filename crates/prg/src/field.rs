//! Arithmetic in the prime field `GF(p)`.

use serde::{Deserialize, Serialize};

/// The field `GF(p)` for a prime `p < 2^62`.
///
/// All operations take and return canonical representatives in `[0, p)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimeField {
    p: u64,
}

impl PrimeField {
    /// Creates the field `GF(p)`.
    ///
    /// # Panics
    /// Panics if `p < 2` or `p >= 2^62` (guard for multiplication via
    /// `u128`) — primality itself is the caller's responsibility; use
    /// [`crate::primes::is_prime`].
    pub fn new(p: u64) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(p < (1 << 62), "modulus too large");
        PrimeField { p }
    }

    /// The modulus `p`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Reduces an arbitrary `u64` into `[0, p)`.
    #[inline]
    pub fn reduce(&self, x: u64) -> u64 {
        x % self.p
    }

    /// `a + b mod p`. Inputs must be canonical.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// `a - b mod p`. Inputs must be canonical.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// `a * b mod p`. Inputs must be canonical.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.p as u128) as u64
    }

    /// `a^e mod p` by square-and-multiply.
    pub fn pow(&self, mut a: u64, mut e: u64) -> u64 {
        let mut acc = 1 % self.p;
        a %= self.p;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse by Fermat's little theorem (`p` must be
    /// prime).
    ///
    /// # Panics
    /// Panics if `a ≡ 0 (mod p)`.
    pub fn inv(&self, a: u64) -> u64 {
        assert!(!a.is_multiple_of(self.p), "zero has no inverse");
        self.pow(a, self.p - 2)
    }

    /// Evaluates the polynomial `c[0] + c[1]·x + … + c[d]·x^d` at `x`
    /// by Horner's rule. Coefficients need not be canonical.
    pub fn poly_eval(&self, coeffs: &[u64], x: u64) -> u64 {
        let x = self.reduce(x);
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), self.reduce(c));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: u64 = 1_000_000_007;

    #[test]
    fn basic_ops() {
        let f = PrimeField::new(7);
        assert_eq!(f.add(5, 4), 2);
        assert_eq!(f.sub(2, 5), 4);
        assert_eq!(f.mul(3, 5), 1);
        assert_eq!(f.pow(3, 6), 1); // Fermat
        assert_eq!(f.inv(3), 5);
        assert_eq!(f.mul(3, f.inv(3)), 1);
    }

    #[test]
    fn poly_eval_horner() {
        let f = PrimeField::new(97);
        // 2 + 3x + x^2 at x = 5: 2 + 15 + 25 = 42
        assert_eq!(f.poly_eval(&[2, 3, 1], 5), 42);
        assert_eq!(f.poly_eval(&[], 5), 0);
        assert_eq!(f.poly_eval(&[13], 12345), 13);
    }

    #[test]
    #[should_panic]
    fn zero_inverse_panics() {
        PrimeField::new(7).inv(14);
    }

    #[test]
    #[should_panic]
    fn huge_modulus_panics() {
        PrimeField::new(1 << 62);
    }

    proptest! {
        #[test]
        fn field_laws(a in 0..P, b in 0..P, c in 0..P) {
            let f = PrimeField::new(P);
            // commutativity
            prop_assert_eq!(f.add(a, b), f.add(b, a));
            prop_assert_eq!(f.mul(a, b), f.mul(b, a));
            // associativity
            prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
            prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            // distributivity
            prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
            // sub inverts add
            prop_assert_eq!(f.sub(f.add(a, b), b), a);
        }

        #[test]
        fn inverse_law(a in 1..P) {
            let f = PrimeField::new(P);
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        }

        #[test]
        fn pow_matches_repeated_mul(a in 0..P, e in 0u64..64) {
            let f = PrimeField::new(P);
            let mut acc = 1u64;
            for _ in 0..e {
                acc = f.mul(acc, a);
            }
            prop_assert_eq!(f.pow(a, e), acc);
        }
    }
}
