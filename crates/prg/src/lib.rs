//! # das-prg
//!
//! Bounded-independence pseudorandomness for the `dasched` schedulers.
//!
//! The paper's private-randomness scheduler (Theorem 1.3/4.1) shares only
//! `Θ(log² n)` random bits per cluster and stretches them — via the classical
//! Reed–Solomon construction, i.e. evaluation of a random degree-`(k-1)`
//! polynomial over a prime field `GF(p)` — into `poly(n)` values that are
//! `k`-wise independent for `k = Θ(log n)`. That is exactly what
//! [`KWiseGenerator`] implements, on top of:
//!
//! * [`field::PrimeField`] — arithmetic in `GF(p)` for 62-bit primes,
//! * [`primes`] — deterministic Miller–Rabin and Bertrand-postulate prime
//!   lookup (the paper picks delay ranges `[1..p]` for a prime `p ∈ Θ(R)`),
//! * [`dist`] — the delay distributions: the uniform law of Theorem 1.1 and
//!   the non-uniform block-decay law of Lemma 4.4.
//!
//! ```
//! use das_prg::{KWiseGenerator, primes};
//!
//! // 2^7-ish delays, 8-wise independent, from one 16-byte shared seed
//! let p = primes::next_prime(100);
//! let gen = KWiseGenerator::from_seed_bytes(b"shared-randomness", 8, p);
//! let d0 = gen.value(0);
//! assert!(d0 < p);
//! // deterministic: same seed, same values
//! let gen2 = KWiseGenerator::from_seed_bytes(b"shared-randomness", 8, p);
//! assert_eq!(gen.value(17), gen2.value(17));
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod field;
pub mod primes;

mod kwise;
mod seed;

pub use dist::{BlockDecay, DelayLaw, Uniform};
pub use kwise::KWiseGenerator;
pub use seed::BitPool;
