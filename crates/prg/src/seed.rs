//! Deterministic expansion of shared seed bytes into field elements.

/// A deterministic stream of `u64` words derived from a byte seed.
///
/// The paper shares `Θ(log² n)` truly-random bits per cluster; those bits
/// (transported as message payloads) are the *seed* here, and the PRG
/// coefficients are read off the pool. Two nodes holding the same bytes
/// derive exactly the same coefficients — which is the whole point of
/// sharing.
#[derive(Clone, Debug)]
pub struct BitPool {
    state: u64,
}

impl BitPool {
    /// Creates a pool from seed bytes (an FNV-1a fold of the bytes primes
    /// the SplitMix64 stream).
    pub fn new(seed: &[u8]) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in seed {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Avoid the all-zero fixed point for empty input.
        BitPool {
            state: h ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next pseudo-random word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next word reduced into `[0, bound)` (negligible modulo bias for the
    /// bounds used here, `bound << 2^64`).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Fills a vector with `count` words below `bound`.
    pub fn take_below(&mut self, bound: u64, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.next_below(bound)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = BitPool::new(b"cluster-7");
        let mut b = BitPool::new(b"cluster-7");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = BitPool::new(b"cluster-8");
        assert_ne!(BitPool::new(b"cluster-7").next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut p = BitPool::new(&[1, 2, 3]);
        for v in p.take_below(17, 100) {
            assert!(v < 17);
        }
    }

    #[test]
    fn empty_seed_is_fine() {
        let mut p = BitPool::new(&[]);
        let v1 = p.next_u64();
        let v2 = p.next_u64();
        assert_ne!(v1, v2);
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        BitPool::new(&[0]).next_below(0);
    }

    #[test]
    fn roughly_uniform() {
        let mut p = BitPool::new(b"uniformity");
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[p.next_below(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
