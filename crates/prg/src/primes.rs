//! Primality testing and prime lookup.
//!
//! Lemma 4.3 of the paper picks random delays from `[1..p]` for a prime
//! `p ∈ Θ(R)` and invokes Bertrand's postulate (a prime exists in `[a, 2a]`
//! for every `a ≥ 1`) — [`next_prime`] is the constructive version.

/// Deterministic Miller–Rabin primality test, exact for all `u64`
/// (witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // write n-1 = d * 2^s
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime `>= n` (and `>= 2`).
///
/// By Bertrand's postulate the result is `< 2·max(n, 2)`, so delay ranges
/// grow by at most a factor of two.
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    while !is_prime(c) {
        c += 1;
    }
    c
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1 % m;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn known_large_values() {
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(2_305_843_009_213_693_951)); // 2^61 - 1, Mersenne
        assert!(!is_prime(1_000_000_007u64 * 3));
        // strong pseudoprime to several bases, composite:
        assert!(!is_prime(3_215_031_751));
    }

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(100), 101);
    }

    proptest! {
        #[test]
        fn bertrand(n in 1u64..1_000_000) {
            let p = next_prime(n);
            prop_assert!(p >= n.max(2));
            prop_assert!(p < 2 * n.max(2), "Bertrand violated: {n} -> {p}");
            prop_assert!(is_prime(p));
        }

        #[test]
        fn matches_trial_division(n in 2u64..100_000) {
            let trial = (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0);
            prop_assert_eq!(is_prime(n), trial);
        }
    }
}
