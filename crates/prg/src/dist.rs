//! Random delay laws used by the schedulers.
//!
//! * [`Uniform`] — Theorem 1.1: delay each algorithm uniformly in
//!   `[Θ(congestion / log n)]` phases.
//! * [`BlockDecay`] — Lemma 4.4: the non-uniform distribution that lets the
//!   private-randomness scheduler pay for only the *first*-scheduled copy of
//!   each message. Its support is split into `β = Θ(log n)` blocks; block
//!   `i` (0-based) holds `⌈L·α^i⌉` points and receives total probability
//!   mass `1/β`, spread uniformly inside the block.

use crate::primes::next_prime;
use rand::Rng;

/// A distribution over integer delays `0..support()`.
pub trait DelayLaw {
    /// Number of points in the support.
    fn support(&self) -> u64;

    /// Probability mass of `delay` (0 outside the support).
    fn pmf(&self, delay: u64) -> f64;

    /// Samples from two independent uniform words (e.g. two `k`-wise
    /// independent PRG values); deterministic in `(r1, r2)`.
    fn sample_from_pair(&self, r1: u64, r2: u64) -> u64;

    /// Samples with a local RNG.
    fn sample_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> u64
    where
        Self: Sized,
    {
        let r1 = rng.gen::<u64>();
        let r2 = rng.gen::<u64>();
        self.sample_from_pair(r1, r2)
    }
}

/// The uniform law on `0..range`.
///
/// To avoid modulo bias when driven by a `GF(p)` PRG, construct it with
/// [`Uniform::prime_at_least`], which rounds the range up to a prime — the
/// paper's own trick (footnote 6: pick delays in `[1..p]` for a prime
/// `p ∈ Θ(R)`, which exists by Bertrand's postulate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uniform {
    range: u64,
}

impl Uniform {
    /// Uniform on `0..range`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn new(range: u64) -> Self {
        assert!(range > 0, "range must be positive");
        Uniform { range }
    }

    /// Uniform on `0..p` for the smallest prime `p >= range`; pair it with
    /// a PRG over the same modulus `p` for exactly unbiased samples.
    pub fn prime_at_least(range: u64) -> Self {
        Uniform {
            range: next_prime(range),
        }
    }

    /// The range (exclusive upper bound).
    pub fn range(&self) -> u64 {
        self.range
    }
}

impl DelayLaw for Uniform {
    fn support(&self) -> u64 {
        self.range
    }

    fn pmf(&self, delay: u64) -> f64 {
        if delay < self.range {
            1.0 / self.range as f64
        } else {
            0.0
        }
    }

    fn sample_from_pair(&self, r1: u64, _r2: u64) -> u64 {
        r1 % self.range
    }
}

/// The block-decay law of Lemma 4.4.
///
/// Support: `β` consecutive blocks, block `i` of size `⌈L·α^i⌉ ≥ 1`; each
/// block carries total mass `1/β`, uniform within the block. Points in
/// later blocks are individually *heavier*, which compensates for the
/// shrinking probability that a copy delayed that far is the first
/// scheduled — the balance that yields `O(log n / congestion)` per-big-round
/// first-copy load in the paper's analysis.
#[derive(Clone, Debug)]
pub struct BlockDecay {
    block_sizes: Vec<u64>,
    /// Cumulative start offsets of each block (offsets[i] = start of block i).
    offsets: Vec<u64>,
}

impl BlockDecay {
    /// Creates the law with first-block size `l`, `beta` blocks, and decay
    /// factor `alpha`.
    ///
    /// # Panics
    /// Panics if `l == 0`, `beta == 0`, or `alpha` is outside `(0, 1)`.
    pub fn new(l: u64, beta: usize, alpha: f64) -> Self {
        assert!(l > 0, "first block must be non-empty");
        assert!(beta > 0, "need at least one block");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let mut block_sizes = Vec::with_capacity(beta);
        let mut offsets = Vec::with_capacity(beta);
        let mut off = 0u64;
        for i in 0..beta {
            let size = ((l as f64) * alpha.powi(i as i32)).ceil().max(1.0) as u64;
            offsets.push(off);
            block_sizes.push(size);
            off += size;
        }
        BlockDecay {
            block_sizes,
            offsets,
        }
    }

    /// Number of blocks `β`.
    pub fn beta(&self) -> usize {
        self.block_sizes.len()
    }

    /// Size of block `i`.
    pub fn block_size(&self, i: usize) -> u64 {
        self.block_sizes[i]
    }

    /// The block containing `delay`, or `None` outside the support.
    pub fn block_of(&self, delay: u64) -> Option<usize> {
        if delay >= self.support() {
            return None;
        }
        match self.offsets.binary_search(&delay) {
            Ok(i) => Some(i),
            Err(i) => Some(i - 1),
        }
    }
}

impl DelayLaw for BlockDecay {
    fn support(&self) -> u64 {
        *self.offsets.last().expect("beta >= 1") + *self.block_sizes.last().expect("beta >= 1")
    }

    fn pmf(&self, delay: u64) -> f64 {
        match self.block_of(delay) {
            Some(i) => 1.0 / (self.beta() as f64 * self.block_sizes[i] as f64),
            None => 0.0,
        }
    }

    fn sample_from_pair(&self, r1: u64, r2: u64) -> u64 {
        let beta = self.beta() as u64;
        let block = (r1 % beta) as usize;
        let off = r2 % self.block_sizes[block];
        self.offsets[block] + off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_pmf_sums_to_one() {
        let u = Uniform::new(10);
        let total: f64 = (0..12).map(|d| u.pmf(d)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(u.pmf(10), 0.0);
    }

    #[test]
    fn uniform_prime_rounding() {
        let u = Uniform::prime_at_least(10);
        assert_eq!(u.range(), 11);
        let u = Uniform::prime_at_least(13);
        assert_eq!(u.range(), 13);
    }

    #[test]
    fn block_decay_shape() {
        let d = BlockDecay::new(100, 5, 0.5);
        assert_eq!(d.beta(), 5);
        assert_eq!(d.block_size(0), 100);
        assert_eq!(d.block_size(1), 50);
        assert_eq!(d.block_size(4), 7); // ceil(100 * 0.0625)
        assert_eq!(d.support(), 100 + 50 + 25 + 13 + 7);
    }

    #[test]
    fn block_decay_pmf_sums_to_one() {
        let d = BlockDecay::new(37, 7, 0.6);
        let total: f64 = (0..d.support()).map(|x| d.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
        assert_eq!(d.pmf(d.support()), 0.0);
    }

    #[test]
    fn block_masses_equal() {
        let d = BlockDecay::new(64, 6, 0.5);
        for i in 0..d.beta() {
            let lo = if i == 0 { 0 } else { d.offsets[i] };
            let hi = lo + d.block_size(i);
            let mass: f64 = (lo..hi).map(|x| d.pmf(x)).sum();
            assert!((mass - 1.0 / 6.0).abs() < 1e-9, "block {i} mass {mass}");
        }
    }

    #[test]
    fn later_blocks_have_heavier_points() {
        let d = BlockDecay::new(100, 5, 0.5);
        let first = d.pmf(0);
        let last = d.pmf(d.support() - 1);
        assert!(last > first, "points get heavier toward the tail");
    }

    #[test]
    fn block_of_boundaries() {
        let d = BlockDecay::new(10, 3, 0.5);
        // sizes: 10, 5, 3 ; offsets 0, 10, 15
        assert_eq!(d.block_of(0), Some(0));
        assert_eq!(d.block_of(9), Some(0));
        assert_eq!(d.block_of(10), Some(1));
        assert_eq!(d.block_of(14), Some(1));
        assert_eq!(d.block_of(15), Some(2));
        assert_eq!(d.block_of(17), Some(2));
        assert_eq!(d.block_of(18), None);
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = BlockDecay::new(8, 4, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 200_000;
        let mut counts = vec![0u64; d.support() as usize];
        for _ in 0..trials {
            counts[d.sample_rng(&mut rng) as usize] += 1;
        }
        for (x, &c) in counts.iter().enumerate() {
            let expect = d.pmf(x as u64) * trials as f64;
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.1, "point {x}: got {c}, expected {expect}");
        }
    }

    #[test]
    fn pair_sampling_deterministic() {
        let d = BlockDecay::new(20, 4, 0.7);
        assert_eq!(d.sample_from_pair(5, 9), d.sample_from_pair(5, 9));
        let u = Uniform::new(7);
        assert_eq!(u.sample_from_pair(20, 0), 6);
    }

    proptest! {
        #[test]
        fn samples_in_support(l in 1u64..200, beta in 1usize..10, a in 0.1f64..0.9,
                              r1: u64, r2: u64) {
            let d = BlockDecay::new(l, beta, a);
            let s = d.sample_from_pair(r1, r2);
            prop_assert!(s < d.support());
            prop_assert!(d.pmf(s) > 0.0);
        }

        #[test]
        fn support_close_to_geometric_sum(l in 10u64..500, a in 0.3f64..0.9) {
            let beta = 20usize;
            let d = BlockDecay::new(l, beta, a);
            // support <= L/(1-alpha) + beta (ceil slack)
            let bound = (l as f64) / (1.0 - a) + beta as f64;
            prop_assert!((d.support() as f64) <= bound + 1.0);
            prop_assert!(d.support() >= l);
        }
    }
}
