//! Micro-benchmarks of the substrates: engine round throughput, PRG
//! evaluation, field arithmetic, carving, and the scheduled executor.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::{workloads, TrialRunner};
use das_congest::{Engine, EngineConfig, Protocol, ProtocolNode, RoundContext};
use das_core::{Scheduler, SequentialScheduler, UniformScheduler};
use das_graph::{generators, NodeId};
use das_prg::{field::PrimeField, primes, KWiseGenerator};

/// Every node floods one counter every round — worst-case engine load.
struct Firehose(u64);
struct FirehoseNode {
    rounds: u64,
    t: u64,
}
impl Protocol for Firehose {
    fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        Box::new(FirehoseNode {
            rounds: self.0,
            t: 0,
        })
    }
}
impl ProtocolNode for FirehoseNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        if self.t < self.rounds {
            ctx.send_all(self.t.to_le_bytes().to_vec()).unwrap();
        }
        self.t += 1;
    }
    fn is_done(&self) -> bool {
        self.t > self.rounds
    }
}

fn bench(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    c.bench_function("micro/engine_firehose_20rounds_n256", |b| {
        b.iter(|| {
            Engine::new(&g, EngineConfig::default().with_record(false))
                .run(&Firehose(20))
                .unwrap()
                .messages
        })
    });

    c.bench_function("micro/prime_field_mul_1e5", |b| {
        let f = PrimeField::new(2_305_843_009_213_693_951);
        b.iter(|| {
            let mut acc = 1u64;
            for x in 1..100_000u64 {
                acc = f.mul(acc, x | 1);
            }
            acc
        })
    });

    c.bench_function("micro/next_prime_1e9", |b| {
        b.iter(|| primes::next_prime(1_000_000_000))
    });

    c.bench_function("micro/kwise_k32_eval_1000", |b| {
        let gen = KWiseGenerator::from_seed_bytes(b"micro", 32, 1_000_000_007);
        b.iter(|| (0..1000u64).map(|x| gen.value(x)).sum::<u64>())
    });

    c.bench_function("micro/bfs_distances_n1024", |b| {
        let big = generators::gnp_connected(1024, 0.008, 3);
        b.iter(|| das_graph::traversal::bfs_distances(&big, NodeId(0)))
    });

    let path = generators::path(60);
    let problem = workloads::stacked_relays(&path, 8, 1);
    problem.parameters().unwrap();
    c.bench_function("micro/executor_sequential_8relays_n60", |b| {
        b.iter(|| SequentialScheduler.run(&problem).unwrap().schedule_rounds())
    });

    // Multi-seed sweep through the trial runner, 1 thread vs the full
    // pool: the gap is the parallel harness's speedup on this machine.
    let sweep_problem = workloads::segment_relays(&path, 16, 10, 2, 7);
    sweep_problem.parameters().unwrap();
    let sweep = |_| {
        TrialRunner::new(42, 16).run_trials(|seed| {
            UniformScheduler::default()
                .with_seed(seed)
                .run(&sweep_problem)
                .unwrap()
                .schedule_rounds()
        })
    };
    std::env::set_var("RAYON_NUM_THREADS", "1");
    c.bench_function("micro/runner_sweep_16seeds_1thread", |b| {
        b.iter(|| sweep(()))
    });
    std::env::remove_var("RAYON_NUM_THREADS");
    c.bench_function("micro/runner_sweep_16seeds_all_cores", |b| {
        b.iter(|| sweep(()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
