//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **A1** — block-decay vs uniform-wide delays in the private scheduler
//!   (Lemma 4.4's non-uniform distribution is what removes the extra
//!   `log n` factor from the congestion term);
//! * **A2** — number of clustering layers vs coverage/correctness
//!   (property (3) of Lemma 4.2 needs `Θ(log n)` layers);
//! * **A3** — phase-length factor vs success rate (the Chernoff constant
//!   of Theorem 1.1).

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::{measure, workloads, Table};
use das_core::{PrivateDelayLaw, PrivateScheduler, Scheduler, UniformScheduler};
use das_graph::generators;

fn delay_law_ablation() {
    println!("\n=== A1: block-decay vs uniform-wide delays (private scheduler) ===");
    let g = generators::path(80);
    let mut t = Table::new(&["k", "C", "block-decay", "uniform-wide", "saving"]);
    for k in [32usize, 96, 192] {
        // all relays on the same 12-hop segment: congestion = k, dilation 12
        let problem = workloads::segment_relays(&g, k, 12, 0, 3);
        let params = problem.parameters().unwrap();
        let (bd, _, _) = measure(
            &PrivateScheduler::default().with_delay_law(PrivateDelayLaw::BlockDecay),
            &problem,
        );
        let (uw, _, _) = measure(
            &PrivateScheduler::default().with_delay_law(PrivateDelayLaw::UniformWide),
            &problem,
        );
        assert_eq!(bd.correctness, 1.0, "block-decay must stay correct");
        assert_eq!(uw.correctness, 1.0, "uniform-wide must stay correct");
        t.row_owned(vec![
            k.to_string(),
            params.congestion.to_string(),
            bd.schedule.to_string(),
            uw.schedule.to_string(),
            format!("{:.2}x", uw.schedule as f64 / bd.schedule as f64),
        ]);
    }
    t.print();
    println!("(Lemma 4.4: the non-uniform law drops the delay span from Theta(C) to Theta(C/log n)\n big-rounds; the saving factor grows with C, approaching log n)\n");
}

fn layers_ablation() {
    println!("=== A2: clustering layers vs dilation-ball coverage (Lemma 4.2 property 3) ===");
    // a tight radius rate (1.5 D instead of 4 D) keeps the per-layer
    // padding probability well below 1, so the Theta(log n)-layer
    // repetition is what rescues coverage
    use das_cluster::{CarveConfig, Clustering};
    let g = generators::grid(14, 14);
    let dilation = 4u32;
    let mut t = Table::new(&[
        "layers",
        "covered nodes",
        "avg covering layers",
        "padding/layer",
    ]);
    for layers in [1usize, 2, 4, 8, 16, 24] {
        let cfg = CarveConfig {
            dilation,
            radius_rate: 1.5 * dilation as f64,
            horizon: (1.5 * dilation as f64 * (196f64.ln() + 1.0)).ceil() as u32,
            num_layers: layers,
        };
        let cl = Clustering::carve_centralized(&g, &cfg, 5);
        let covered = g
            .nodes()
            .filter(|&v| !cl.covering_layers(v, dilation).is_empty())
            .count();
        let total: usize = g
            .nodes()
            .map(|v| cl.covering_layers(v, dilation).len())
            .sum();
        t.row_owned(vec![
            layers.to_string(),
            format!("{}/{}", covered, g.node_count()),
            format!("{:.1}", total as f64 / g.node_count() as f64),
            format!("{:.2}", total as f64 / (g.node_count() * layers) as f64),
        ]);
    }
    t.print();
    println!("(a node uncovered in every layer cannot adopt any output; the per-layer padding\n probability is a constant < 1, so Theta(log n) layers are needed for full coverage)\n");
}

fn phase_factor_ablation() {
    println!("=== A3: phase-length factor vs correctness (Theorem 1.1 Chernoff constant) ===");
    let g = generators::path(80);
    let problem = workloads::stacked_relays(&g, 24, 5);
    let mut t = Table::new(&["phase factor", "correct", "late", "schedule"]);
    for pf in [0.25, 0.5, 1.0, 2.0, 3.0] {
        let sched = UniformScheduler {
            shared_seed: 9,
            phase_factor: pf,
            range_factor: 1.0,
            delay_range: None,
        };
        let (m, _, _) = measure(&sched, &problem);
        t.row_owned(vec![
            format!("{pf}"),
            format!("{:.1}%", m.correctness * 100.0),
            m.late.to_string(),
            m.schedule.to_string(),
        ]);
    }
    t.print();
    println!(
        "(phases shorter than the max per-phase edge load make messages spill and arrive late)\n"
    );
}

fn bench(c: &mut Criterion) {
    delay_law_ablation();
    layers_ablation();
    phase_factor_ablation();
    let g = generators::path(80);
    let problem = workloads::segment_relays(&g, 48, 12, 1, 3);
    problem.parameters().unwrap();
    c.bench_function("ablations/private_uniform_wide_k48", |b| {
        b.iter(|| {
            PrivateScheduler::default()
                .with_delay_law(PrivateDelayLaw::UniformWide)
                .run(&problem)
                .unwrap()
                .schedule_rounds()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
