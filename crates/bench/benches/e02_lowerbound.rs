//! E2 — Theorem 3.1 / Figure 2: the hard-instance family.
//!
//! Two tables: (a) the anti-concentration certificate — at budgets below
//! the `log n / log log n` target, essentially *all* crossing patterns
//! overload some edge; (b) the growth of best-found schedules relative to
//! `congestion + dilation` as `n` grows.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::Table;
use das_lowerbound::{analysis, search, HardInstance, HardInstanceParams};

fn instance_for(scale: usize, seed: u64) -> HardInstance {
    // parameters chosen so k·p (expected per-edge congestion) stays ~4
    // while layers and eta grow with the scale
    let layers = 3 + scale;
    let eta = 16 << scale;
    let k = 8 << scale;
    let p = 4.0 / k as f64;
    HardInstance::sample(HardInstanceParams::custom(layers, eta, k, p), seed)
}

fn certificate_table() {
    println!("\n=== E2a: Theorem 3.1 certificate — crossing patterns overload under-budgeted schedules ===");
    let inst = instance_for(2, 5);
    let (c, d, trivial, target) = analysis::targets(&inst);
    println!(
        "instance: n={} C={} D={} trivial LB={} log-factor target={}",
        inst.graph().node_count(),
        c,
        d,
        trivial,
        target
    );
    let mut t = Table::new(&["phases", "rounds/edge", "budget", "overload rate"]);
    for (phases, rounds) in [(d, 1u32), (d, 2), (d, 4), (d, 8), (2 * d, 8)] {
        let rate = analysis::pattern_failure_rate(&inst, rounds, phases, 150, 3);
        t.row_owned(vec![
            phases.to_string(),
            rounds.to_string(),
            (phases as u64 * rounds as u64 * 2).to_string(),
            format!("{:.1}%", rate * 100.0),
        ]);
    }
    t.print();
}

fn growth_table() {
    println!("\n=== E2b: the anti-concentration quantile grows like log eta / log log eta ===");
    println!("(min per-phase edge capacity r* for which >= 5% of random crossing patterns");
    println!(" survive, with mean per-edge per-phase load held at ~1 — the quantity the");
    println!(" probabilistic-method proof of Thm 3.1 rides on. The greedy column shows the");
    println!(" *adaptive* escape available at laptop scale, where the union bound has no bite.)");
    let layers = 6usize;
    let k = 48usize;
    let p = layers as f64 / k as f64; // mean per-cell edge load ~ (k/L)*p = 1
    let mut t = Table::new(&[
        "eta",
        "n",
        "C",
        "D",
        "C+D",
        "r*",
        "oblivious len",
        "ratio",
        "ln eta/lnln eta",
        "greedy",
    ]);
    for eta in [16usize, 64, 256, 1024] {
        let inst = HardInstance::sample(
            HardInstanceParams::custom(layers, eta, k, p),
            41 + eta as u64,
        );
        let (c, d, trivial, _) = analysis::targets(&inst);
        let phases = layers as u32;
        let mut r_star = 1u32;
        while analysis::pattern_failure_rate(&inst, r_star, phases, 100, 5) > 0.95 {
            r_star += 1;
        }
        // an oblivious schedule needs phases of 2*r* rounds
        let oblivious = phases as u64 * 2 * r_star as u64;
        let e = eta as f64;
        let greedy = search::best_greedy(&inst, 8);
        t.row_owned(vec![
            eta.to_string(),
            inst.graph().node_count().to_string(),
            c.to_string(),
            d.to_string(),
            trivial.to_string(),
            r_star.to_string(),
            oblivious.to_string(),
            format!("{:.2}", oblivious as f64 / trivial as f64),
            format!("{:.2}", e.ln() / e.ln().ln()),
            greedy.length.to_string(),
        ]);
    }
    t.print();
    println!("(paper: some instances require Omega(C + D*log n/log log n) rounds — Thm 3.1)\n");
}

fn bench(c: &mut Criterion) {
    certificate_table();
    growth_table();
    let inst = instance_for(1, 5);
    c.bench_function("e02/pattern_failure_rate_100", |b| {
        b.iter(|| analysis::pattern_failure_rate(&inst, 2, 8, 100, 3))
    });
    c.bench_function("e02/best_greedy", |b| {
        b.iter(|| search::best_greedy(&inst, 8).length)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
