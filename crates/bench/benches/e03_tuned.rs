//! E3 — the §3 remark: uniform delays with `Θ(log n / log log n)`-round
//! phases achieve `O((C + D) · log n / log log n)` on the hard family —
//! matching the lower bound there.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::Table;
use das_core::{verify, DasProblem, Scheduler, TunedUniformScheduler, UniformScheduler};
use das_lowerbound::{analysis, HardInstance, HardInstanceParams};

fn table() {
    println!("\n=== E3: §3 remark — log/loglog-tuned phases on hard instances ===");
    let mut t = Table::new(&[
        "scale",
        "n",
        "C+D",
        "target",
        "tuned",
        "tuned/target",
        "uniform",
        "tuned ok",
    ]);
    for scale in 0..3usize {
        let layers = 3 + scale;
        let eta = 16 << scale;
        let k = 8 << scale;
        let inst = HardInstance::sample(
            HardInstanceParams::custom(layers, eta, k, 4.0 / k as f64),
            21 + scale as u64,
        );
        let (_, _, trivial, target) = analysis::targets(&inst);
        let problem = DasProblem::new(inst.graph(), inst.algorithms(), 9);
        let tuned = TunedUniformScheduler::default().run(&problem).unwrap();
        let tuned_rep = verify::against_references(&problem, &tuned).unwrap();
        let uniform = UniformScheduler::default().run(&problem).unwrap();
        t.row_owned(vec![
            scale.to_string(),
            inst.graph().node_count().to_string(),
            trivial.to_string(),
            target.to_string(),
            tuned.schedule_rounds().to_string(),
            format!("{:.2}", tuned.schedule_rounds() as f64 / target as f64),
            uniform.schedule_rounds().to_string(),
            format!("{:.0}%", tuned_rep.correctness_rate() * 100.0),
        ]);
    }
    t.print();
    println!("(paper: O((C+D)*log n/log log n) rounds suffice on this family — §3 remark)\n");
}

fn bench(c: &mut Criterion) {
    table();
    let inst = HardInstance::sample(HardInstanceParams::custom(4, 32, 16, 0.25), 21);
    let problem = DasProblem::new(inst.graph(), inst.algorithms(), 9);
    problem.parameters().unwrap();
    c.bench_function("e03/tuned_schedule_hard_instance", |b| {
        b.iter(|| {
            TunedUniformScheduler::default()
                .run(&problem)
                .unwrap()
                .schedule_rounds()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
