//! Ablations of the PR-6 engine work at the E7 shoot-out sizes:
//!
//! * **row vs columnar** — the same `SchedulePlan` executed through the
//!   legacy row engine (`EngineKind::Row`) and the columnar engine
//!   (arena-allocated phase buffers, contiguous per-arc slices, u64-bitset
//!   window passes). Outcomes are asserted byte-identical before anything
//!   is timed; the table reports rounds/sec and the speedup factor.
//! * **sweep-cache on vs off** — planning a sched-seed sweep from one
//!   shared [`das_bench::SweepPlanner`] artifact vs calling the
//!   scheduler's full `plan()` per seed. Plans are asserted
//!   byte-identical before timing.
//! * **row vs columnar vs batched** (C3) — the PR-7 batched engine
//!   (`EngineKind::ColumnarBatched`: slab construction via
//!   `BlackBoxAlgorithm::create_nodes` plus node-block `step_block`
//!   dispatch, one virtual call per same-algorithm run) against both
//!   predecessors, outcomes asserted byte-identical before timing.
//!
//! `--quick` (or `CRITERION_QUICK=1`) shrinks both the table budgets and
//! the criterion sampling so CI can run this on every PR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use das_bench::{workloads, SweepPlanner, Table};
use das_core::{
    execute_plan_with, EngineKind, ExecutorConfig, PrivateScheduler, Scheduler,
    SequentialScheduler, UniformScheduler,
};
use das_graph::generators;
use std::time::{Duration, Instant};

/// Relay counts from the E7 shoot-out.
const E7_KS: [usize; 5] = [8, 16, 32, 64, 128];

/// Wall-time budget per measured table cell.
fn budget() -> Duration {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1");
    if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    }
}

/// Mean seconds per call of `f`: one calibration call sizes a repetition
/// count that fills `budget`, then the batch is timed as a whole.
fn secs_per_iter<F: FnMut()>(mut f: F, budget: Duration) -> f64 {
    let t = Instant::now();
    f();
    let once = t.elapsed().max(Duration::from_nanos(1));
    let reps = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() / reps as f64
}

fn row_vs_columnar() {
    println!("\n=== C1: row vs columnar engine, rounds/sec at E7 sizes ===");
    let g = generators::path(100);
    let mut t = Table::new(&[
        "k",
        "rounds",
        "row rounds/s",
        "columnar rounds/s",
        "speedup",
    ]);
    for k in E7_KS {
        let problem = workloads::segment_relays(&g, k, 14, 1, 5);
        let plan = UniformScheduler::default()
            .plan(&problem, 7)
            .expect("model-valid workload");
        let base = ExecutorConfig::default().with_phase_len(plan.phase_len);
        let row_cfg = base.clone().with_engine(EngineKind::Row);
        let col_cfg = base.with_engine(EngineKind::Columnar);
        let row_out = execute_plan_with(&problem, &plan, &row_cfg).expect("row run");
        let col_out = execute_plan_with(&problem, &plan, &col_cfg).expect("columnar run");
        assert_eq!(
            format!("{row_out:?}"),
            format!("{col_out:?}"),
            "engines must agree at k={k} before anything is timed"
        );
        let rounds = col_out.schedule_rounds();
        let b = budget();
        let row_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &row_cfg).expect("row run"));
            },
            b,
        );
        let col_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &col_cfg).expect("columnar run"));
            },
            b,
        );
        t.row_owned(vec![
            k.to_string(),
            rounds.to_string(),
            format!("{:.0}", rounds as f64 / row_s),
            format!("{:.0}", rounds as f64 / col_s),
            format!("{:.1}x", row_s / col_s),
        ]);
    }
    t.print();
    println!(
        "(the columnar engine batches per-arc delivery into contiguous slices and replaces\n per-message tag-window checks with u64-bitset word passes; outcomes are byte-identical)\n"
    );
}

/// The message-dense complement of [`row_vs_columnar`]: floods on a
/// complete graph, where delivered messages outnumber black-box steps
/// ~20:1 and the engines' messaging layers — not the shared per-step
/// virtual-call floor — dominate the wall clock.
fn row_vs_columnar_message_dense() {
    println!("=== C1b: row vs columnar engine, message-dense floods on complete(64) ===");
    let g = generators::complete(64);
    let mut t = Table::new(&[
        "k",
        "msgs/steps",
        "row rounds/s",
        "columnar rounds/s",
        "speedup",
    ]);
    for k in [4usize, 8, 16] {
        let problem = workloads::flood_bundle(&g, k, 2, 5);
        let plan = UniformScheduler::default()
            .plan(&problem, 7)
            .expect("model-valid workload");
        let base = ExecutorConfig::default().with_phase_len(plan.phase_len);
        let row_cfg = base.clone().with_engine(EngineKind::Row);
        let col_cfg = base.with_engine(EngineKind::Columnar);
        let row_out = execute_plan_with(&problem, &plan, &row_cfg).expect("row run");
        let col_out = execute_plan_with(&problem, &plan, &col_cfg).expect("columnar run");
        assert_eq!(
            format!("{row_out:?}"),
            format!("{col_out:?}"),
            "engines must agree at k={k} before anything is timed"
        );
        let rounds = col_out.schedule_rounds();
        let steps: u32 = problem
            .algorithms()
            .iter()
            .map(|a| a.rounds() * g.node_count() as u32)
            .sum();
        let density = col_out.stats.delivered as f64 / steps as f64;
        let b = budget();
        let row_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &row_cfg).expect("row run"));
            },
            b,
        );
        let col_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &col_cfg).expect("columnar run"));
            },
            b,
        );
        t.row_owned(vec![
            k.to_string(),
            format!("{density:.0}"),
            format!("{:.0}", rounds as f64 / row_s),
            format!("{:.0}", rounds as f64 / col_s),
            format!("{:.1}x", row_s / col_s),
        ]);
    }
    t.print();
    println!(
        "(every black-box step here costs one virtual call in both engines — a shared floor\n the engine cannot remove; this table isolates the messaging layer the columnar\n rewrite targets)\n"
    );
}

/// C3: the batched engine against both predecessors. The row engine pays
/// one virtual call and one `Vec<AlgoSend>` allocation per black-box
/// step; the batched engine dispatches each same-algorithm run of a
/// big-round as a single `step_block` call into a node-contiguous slab
/// writing one flat [`das_core::BatchedSends`] arena.
fn row_vs_columnar_vs_batched() {
    println!("=== C3: row vs columnar vs batched engine, rounds/sec at E7 sizes ===");
    let g = generators::path(100);
    let mut t = Table::new(&[
        "k",
        "rounds",
        "row rounds/s",
        "columnar rounds/s",
        "batched rounds/s",
        "batched/row",
        "batched/columnar",
    ]);
    for k in E7_KS {
        let problem = workloads::segment_relays(&g, k, 14, 1, 5);
        let plan = UniformScheduler::default()
            .plan(&problem, 7)
            .expect("model-valid workload");
        let base = ExecutorConfig::default().with_phase_len(plan.phase_len);
        let row_cfg = base.clone().with_engine(EngineKind::Row);
        let col_cfg = base.clone().with_engine(EngineKind::Columnar);
        let bat_cfg = base.with_engine(EngineKind::ColumnarBatched);
        let row_out = execute_plan_with(&problem, &plan, &row_cfg).expect("row run");
        let bat_out = execute_plan_with(&problem, &plan, &bat_cfg).expect("batched run");
        assert_eq!(
            format!("{row_out:?}"),
            format!("{bat_out:?}"),
            "batched engine must agree with row at k={k} before anything is timed"
        );
        let rounds = bat_out.schedule_rounds();
        let b = budget();
        let row_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &row_cfg).expect("row run"));
            },
            b,
        );
        let col_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &col_cfg).expect("columnar run"));
            },
            b,
        );
        let bat_s = secs_per_iter(
            || {
                black_box(execute_plan_with(&problem, &plan, &bat_cfg).expect("batched run"));
            },
            b,
        );
        t.row_owned(vec![
            k.to_string(),
            rounds.to_string(),
            format!("{:.0}", rounds as f64 / row_s),
            format!("{:.0}", rounds as f64 / col_s),
            format!("{:.0}", rounds as f64 / bat_s),
            format!("{:.1}x", row_s / bat_s),
            format!("{:.1}x", col_s / bat_s),
        ]);
    }
    t.print();
    println!(
        "(the batched engine removes the per-step virtual-call/alloc floor: machines live in
 node-contiguous slabs and each same-algorithm run of a big-round dispatches as one
 step_block call writing a flat send arena; outcomes are byte-identical)\n"
    );
}

fn sweep_cache_ablation() {
    println!("=== C2: sweep-cache on vs off, planning a sched-seed sweep at E7 sizes ===");
    let g = generators::path(100);
    let mut t = Table::new(&["scheduler", "k", "scratch plan", "swept plan", "speedup"]);
    for k in [32usize, 128] {
        let problem = workloads::segment_relays(&g, k, 14, 1, 5);
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SequentialScheduler),
            Box::new(UniformScheduler::default()),
            Box::new(PrivateScheduler::default()),
        ];
        for sched in &scheds {
            let planner = SweepPlanner::new(sched.as_ref(), &problem);
            assert_eq!(
                sched.plan(&problem, 7).expect("plan").to_json(),
                planner.plan(&problem, 7).to_json(),
                "swept plans must match plan() at k={k} before anything is timed"
            );
            let b = budget();
            let mut s = 0u64;
            let scratch = secs_per_iter(
                || {
                    s = s.wrapping_add(1);
                    black_box(sched.plan(&problem, s).expect("plan"));
                },
                b,
            );
            let mut s = 0u64;
            let swept = secs_per_iter(
                || {
                    s = s.wrapping_add(1);
                    black_box(planner.plan(&problem, s));
                },
                b,
            );
            t.row_owned(vec![
                sched.name().to_string(),
                k.to_string(),
                format!("{:.1} µs", scratch * 1e6),
                format!("{:.1} µs", swept * 1e6),
                format!("{:.1}x", scratch / swept),
            ]);
        }
    }
    t.print();
    println!(
        "(the sweep artifact caches the sched-seed-independent planning prefix — the whole\n plan for seed-tagged schedulers, the clustering carve for the private scheduler)\n"
    );
}

fn bench(c: &mut Criterion) {
    row_vs_columnar();
    row_vs_columnar_message_dense();
    row_vs_columnar_vs_batched();
    sweep_cache_ablation();

    // criterion samples at the E7 midpoint (k = 64) for trend tracking
    let g = generators::path(100);
    let problem = workloads::segment_relays(&g, 64, 14, 1, 5);
    let plan = UniformScheduler::default()
        .plan(&problem, 7)
        .expect("model-valid workload");
    let base = ExecutorConfig::default().with_phase_len(plan.phase_len);
    let row_cfg = base.clone().with_engine(EngineKind::Row);
    let bat_cfg = base.clone().with_engine(EngineKind::ColumnarBatched);
    let col_cfg = base.with_engine(EngineKind::Columnar);
    c.bench_function("columnar/e07_k64_row_engine", |b| {
        b.iter(|| {
            execute_plan_with(&problem, &plan, &row_cfg)
                .expect("row run")
                .schedule_rounds()
        })
    });
    c.bench_function("columnar/e07_k64_columnar_engine", |b| {
        b.iter(|| {
            execute_plan_with(&problem, &plan, &col_cfg)
                .expect("columnar run")
                .schedule_rounds()
        })
    });
    c.bench_function("columnar/e07_k64_batched_engine", |b| {
        b.iter(|| {
            execute_plan_with(&problem, &plan, &bat_cfg)
                .expect("batched run")
                .schedule_rounds()
        })
    });

    let sched = PrivateScheduler::default();
    let planner = SweepPlanner::new(&sched, &problem);
    let mut seed = 0u64;
    c.bench_function("sweep/e07_k64_private_plan_scratch", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            sched.plan(&problem, seed).expect("plan").phase_len
        })
    });
    let mut seed = 0u64;
    c.bench_function("sweep/e07_k64_private_plan_swept", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            planner.plan(&problem, seed).phase_len
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
