//! E4 — Lemma 4.2: ball-carving clustering quality and cost.
//!
//! Table: per-layer disjointness holds by construction; measured weak
//! radius vs the `O(dilation · log n)` horizon, padding rate (fraction of
//! (node, layer) pairs whose dilation-ball is contained), min/avg covering
//! layers, and carving rounds vs the `O(dilation · log² n)` budget.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::Table;
use das_cluster::{quality, CarveConfig, Clustering};
use das_graph::generators;

fn table() {
    println!("\n=== E4: Lemma 4.2 — ball carving ===");
    let mut t = Table::new(&[
        "graph",
        "n",
        "D",
        "layers",
        "weak radius",
        "horizon",
        "padding",
        "min cover",
        "avg cover",
        "rounds",
        "rounds/(D ln^2 n)",
    ]);
    for (name, g, dilation) in [
        ("grid", generators::grid(10, 10), 3u32),
        ("gnp", generators::gnp_connected(150, 0.035, 4), 3),
        ("tree", generators::balanced_tree(127, 2), 4),
        ("grid", generators::grid(14, 14), 5),
    ] {
        let cfg = CarveConfig::for_dilation(&g, dilation);
        let cl = Clustering::carve_centralized(&g, &cfg, 31);
        let q = quality::measure(&g, &cl, dilation);
        let n = g.node_count() as f64;
        let budget = (dilation as f64 * n.ln() * n.ln()).ceil();
        t.row_owned(vec![
            name.into(),
            g.node_count().to_string(),
            dilation.to_string(),
            cfg.num_layers.to_string(),
            q.max_weak_radius.to_string(),
            cfg.horizon.to_string(),
            format!("{:.2}", q.padding_rate),
            q.min_covering_layers.to_string(),
            format!("{:.1}", q.avg_covering_layers),
            cl.precompute_rounds().to_string(),
            format!("{:.1}", cl.precompute_rounds() as f64 / budget),
        ]);
    }
    t.print();
    println!("(paper: weak diameter O(D log n), Theta(log n) covering layers per node, O(D log^2 n) rounds;\n a flat rounds/(D ln^2 n) ratio across rows is the O(.) holding with a fixed constant)\n");
}

fn bench(c: &mut Criterion) {
    table();
    let g = generators::grid(10, 10);
    let cfg = CarveConfig::for_dilation(&g, 3).with_num_layers(8);
    c.bench_function("e04/carve_centralized_8layers_n100", |b| {
        b.iter(|| Clustering::carve_centralized(&g, &cfg, 31).precompute_rounds())
    });
    let small = generators::grid(6, 6);
    let cfg_small = CarveConfig::for_dilation(&small, 2).with_num_layers(4);
    c.bench_function("e04/carve_distributed_4layers_n36", |b| {
        b.iter(|| Clustering::carve_distributed(&small, &cfg_small, 31).precompute_rounds())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
