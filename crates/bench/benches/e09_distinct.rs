//! E9 — Appendix A: distinct elements with threshold hashing, shared vs
//! locally-shared (Bellagio-derandomized) randomness.
//!
//! Table: accuracy and rounds across `ε`; the private variant's rounds
//! include the clustering + sharing pre-computation (`O(d log² n)`) plus
//! one run per layer — the meta-theorem's `O(T log² n)` shape.

use criterion::{criterion_group, criterion_main, Criterion};
use das_algos::distinct::{estimate_private, estimate_shared, exact_distinct, DistinctConfig};
use das_bench::Table;
use das_congest::util::seed_mix;
use das_graph::generators;

fn accuracy(est: &[f64], truth: &[usize], tol: f64) -> f64 {
    let ok = est
        .iter()
        .zip(truth)
        .filter(|&(&e, &t)| e <= t as f64 * tol && e >= t as f64 / tol)
        .count();
    ok as f64 / est.len() as f64
}

fn table() {
    println!("\n=== E9: Appendix A — distinct elements, shared vs private randomness ===");
    let g = generators::grid(7, 7);
    let n = g.node_count();
    let inputs: Vec<u64> = (0..n).map(|v| seed_mix(4, (v % 20) as u64)).collect();
    let mut t = Table::new(&[
        "eps",
        "shared rounds",
        "shared acc",
        "private rounds",
        "private acc",
        "coverage",
    ]);
    for eps in [1.0, 0.5, 0.25] {
        let config = DistinctConfig::new(2, eps);
        let truth = exact_distinct(&g, &inputs, 2);
        let (shared, sh_rounds) = estimate_shared(&g, &inputs, &config, 33);
        let private = estimate_private(&g, &inputs, &config, 12, 44);
        let priv_est: Vec<f64> = private.estimates.iter().map(|e| e.unwrap_or(0.0)).collect();
        let tol = (1.0 + eps) * 1.7;
        t.row_owned(vec![
            format!("{eps}"),
            sh_rounds.to_string(),
            format!("{:.0}%", accuracy(&shared, &truth, tol) * 100.0),
            private.total_rounds.to_string(),
            format!("{:.0}%", accuracy(&priv_est, &truth, tol) * 100.0),
            format!("{:.0}%", private.coverage * 100.0),
        ]);
    }
    t.print();
    println!("(paper: O(d log n/eps^3) rounds shared; private adds the O(d log^2 n) machinery — App. A)\n");
}

fn bench(c: &mut Criterion) {
    table();
    let g = generators::grid(7, 7);
    let inputs: Vec<u64> = (0..49).map(|v| seed_mix(4, (v % 20) as u64)).collect();
    let config = DistinctConfig::new(2, 0.5);
    c.bench_function("e09/distinct_shared_n49", |b| {
        b.iter(|| estimate_shared(&g, &inputs, &config, 33).1)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
