//! E7 — the scheduler shoot-out (the paper's framing, §1): how the five
//! schedulers scale as the number of co-scheduled algorithms grows.
//!
//! Series: schedule length vs `k` on a pipelining-friendly workload. The
//! baselines grow like `k · dilation`; the random-delay schedulers grow
//! like `congestion + dilation · log n`.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::{measure, workloads, Table};
use das_core::{
    InterleaveScheduler, PrivateScheduler, Scheduler, SequentialScheduler, TunedUniformScheduler,
    UniformScheduler,
};
use das_graph::generators;

fn table() {
    println!(
        "\n=== E7: scheduler comparison (schedule length vs k; + = total with precompute) ==="
    );
    let g = generators::path(100);
    let mut t = Table::new(&[
        "k",
        "C",
        "D",
        "sequential",
        "interleave",
        "uniform",
        "tuned",
        "private(+pre)",
    ]);
    for k in [8usize, 16, 32, 64, 128] {
        let problem = workloads::segment_relays(&g, k, 14, 1, 5);
        let params = problem.parameters().unwrap();
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SequentialScheduler),
            Box::new(InterleaveScheduler),
            Box::new(UniformScheduler::default()),
            Box::new(TunedUniformScheduler::default()),
            Box::new(PrivateScheduler::default()),
        ];
        let mut cells = vec![
            k.to_string(),
            params.congestion.to_string(),
            params.dilation.to_string(),
        ];
        for s in schedulers {
            let (m, _, _) = measure(s.as_ref(), &problem);
            let mark = if m.correctness == 1.0 { "" } else { "!" };
            if m.precompute > 0 {
                cells.push(format!("{}{} (+{})", m.schedule, mark, m.precompute));
            } else {
                cells.push(format!("{}{}", m.schedule, mark));
            }
        }
        t.row_owned(cells);
    }
    t.print();
    println!("('!' marks runs with output mismatches; baselines scale with k, delay schedulers with C)\n");
}

fn bench(c: &mut Criterion) {
    table();
    let g = generators::path(100);
    let problem = workloads::segment_relays(&g, 32, 14, 1, 5);
    problem.parameters().unwrap();
    for (name, sched) in [
        (
            "sequential",
            Box::new(SequentialScheduler) as Box<dyn Scheduler>,
        ),
        ("uniform", Box::new(UniformScheduler::default())),
    ] {
        c.bench_function(&format!("e07/{name}_k32"), |b| {
            b.iter(|| sched.run(&problem).unwrap().schedule_rounds())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
