//! E6 — Theorem 4.1 / Lemma 4.4: the full private-randomness scheduler.
//!
//! Table: pre-computation rounds vs the `O(D log² n)` budget, schedule
//! length vs `O(C + D log n)`, correctness, and the success rate over
//! seeds.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::{measure, run_trial, workloads, Table, TrialRunner};
use das_core::{uniform_length_bound, PrivateScheduler, Scheduler};
use das_graph::generators;
use std::path::Path;

fn table() {
    println!("\n=== E6: Theorem 4.1 — private-randomness scheduling ===");
    let mut t = Table::new(&[
        "workload",
        "n",
        "k",
        "C",
        "D",
        "schedule",
        "C+D*ln n",
        "precompute",
        "D*ln^2 n",
        "correct",
        "success",
    ]);
    let path = generators::path(80);
    let grid = generators::grid(9, 9);
    for (name, g, k, seg) in [
        ("segments", &path, 16usize, true),
        ("segments", &path, 48, true),
        ("mixed", &grid, 12, false),
        ("mixed", &grid, 36, false),
    ] {
        let problem = if seg {
            workloads::segment_relays(g, k, 12, 2, 3)
        } else {
            workloads::mixed_bundle(g, k, 6, 3)
        };
        let params = problem.parameters().unwrap();
        let (m, _, _) = measure(&PrivateScheduler::default(), &problem);
        let n = g.node_count() as f64;
        let bound = uniform_length_bound(params.congestion, params.dilation, g.node_count());
        let pre_budget = (params.dilation as f64 * n.ln() * n.ln()).ceil();
        // 5 seeds fanned across threads via the deterministic runner
        let agg = TrialRunner::new(31, 5).aggregate(
            &format!("e06_private_{name}_k{k}"),
            "private",
            |seed| run_trial(&PrivateScheduler::default(), &problem, seed),
        );
        let success = agg.success_rate;
        agg.write(Path::new(".")).expect("write BENCH artifact");
        t.row_owned(vec![
            name.into(),
            g.node_count().to_string(),
            k.to_string(),
            params.congestion.to_string(),
            params.dilation.to_string(),
            m.schedule.to_string(),
            bound.to_string(),
            m.precompute.to_string(),
            format!("{:.0}", pre_budget),
            format!("{:.0}%", m.correctness * 100.0),
            format!("{:.0}%", success * 100.0),
        ]);
    }
    t.print();
    println!("(paper: O(C + D log n) schedule after O(D log^2 n) pre-computation — Thm 4.1; the\n precompute/budget ratio is the constant hiding in the O(.), dominated by 3 log2 n layers)\n");
}

fn bench(c: &mut Criterion) {
    table();
    let g = generators::path(80);
    let problem = workloads::segment_relays(&g, 24, 12, 2, 3);
    problem.parameters().unwrap();
    c.bench_function("e06/private_schedule_k24_n80", |b| {
        b.iter(|| {
            PrivateScheduler::default()
                .run(&problem)
                .unwrap()
                .schedule_rounds()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
