//! E1 — Theorem 1.1: the shared-randomness uniform-delay scheduler
//! achieves `O(congestion + dilation · log n)` w.h.p.
//!
//! Table: schedule length vs the bound across workloads and `k`; success
//! rate over random shared seeds.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::{measure, run_trial, workloads, Table, TrialRunner};
use das_core::{uniform_length_bound, Scheduler, UniformScheduler};
use das_graph::generators;
use std::path::Path;

fn table() {
    println!("\n=== E1: Theorem 1.1 — uniform random delays with shared randomness ===");
    let mut t = Table::new(&[
        "workload", "n", "k", "C", "D", "schedule", "C+D*ln n", "ratio", "success",
    ]);
    let path = generators::path(120);
    let grid = generators::grid(12, 12);
    for (name, g, k, seg) in [
        ("segments", &path, 20usize, true),
        ("segments", &path, 60, true),
        ("segments", &path, 120, true),
        ("mixed", &grid, 16, false),
        ("mixed", &grid, 48, false),
    ] {
        let problem = if seg {
            workloads::segment_relays(g, k, 16, 2, 7)
        } else {
            workloads::mixed_bundle(g, k, 8, 7)
        };
        let params = problem.parameters().unwrap();
        let (m, _, _) = measure(&UniformScheduler::default(), &problem);
        let bound = uniform_length_bound(params.congestion, params.dilation, g.node_count());
        // 10 seeds fanned across threads; results identical per base seed
        // regardless of thread count
        let agg = TrialRunner::new(71, 10).aggregate(
            &format!("e01_uniform_{name}_k{k}"),
            "uniform",
            |seed| run_trial(&UniformScheduler::default(), &problem, seed),
        );
        let success = agg.success_rate;
        agg.write(Path::new(".")).expect("write BENCH artifact");
        t.row_owned(vec![
            name.into(),
            g.node_count().to_string(),
            k.to_string(),
            params.congestion.to_string(),
            params.dilation.to_string(),
            m.schedule.to_string(),
            bound.to_string(),
            format!("{:.2}", m.schedule as f64 / bound as f64),
            format!("{:.0}%", success * 100.0),
        ]);
    }
    t.print();
    println!("(paper: schedule length O(congestion + dilation*log n) w.h.p. — Thm 1.1)\n");
}

fn bench(c: &mut Criterion) {
    table();
    let g = generators::path(120);
    let problem = workloads::segment_relays(&g, 40, 16, 2, 7);
    problem.parameters().unwrap(); // warm the reference cache
    c.bench_function("e01/uniform_schedule_k40_n120", |b| {
        b.iter(|| {
            UniformScheduler::default()
                .run(&problem)
                .unwrap()
                .schedule_rounds()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
