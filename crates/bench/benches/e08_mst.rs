//! E8 — Section 5: the MST congestion/dilation trade-off and k-shot MST.
//!
//! Tables: (a) single-shot sweep of the fragment cap — congestion falls
//! as `#fragments` while dilation picks up the fragment-phase cost;
//! (b) k-shot MST with the cap tuned to `√(n/k)` vs the untuned
//! filter-upcast, against the `Θ̃(D + √(kn))` target.

use criterion::{criterion_group, criterion_main, Criterion};
use das_algos::mst::{EdgeWeights, MstAlgorithm};
use das_bench::Table;
use das_core::{verify, BlackBoxAlgorithm, DasProblem, Scheduler, UniformScheduler};
use das_graph::{generators, traversal};

fn tradeoff_table() {
    println!("\n=== E8a: single-shot MST trade-off (fragment cap sweep) ===");
    let g = generators::gnp_connected(100, 0.05, 2);
    let mut t = Table::new(&[
        "cap",
        "fragments",
        "congestion",
        "dilation",
        "charged(phase1)",
    ]);
    for cap in [0u32, 2, 4, 8, 16, 32, 64] {
        let algo = MstAlgorithm::new(0, &g, EdgeWeights::random(&g, 1), cap);
        let p = DasProblem::new(&g, vec![Box::new(algo.clone())], 0);
        let params = p.parameters().unwrap();
        t.row_owned(vec![
            cap.to_string(),
            algo.decomposition().count.to_string(),
            params.congestion.to_string(),
            algo.rounds().to_string(),
            algo.decomposition().charged_rounds.to_string(),
        ]);
    }
    t.print();
    println!("(paper: congestion ~ L with dilation ~ D + n/L is achievable and inherent — §5)\n");
}

fn kshot_table() {
    println!("=== E8b: k-shot MST — tuned cap sqrt(n/k) vs filter-upcast ===");
    let g = generators::gnp_connected(100, 0.05, 2);
    let n = g.node_count() as f64;
    let diam = traversal::diameter(&g).unwrap() as f64;
    let mut t = Table::new(&[
        "k",
        "tuned",
        "cap-0",
        "tuned/cap-0",
        "D+sqrt(kn)",
        "correct",
    ]);
    for k in [1usize, 2, 4, 8] {
        let cap_tuned = (n / k as f64).sqrt().ceil() as u32;
        let mut lengths = Vec::new();
        let mut ok = true;
        for cap in [cap_tuned, 0] {
            let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..k as u64)
                .map(|i| {
                    Box::new(MstAlgorithm::new(
                        i,
                        &g,
                        EdgeWeights::random(&g, 100 + i),
                        cap,
                    )) as Box<dyn BlackBoxAlgorithm>
                })
                .collect();
            let p = DasProblem::new(&g, algos, 9);
            let outcome = UniformScheduler::default().run(&p).unwrap();
            ok &= verify::against_references(&p, &outcome)
                .unwrap()
                .all_correct();
            lengths.push(outcome.schedule_rounds());
        }
        let target = diam + (k as f64 * n).sqrt();
        t.row_owned(vec![
            k.to_string(),
            lengths[0].to_string(),
            lengths[1].to_string(),
            format!("{:.2}", lengths[0] as f64 / lengths[1] as f64),
            format!("{:.0}", target),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    t.print();
    println!("(paper: k-shot MST in ~O(D + sqrt(kn)) via L = sqrt(n/k) + scheduling — §5.\n The tuned/cap-0 advantage grows with k: exactly the paper's point that the\n single-shot-optimal algorithm is the wrong choice for the k-shot problem.)\n");
}

fn bench(c: &mut Criterion) {
    tradeoff_table();
    kshot_table();
    let g = generators::gnp_connected(100, 0.05, 2);
    c.bench_function("e08/mst_alone_cap8_n100", |b| {
        let algo = MstAlgorithm::new(0, &g, EdgeWeights::random(&g, 1), 8);
        b.iter(|| {
            das_core::run_alone(&g, &algo, 1)
                .unwrap()
                .pattern
                .message_count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
