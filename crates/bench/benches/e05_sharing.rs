//! E5 — Lemma 4.3: pipelined in-cluster randomness sharing delivers
//! `Θ(log² n)` bits to every cluster member in `H + Θ(log n)` rounds per
//! layer, and the shared bits stretch into `Θ(log n)`-wise independent
//! values.

use criterion::{criterion_group, criterion_main, Criterion};
use das_bench::Table;
use das_cluster::{share_layer_centralized, CarveConfig, Clustering, ShareConfig};
use das_graph::generators;
use das_prg::KWiseGenerator;

fn table() {
    println!("\n=== E5: Lemma 4.3 — in-cluster randomness sharing ===");
    let mut t = Table::new(&[
        "graph",
        "n",
        "chunks",
        "rounds/layer",
        "H",
        "H+slack",
        "delivered",
    ]);
    for (name, g) in [
        ("path", generators::path(60)),
        ("grid", generators::grid(8, 8)),
        ("gnp", generators::gnp_connected(80, 0.06, 9)),
    ] {
        let cfg = CarveConfig::for_dilation(&g, 2).with_num_layers(3);
        let cl = Clustering::carve_centralized(&g, &cfg, 13);
        let share_cfg = ShareConfig::for_graph(&g, cfg.horizon);
        let chunks = das_cluster::share::center_chunks(g.node_count(), share_cfg.chunks, 17);
        let mut all_delivered = true;
        let mut rounds = 0;
        for layer in cl.layers() {
            let want = share_layer_centralized(layer, &chunks);
            let (got, r, delivered) =
                das_cluster::share::share_layer_distributed(&g, layer, &chunks, &share_cfg, 3);
            all_delivered &= delivered && got == want;
            rounds = r;
        }
        t.row_owned(vec![
            name.into(),
            g.node_count().to_string(),
            share_cfg.chunks.to_string(),
            rounds.to_string(),
            share_cfg.horizon.to_string(),
            share_cfg.rounds_needed().to_string(),
            if all_delivered {
                "100%".into()
            } else {
                "INCOMPLETE".to_string()
            },
        ]);
    }
    t.print();
    println!(
        "(paper: all chunks delivered within H + Theta(log n) rounds per layer — Lemma 4.3)\n"
    );
}

fn bench(c: &mut Criterion) {
    table();
    let g = generators::grid(8, 8);
    let cfg = CarveConfig::for_dilation(&g, 2).with_num_layers(1);
    let cl = Clustering::carve_centralized(&g, &cfg, 13);
    let share_cfg = ShareConfig::for_graph(&g, cfg.horizon);
    let chunks = das_cluster::share::center_chunks(64, share_cfg.chunks, 17);
    c.bench_function("e05/share_layer_distributed_n64", |b| {
        b.iter(|| {
            das_cluster::share::share_layer_distributed(&g, &cl.layers()[0], &chunks, &share_cfg, 3)
                .1
        })
    });
    c.bench_function("e05/kwise_generator_1000_values", |b| {
        let gen = KWiseGenerator::from_seed_bytes(b"bench-seed", 16, 2_305_843_009_213_693_951);
        b.iter(|| (0..1000u64).map(|x| gen.value(x)).sum::<u64>())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
