//! E10 — the classical special cases of §1: k-broadcast in `O(k + h)`,
//! k-BFS in `O(k + h)`, and LMR packet routing in `O(C + D log n)` via
//! scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use das_algos::bfs::KBfsProtocol;
use das_algos::broadcast::KBroadcastProtocol;
use das_algos::routing::RoutingInstance;
use das_bench::Table;
use das_congest::{Engine, EngineConfig};
use das_core::{verify, DasProblem, Scheduler, UniformScheduler};
use das_graph::{generators, NodeId};

fn broadcast_table() {
    println!("\n=== E10a: k-message broadcast pipelines in O(k + h) (§1 item I) ===");
    let g = generators::path(60);
    let h = 59u32;
    let mut t = Table::new(&["k", "h", "rounds", "k+h", "ratio"]);
    for k in [4usize, 8, 16, 32] {
        let msgs: Vec<(NodeId, u64)> = (0..k).map(|i| (NodeId(i as u32), i as u64)).collect();
        let proto = KBroadcastProtocol::new(msgs, h);
        let rep = Engine::new(&g, EngineConfig::default())
            .run(&proto)
            .unwrap();
        t.row_owned(vec![
            k.to_string(),
            h.to_string(),
            rep.rounds.to_string(),
            (k as u64 + h as u64).to_string(),
            format!("{:.2}", rep.rounds as f64 / (k as u64 + h as u64) as f64),
        ]);
    }
    t.print();
}

fn bfs_table() {
    println!("=== E10b: k BFS trees in O(k + h) (§1 item II, Lenzen–Peleg) ===");
    let g = generators::grid(9, 9);
    let h = 16u32;
    let mut t = Table::new(&["k", "h", "rounds", "k+h", "ratio"]);
    for k in [2usize, 4, 8, 16] {
        let sources: Vec<NodeId> = (0..k).map(|i| NodeId((i * 5 % 81) as u32)).collect();
        let proto = KBfsProtocol::new(sources, h);
        let rep = Engine::new(&g, EngineConfig::default())
            .run(&proto)
            .unwrap();
        t.row_owned(vec![
            k.to_string(),
            h.to_string(),
            rep.rounds.to_string(),
            (k as u64 + h as u64).to_string(),
            format!("{:.2}", rep.rounds as f64 / (k as u64 + h as u64) as f64),
        ]);
    }
    t.print();
}

fn routing_table() {
    println!("=== E10c: LMR packet routing via scheduling (§1 item III) ===");
    let g = generators::grid(10, 10);
    let mut t = Table::new(&["packets", "C", "D", "schedule", "C+D*ln n", "correct"]);
    for k in [10usize, 30, 60, 120] {
        let inst = RoutingInstance::random_shortest_paths(&g, k, k as u64);
        let (c, d) = inst.parameters(&g);
        let p = DasProblem::new(&g, inst.algorithms(&g), 3);
        let outcome = UniformScheduler::default().run(&p).unwrap();
        let rep = verify::against_references(&p, &outcome).unwrap();
        let bound = c + (d as f64 * (100f64).ln()).ceil() as u64;
        t.row_owned(vec![
            k.to_string(),
            c.to_string(),
            d.to_string(),
            outcome.schedule_rounds().to_string(),
            bound.to_string(),
            format!("{:.0}%", rep.correctness_rate() * 100.0),
        ]);
    }
    t.print();
    println!(
        "(paper: packet routing admits O(C+D) schedules; random delays give O(C + D log n))\n"
    );
}

fn bench(c: &mut Criterion) {
    broadcast_table();
    bfs_table();
    routing_table();
    let g = generators::grid(9, 9);
    let sources: Vec<NodeId> = (0..8).map(|i| NodeId((i * 5 % 81) as u32)).collect();
    c.bench_function("e10/kbfs_8sources_n81", |b| {
        let proto = KBfsProtocol::new(sources.clone(), 16);
        b.iter(|| {
            Engine::new(&g, EngineConfig::default())
                .run(&proto)
                .unwrap()
                .rounds
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
