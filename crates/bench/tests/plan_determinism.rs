//! Determinism of the staged pipeline: planning is a pure function of
//! `(problem, sched_seed)` down to the serialized bytes, and executing a
//! fixed plan is independent of the rayon thread count.
//!
//! Lives in its own test binary because it flips `RAYON_NUM_THREADS`,
//! which must not race with other tests in the same process.

use das_bench::workloads;
use das_core::{execute_plan, PrivateScheduler, Scheduler, UniformScheduler};
use das_graph::generators;

/// Planning twice with the same `(problem, sched_seed)` yields
/// byte-identical `SchedulePlan` JSON — for a stateless scheduler and for
/// one with a pre-computation stage.
#[test]
fn planning_twice_is_byte_identical() {
    let g = generators::path(40);
    let problem = workloads::segment_relays(&g, 10, 12, 2, 7);
    for scheduler in [
        Box::new(UniformScheduler::default()) as Box<dyn Scheduler>,
        Box::new(PrivateScheduler::default()),
    ] {
        let a = scheduler.plan(&problem, 17).expect("model-valid");
        let b = scheduler.plan(&problem, 17).expect("model-valid");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{} plan is not a pure function of (problem, sched_seed)",
            scheduler.name()
        );
    }
}

/// Executing a fixed plan gives the identical outcome on one rayon thread
/// and on the full pool. The env-flipping runs live in one test so nothing
/// observes the variable mid-change.
#[test]
fn execute_plan_is_identical_across_thread_counts() {
    let g = generators::grid(6, 6);
    let problem = workloads::mixed_bundle(&g, 9, 6, 3);
    let plan = UniformScheduler::default()
        .plan(&problem, 5)
        .expect("model-valid");

    let parallel = execute_plan(&problem, &plan);
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let sequential = execute_plan(&problem, &plan);
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(
        format!("{sequential:?}"),
        format!("{parallel:?}"),
        "executing a fixed plan depends on the thread count"
    );
}
