//! Thread-count invariance of the parallel trial harness: same base seed
//! ⇒ byte-identical `ScheduleOutcome`s and aggregate JSON whether the
//! sweep runs on one thread (`RAYON_NUM_THREADS=1`) or the full pool.

use das_bench::{run_trial, workloads, TrialAggregate, TrialRunner};
use das_core::{Scheduler, UniformScheduler};
use das_graph::generators;
use std::time::Instant;

/// Runs the reference sweep: per-trial `ScheduleOutcome` debug bytes plus
/// the serialized aggregate.
fn sweep(trials: u64) -> (Vec<String>, TrialAggregate) {
    let g = generators::path(60);
    let problem = workloads::segment_relays(&g, 12, 10, 2, 7);
    problem.parameters().expect("workload is model-valid");
    let runner = TrialRunner::new(42, trials);
    let outcomes = runner.run_trials(|seed| {
        let out = UniformScheduler::default()
            .with_seed(seed)
            .run(&problem)
            .expect("workload is model-valid");
        format!("{out:?}")
    });
    let agg = runner.aggregate("determinism", "uniform", |seed| {
        run_trial(&UniformScheduler::default(), &problem, seed)
    });
    (outcomes, agg)
}

/// The env-flipping runs live in one test so nothing observes the variable
/// mid-change (tests in one binary share the process environment).
#[test]
fn sweep_is_identical_across_thread_counts() {
    let (outcomes_par, agg_par) = sweep(6);
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let (outcomes_seq, agg_seq) = sweep(6);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(
        outcomes_seq, outcomes_par,
        "ScheduleOutcome depends on the thread count"
    );
    assert_eq!(
        agg_seq.to_json(),
        agg_par.to_json(),
        "aggregate JSON depends on the thread count"
    );
    assert_eq!(agg_par.trials, 6);
}

#[test]
#[ignore = "wall-clock scaling check; run explicitly with --ignored"]
fn parallel_sweep_scales_with_cores() {
    fn heavy_sweep() {
        let g = generators::path(120);
        let problem = workloads::segment_relays(&g, 40, 16, 2, 7);
        problem.parameters().expect("workload is model-valid");
        TrialRunner::new(42, 16).run_trials(|seed| {
            UniformScheduler::default()
                .with_seed(seed)
                .run(&problem)
                .expect("workload is model-valid")
                .schedule_rounds()
        });
    }

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let t = Instant::now();
    heavy_sweep();
    let sequential = t.elapsed();
    std::env::remove_var("RAYON_NUM_THREADS");
    let t = Instant::now();
    heavy_sweep();
    let parallel = t.elapsed();
    eprintln!("16-seed sweep: sequential {sequential:?}, parallel {parallel:?}");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        assert!(
            parallel < sequential,
            "parallel sweep not faster on {cores} cores: {parallel:?} vs {sequential:?}"
        );
    }
}
