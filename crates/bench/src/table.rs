//! Minimal aligned-table printer for experiment reports.

use std::fmt::Write as _;

/// A right-aligned text table (first column left-aligned).
///
/// ```
/// use das_bench::Table;
/// let mut t = Table::new(&["name", "rounds"]);
/// t.row(&["uniform", "123"]);
/// let s = t.render();
/// assert!(s.contains("uniform"));
/// assert!(s.contains("123"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = width[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = width[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "value"]);
        t.row(&["long-name", "1"]).row(&["x", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        Table::new(&["a"]).row(&["x", "y"]);
    }
}
