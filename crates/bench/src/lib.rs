//! # das-bench
//!
//! The experiment harness: workload builders, result tables, the parallel
//! [`TrialRunner`], and the runners behind the `benches/e*.rs` benchmarks —
//! one per experiment in `EXPERIMENTS.md` (E1–E10). Each bench prints the
//! paper-style table before timing a representative configuration with
//! criterion, so `cargo bench` regenerates every table and series.
//! Seed sweeps fan across threads through [`TrialRunner`] and can be
//! serialized to `BENCH_<experiment>.json` artifacts.
//!
//! Trials follow the staged pipeline ([`run_trial`]): plan with the
//! trial's `sched_seed`, execute the plan, verify **exactly once**, and
//! record — including the plan's predicted length, so artifacts track the
//! plan-vs-reality gap. Because a sweep varies only scheduler randomness,
//! the problem's reference runs are computed once and shared by every
//! trial.

#![warn(missing_docs)]

pub mod runner;
pub mod table;
pub mod workloads;

pub use runner::{
    DoublingSummary, NetSummary, ShardSummary, SummaryStats, SweepSummary, TrialAggregate,
    TrialRecord, TrialRunner,
};
pub use table::Table;

use das_core::verify::{self, VerifyReport};
use das_core::{
    doubling, execute_plan, execute_plan_networked, execute_plan_observed,
    execute_plan_observed_with, execute_plan_sharded, execute_plan_with, run_worker, DasProblem,
    DoublingConfig, EngineKind, ExecError, ExecutorConfig, NetConfig, SchedError, ScheduleOutcome,
    SchedulePlan, Scheduler, ShardReport, SweepArtifact, UniformScheduler,
};
use das_obs::{ObsConfig, ObsReport};
use std::sync::atomic::{AtomicU64, Ordering};

/// One measured scheduler run.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Scheduler name.
    pub name: &'static str,
    /// Schedule length (rounds).
    pub schedule: u64,
    /// Pre-computation rounds.
    pub precompute: u64,
    /// Late (dropped) messages.
    pub late: u64,
    /// Fraction of (algorithm, node) outputs matching the alone runs.
    pub correctness: f64,
}

impl Measured {
    /// Total rounds.
    pub fn total(&self) -> u64 {
        self.schedule + self.precompute
    }
}

/// Runs a scheduler on a problem and verifies it exactly once, returning
/// the verification report alongside the outcome so callers can reuse it
/// (e.g. to record a trial) instead of verifying again.
///
/// # Panics
/// Panics if the workload violates the CONGEST model (a bug in the
/// workload, not the scheduler).
pub fn measure(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
) -> (Measured, ScheduleOutcome, VerifyReport) {
    let outcome = scheduler.run(problem).expect("workload is model-valid");
    let report = verify::against_references(problem, &outcome).expect("references computable");
    (
        Measured {
            name: scheduler.name(),
            schedule: outcome.schedule_rounds(),
            precompute: outcome.precompute_rounds,
            late: outcome.stats.late_messages,
            correctness: report.correctness_rate(),
        },
        outcome,
        report,
    )
}

/// Builds the per-trial record from an outcome and the [`VerifyReport`]
/// of its (single) verification. `predicted` is the plan's predicted
/// schedule length when the trial went through the staged pipeline.
pub fn record_trial(
    seed: u64,
    outcome: &ScheduleOutcome,
    report: &VerifyReport,
    predicted: Option<u64>,
) -> TrialRecord {
    TrialRecord {
        seed,
        schedule: outcome.schedule_rounds(),
        predicted,
        precompute: outcome.precompute_rounds,
        late: outcome.stats.late_messages,
        correctness: report.correctness_rate(),
        truncated: false,
        shard: None,
        obs: None,
        doubling: None,
        sweep: None,
        net: None,
    }
}

/// One full trial through the staged pipeline: plan with `sched_seed`,
/// execute the plan, verify exactly once, and record — with the plan's
/// predicted length threaded into the record.
///
/// An execution that hits the engine-round cap is recorded as a
/// `truncated` (failed) trial instead of crashing the sweep.
///
/// All trials of a sweep share the problem's cached reference runs: only
/// the scheduler randomness varies.
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
) -> TrialRecord {
    let plan = scheduler
        .plan(problem, sched_seed)
        .expect("workload is model-valid");
    let result = execute_plan(problem, &plan).map(|o| (o, None));
    finish_trial(problem, &plan, sched_seed, result)
}

/// [`run_trial`] on an explicit engine (`row`, `columnar`, or `batched`).
/// The engine choice is a pure execution detail: every recorded
/// schedule-quality field is byte-identical across engines.
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial_with_engine(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
    engine: EngineKind,
) -> TrialRecord {
    let plan = scheduler
        .plan(problem, sched_seed)
        .expect("workload is model-valid");
    let cfg = ExecutorConfig::default()
        .with_phase_len(plan.phase_len)
        .with_engine(engine);
    let result = execute_plan_with(problem, &plan, &cfg).map(|o| (o, None));
    finish_trial(problem, &plan, sched_seed, result)
}

/// [`run_trial`] with observability: the execution runs through
/// [`execute_plan_observed`] at the level `obs` asks for, the record
/// carries the deterministic [`das_obs::ObsSummary`] (persisted into the
/// `BENCH_*.json` artifact), and the full [`ObsReport`] is returned for
/// export. With `obs` off this is exactly [`run_trial`]: the recorded
/// outcome fields are byte-identical either way.
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial_observed(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
    obs: &ObsConfig,
) -> (TrialRecord, Option<ObsReport>) {
    let plan = scheduler
        .plan(problem, sched_seed)
        .expect("workload is model-valid");
    match execute_plan_observed(problem, &plan, obs) {
        Ok((outcome, report)) => {
            let mut rec = finish_trial(problem, &plan, sched_seed, Ok((outcome, None)));
            rec.obs = report.as_ref().map(|r| r.summary());
            (rec, report)
        }
        Err(e) => (finish_trial(problem, &plan, sched_seed, Err(e)), None),
    }
}

/// [`run_trial_observed`] on an explicit engine — the combination
/// `bench_smoke --engine` threads through: observed execution whose
/// recorded outcome fields stay byte-identical across engines and obs
/// levels.
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial_observed_with_engine(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
    obs: &ObsConfig,
    engine: EngineKind,
) -> (TrialRecord, Option<ObsReport>) {
    let plan = scheduler
        .plan(problem, sched_seed)
        .expect("workload is model-valid");
    let cfg = ExecutorConfig::default().with_engine(engine);
    match execute_plan_observed_with(problem, &plan, obs, &cfg) {
        Ok((outcome, report)) => {
            let mut rec = finish_trial(problem, &plan, sched_seed, Ok((outcome, None)));
            rec.obs = report.as_ref().map(|r| r.summary());
            (rec, report)
        }
        Err(e) => (finish_trial(problem, &plan, sched_seed, Err(e)), None),
    }
}

/// One full trial of the congestion-*oblivious* pipeline: run the uniform
/// scheduler through the doubling search (the trial's `sched_seed`
/// becoming the shared seed), verify the final outcome exactly once, and
/// record — with the search's [`DoublingSummary`] (attempts, fallback,
/// plan-cache counters) threaded into the record. `cfg` selects the
/// artifact-cache mode; the recorded outcome fields are byte-identical
/// across modes, which CI enforces by diffing artifacts.
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial_doubling(
    scheduler: &UniformScheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
    cfg: &DoublingConfig,
) -> TrialRecord {
    let sched = scheduler.clone().with_seed(sched_seed);
    let (result, _) =
        doubling::uniform_with_doubling_configured(problem, &sched, &ObsConfig::off(), cfg)
            .expect("workload is model-valid");
    let report =
        verify::against_references(problem, &result.outcome).expect("references computable");
    let mut rec = record_trial(sched_seed, &result.outcome, &report, None);
    rec.doubling = Some(DoublingSummary::of(&result));
    rec
}

/// Plans a whole seed sweep from **one** shared artifact: builds the
/// scheduler's seed-independent planning prefix once per
/// `(problem, scheduler)` ([`das_core::Scheduler::build_sweep_artifact`])
/// and derives each trial's plan from it
/// ([`das_core::Scheduler::plan_swept`]) — byte-identical to a per-seed
/// `plan()` by the sweep-cache contract, but without repeating the shared
/// work (for the private scheduler, the whole Lemma 4.2 carve).
///
/// The planner is `Sync`; [`TrialRunner`] closures can share one across
/// the rayon pool. Cache hits are counted with a relaxed atomic — the
/// total is thread-count-independent because every derived plan counts
/// exactly once.
pub struct SweepPlanner<'a> {
    scheduler: &'a dyn Scheduler,
    artifact: SweepArtifact,
    hits: AtomicU64,
}

impl<'a> SweepPlanner<'a> {
    /// Builds the shared artifact for `(problem, scheduler)` eagerly, so
    /// every subsequent [`SweepPlanner::plan`] is a cache hit.
    ///
    /// # Panics
    /// Panics if the workload violates the CONGEST model.
    pub fn new(scheduler: &'a dyn Scheduler, problem: &DasProblem<'_>) -> Self {
        let artifact = scheduler
            .build_sweep_artifact(problem)
            .expect("workload is model-valid");
        SweepPlanner {
            scheduler,
            artifact,
            hits: AtomicU64::new(0),
        }
    }

    /// Derives the plan for one `sched_seed` from the shared artifact.
    ///
    /// # Panics
    /// Panics if the workload violates the CONGEST model.
    pub fn plan(&self, problem: &DasProblem<'_>, sched_seed: u64) -> SchedulePlan {
        let plan = self
            .scheduler
            .plan_swept(problem, &self.artifact, sched_seed)
            .expect("workload is model-valid");
        if self.artifact.shares_planning() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    /// The scheduler the sweep plans for.
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler
    }

    /// Whether the artifact actually carries shared planning work (`false`
    /// when the scheduler uses the conservative replan-per-seed default).
    pub fn shares_planning(&self) -> bool {
        self.artifact.shares_planning()
    }

    /// Plans derived from the shared artifact so far (0 when the artifact
    /// is the replan form — those derivations redo the full planning).
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Folds the sweep-cache counters into an observability metrics
    /// registry (`sweep.plan_cache_hits`, `sweep.shared_artifacts`), so
    /// exported [`ObsReport`]s carry the plan-sharing stats next to the
    /// engine's `exec.*` counters.
    pub fn export_metrics(&self, metrics: &mut das_obs::MetricsRegistry) {
        metrics.inc("sweep.plan_cache_hits", self.cache_hits());
        metrics.inc("sweep.shared_artifacts", u64::from(self.shares_planning()));
    }
}

/// [`run_trial`], planned through a sweep-shared artifact: the scheduler's
/// seed-independent planning prefix is built once by the
/// [`SweepPlanner`] and only the per-seed remainder runs here. The
/// recorded outcome fields are byte-identical to [`run_trial`]'s (the
/// sweep-cache contract); the record additionally carries the
/// [`SweepSummary`] marker.
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial_swept(
    planner: &SweepPlanner<'_>,
    problem: &DasProblem<'_>,
    sched_seed: u64,
) -> TrialRecord {
    let plan = planner.plan(problem, sched_seed);
    let result = execute_plan(problem, &plan).map(|o| (o, None));
    let mut rec = finish_trial(problem, &plan, sched_seed, result);
    rec.sweep = Some(SweepSummary {
        shared: planner.shares_planning(),
    });
    rec
}

/// [`run_trial`], executed on the sharded executor with `shards` workers.
/// The recorded outcome fields are byte-identical to [`run_trial`]'s; the
/// record additionally carries the partition-dependent [`ShardSummary`]
/// (per-shard wall-clock, cross-shard message counts).
///
/// # Panics
/// Panics if the workload violates the CONGEST model.
pub fn run_trial_sharded(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
    shards: usize,
) -> TrialRecord {
    let plan = scheduler
        .plan(problem, sched_seed)
        .expect("workload is model-valid");
    let result = execute_plan_sharded(problem, &plan, shards).map(|(o, r)| (o, Some(r)));
    finish_trial(problem, &plan, sched_seed, result)
}

/// [`run_trial`], executed over the networked coordinator/worker path on
/// localhost: one coordinator (this thread) plus `workers` worker threads
/// speaking the framed TCP protocol, exactly as separate processes would.
/// The recorded outcome fields are byte-identical to [`run_trial`]'s; the
/// record additionally carries the [`ShardSummary`] and the per-worker
/// coordinator-side traffic ([`NetSummary`]).
///
/// # Panics
/// Panics if the workload violates the CONGEST model, or on a localhost
/// networking failure (which, unlike the round cap, is an environment
/// problem rather than a schedule property).
pub fn run_trial_networked(
    scheduler: &dyn Scheduler,
    problem: &DasProblem<'_>,
    sched_seed: u64,
    workers: usize,
) -> TrialRecord {
    let plan = scheduler
        .plan(problem, sched_seed)
        .expect("workload is model-valid");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr").to_string();
    let net = NetConfig::default();
    let result = std::thread::scope(|scope| {
        let effective = workers.min(problem.graph().node_count()).max(1);
        let handles: Vec<_> = (0..effective)
            .map(|_| {
                let addr = addr.clone();
                let net = net.clone();
                scope.spawn(move || run_worker(problem, &addr, &net))
            })
            .collect();
        let result = execute_plan_networked(problem, &plan, workers, listener, &net);
        for h in handles {
            // on a cap error both sides return the same typed error; only
            // the coordinator's copy feeds the record
            let _ = h.join().expect("worker thread");
        }
        result
    });
    match result {
        Ok((outcome, report)) => {
            let mut rec = finish_trial(
                problem,
                &plan,
                sched_seed,
                Ok((outcome, Some(report.shard.clone()))),
            );
            rec.net = Some(NetSummary::of(&report));
            rec
        }
        Err(e) => finish_trial(problem, &plan, sched_seed, Err(e)),
    }
}

/// Turns an execution result into the trial record: verify-and-record on
/// success, a `truncated` failure record when the engine-round cap was
/// hit. Split out so the cap path is unit-testable without building a
/// diverging schedule.
fn finish_trial(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    sched_seed: u64,
    result: Result<(ScheduleOutcome, Option<ShardReport>), SchedError>,
) -> TrialRecord {
    match result {
        Ok((outcome, shard_report)) => {
            let report =
                verify::against_references(problem, &outcome).expect("references computable");
            let mut rec = record_trial(sched_seed, &outcome, &report, Some(plan.predicted_rounds));
            rec.shard = shard_report.map(|r| ShardSummary::of(&r));
            rec
        }
        Err(SchedError::Exec(ExecError::RoundCapExceeded { cap, .. })) => TrialRecord {
            seed: sched_seed,
            schedule: cap,
            predicted: Some(plan.predicted_rounds),
            precompute: plan.precompute_rounds,
            late: 0,
            correctness: 0.0,
            truncated: true,
            shard: None,
            obs: None,
            doubling: None,
            sweep: None,
            net: None,
        },
        Err(e) => panic!("trial failed to execute: {e}"),
    }
}

/// Success rate of a scheduler over repeated trials: the empirical version
/// of the paper's "with high probability".
///
/// Trials are fanned across threads by [`TrialRunner`]; `run` receives the
/// trial index `0..trials` (experiments derive their own seeds from it),
/// and the result is independent of the thread count.
pub fn success_rate<F>(trials: u64, run: F) -> f64
where
    F: Fn(u64) -> bool + Send + Sync,
{
    if trials == 0 {
        return 0.0;
    }
    let ok = TrialRunner::new(0, trials)
        .run_indexed(run)
        .into_iter()
        .filter(|&ok| ok)
        .count();
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::{SequentialScheduler, UniformScheduler};
    use das_graph::generators;

    #[test]
    fn measure_reports_correct_run() {
        let g = generators::path(8);
        let p = workloads::stacked_relays(&g, 4, 1);
        let (m, outcome, report) = measure(&SequentialScheduler, &p);
        assert_eq!(m.name, "sequential");
        assert_eq!(m.late, 0);
        assert_eq!(m.correctness, 1.0);
        assert_eq!(m.total(), m.schedule);
        // the report is reusable without re-verifying
        let rec = record_trial(0, &outcome, &report, None);
        assert_eq!(rec.schedule, m.schedule);
        assert_eq!(rec.predicted, None);
    }

    #[test]
    fn run_trial_records_prediction_and_matches_fused_run() {
        let g = generators::path(12);
        let p = workloads::stacked_relays(&g, 6, 1);
        let rec = run_trial(&UniformScheduler::default(), &p, 99);
        let fused = UniformScheduler::default().with_seed(99).run(&p).unwrap();
        assert_eq!(rec.schedule, fused.schedule_rounds());
        assert_eq!(rec.late, fused.stats.late_messages);
        let predicted = rec.predicted.expect("staged trials carry a prediction");
        if rec.late == 0 {
            assert!(predicted <= rec.schedule, "prediction is the step boundary");
        }
    }

    #[test]
    fn sharded_trial_matches_sequential_and_records_shard_fields() {
        let g = generators::path(12);
        let p = workloads::stacked_relays(&g, 6, 1);
        let seq = run_trial(&UniformScheduler::default(), &p, 7);
        let sharded = run_trial_sharded(&UniformScheduler::default(), &p, 7, 3);
        // outcome fields are partition-independent
        assert_eq!(seq.schedule, sharded.schedule);
        assert_eq!(seq.late, sharded.late);
        assert_eq!(seq.correctness, sharded.correctness);
        let summary = sharded.shard.expect("sharded trials carry shard data");
        assert_eq!(summary.shards, 3);
        assert_eq!(summary.per_shard_ms.len(), 3);
        assert!(
            summary.per_shard_delivered.iter().sum::<u64>() > 0,
            "relays deliver messages"
        );
        assert!(seq.shard.is_none());
    }

    #[test]
    fn networked_trial_matches_sequential_and_records_traffic() {
        let g = generators::path(12);
        let p = workloads::stacked_relays(&g, 6, 1);
        let seq = run_trial(&UniformScheduler::default(), &p, 7);
        let networked = run_trial_networked(&UniformScheduler::default(), &p, 7, 3);
        // outcome fields are partition- and transport-independent
        assert_eq!(seq.schedule, networked.schedule);
        assert_eq!(seq.late, networked.late);
        assert_eq!(seq.correctness, networked.correctness);
        let shard = networked.shard.expect("networked trials carry shard data");
        assert_eq!(shard.shards, 3);
        let net = networked.net.expect("networked trials carry traffic");
        assert_eq!(net.workers, 3);
        assert_eq!(net.per_worker_bytes_sent.len(), 3);
        assert!(net.frames_sent > 0 && net.frames_received > 0);
        assert!(net.bytes_sent > 0 && net.bytes_received > 0);
        assert!(seq.net.is_none());
    }

    #[test]
    fn observed_trial_is_neutral_and_persists_the_summary() {
        let g = generators::path(12);
        let p = workloads::stacked_relays(&g, 6, 1);
        let plain = run_trial(&UniformScheduler::default(), &p, 13);
        let (off, off_report) =
            run_trial_observed(&UniformScheduler::default(), &p, 13, &ObsConfig::off());
        assert!(off_report.is_none());
        assert_eq!(plain, off, "obs-off trials are exactly unobserved trials");
        let (full, full_report) =
            run_trial_observed(&UniformScheduler::default(), &p, 13, &ObsConfig::full());
        // outcome fields never move; only the obs summary is added
        assert_eq!(plain.schedule, full.schedule);
        assert_eq!(plain.late, full.late);
        assert_eq!(plain.correctness, full.correctness);
        match full_report {
            Some(r) => {
                let summary = full.obs.expect("recording enabled");
                assert_eq!(summary, r.summary());
                assert!(summary.messages > 0, "relays deliver messages");
            }
            None => assert!(full.obs.is_none(), "recording compiled out"),
        }
    }

    #[test]
    fn doubling_trial_records_the_search_and_is_cache_neutral() {
        let g = generators::path(12);
        let p = workloads::stacked_relays(&g, 16, 1); // forces several attempts
        let on = run_trial_doubling(
            &UniformScheduler::default(),
            &p,
            5,
            &DoublingConfig::default(),
        );
        let off_cfg = DoublingConfig {
            reuse_artifact: false,
            ..DoublingConfig::default()
        };
        let off = run_trial_doubling(&UniformScheduler::default(), &p, 5, &off_cfg);
        let d_on = on
            .doubling
            .clone()
            .expect("doubling trials carry a summary");
        let d_off = off
            .doubling
            .clone()
            .expect("doubling trials carry a summary");
        assert!(
            d_on.attempts > 1,
            "instance must force the search to double"
        );
        assert_eq!(d_on.artifact_builds, 1);
        assert_eq!(d_on.replan_cache_hits, u64::from(d_on.attempts) - 1);
        assert_eq!(d_off.artifact_builds, 0);
        assert_eq!(d_off.replan_cache_hits, 0);
        // the cache counters are the ONLY fields allowed to differ
        let mut off_masked = off.clone();
        off_masked.doubling = Some(DoublingSummary {
            artifact_builds: d_on.artifact_builds,
            replan_cache_hits: d_on.replan_cache_hits,
            ..d_off
        });
        assert_eq!(on, off_masked, "cache mode must not move any outcome field");
    }

    #[test]
    fn swept_trials_share_one_artifact_and_stay_byte_neutral() {
        use das_core::PrivateScheduler;
        let g = generators::path(16);
        let p = workloads::stacked_relays(&g, 6, 1);
        let schedulers: Vec<Box<dyn das_core::Scheduler>> = vec![
            Box::new(UniformScheduler::default()),
            Box::new(PrivateScheduler::default()),
        ];
        for sched in &schedulers {
            let planner = SweepPlanner::new(sched.as_ref(), &p);
            assert!(planner.shares_planning());
            let runner = TrialRunner::new(42, 8);
            let swept = runner.run_trials(|seed| run_trial_swept(&planner, &p, seed));
            let plain = runner.run_trials(|seed| run_trial(sched.as_ref(), &p, seed));
            assert_eq!(planner.cache_hits(), 8);
            for (s, mut pl) in swept.into_iter().zip(plain) {
                assert_eq!(s.sweep, Some(SweepSummary { shared: true }));
                // the sweep marker is the ONLY field allowed to differ
                pl.sweep = s.sweep;
                assert_eq!(
                    s,
                    pl,
                    "{}: sweep sharing moved an outcome field",
                    sched.name()
                );
            }
        }
    }

    #[test]
    fn sweep_planner_exports_cache_stats_into_obs_metrics() {
        let g = generators::path(12);
        let p = workloads::stacked_relays(&g, 4, 1);
        let sched = UniformScheduler::default();
        let planner = SweepPlanner::new(&sched, &p);
        let _ = run_trial_swept(&planner, &p, 3);
        let mut metrics = das_obs::MetricsRegistry::new();
        planner.export_metrics(&mut metrics);
        assert_eq!(metrics.counter("sweep.plan_cache_hits"), 1);
        assert_eq!(metrics.counter("sweep.shared_artifacts"), 1);
    }

    #[test]
    fn round_cap_records_a_truncated_trial_instead_of_crashing() {
        use das_core::{ExecError, SchedError, Scheduler};
        let g = generators::path(8);
        let p = workloads::stacked_relays(&g, 3, 1);
        let plan = SequentialScheduler.plan(&p, 0).unwrap();
        let rec = finish_trial(
            &p,
            &plan,
            5,
            Err(SchedError::Exec(ExecError::RoundCapExceeded {
                cap: 4,
                big_round: 4,
            })),
        );
        assert!(rec.truncated);
        assert!(!rec.success());
        assert_eq!(rec.schedule, 4);
        assert_eq!(rec.correctness, 0.0);
        assert_eq!(rec.late, 0);
        assert_eq!(rec.seed, 5);
    }

    #[test]
    fn sweep_reuses_reference_runs_across_trials() {
        // the E1 shape: one problem, many trials varying only sched_seed —
        // the k reference runs are computed exactly once
        let g = generators::path(16);
        let p = workloads::stacked_relays(&g, 5, 7);
        let runner = TrialRunner::new(42, 12);
        let agg = runner.aggregate("reuse_check", "uniform", |seed| {
            run_trial(&UniformScheduler::default(), &p, seed)
        });
        assert_eq!(agg.trials, 12);
        assert_eq!(
            p.reference_runs_computed(),
            5,
            "reference runs must be shared across the sweep, not recomputed per trial"
        );
    }

    #[test]
    fn success_rate_counts() {
        assert_eq!(success_rate(10, |t| t % 2 == 0), 0.5);
        assert_eq!(success_rate(0, |_| true), 0.0);
    }
}
