//! # das-bench
//!
//! The experiment harness: workload builders, result tables, the parallel
//! [`TrialRunner`], and the runners behind the `benches/e*.rs` benchmarks —
//! one per experiment in `EXPERIMENTS.md` (E1–E10). Each bench prints the
//! paper-style table before timing a representative configuration with
//! criterion, so `cargo bench` regenerates every table and series.
//! Seed sweeps fan across threads through [`TrialRunner`] and can be
//! serialized to `BENCH_<experiment>.json` artifacts.

#![warn(missing_docs)]

pub mod runner;
pub mod table;
pub mod workloads;

pub use runner::{SummaryStats, TrialAggregate, TrialRecord, TrialRunner};
pub use table::Table;

use das_core::{verify, DasProblem, ScheduleOutcome, Scheduler};

/// One measured scheduler run.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Scheduler name.
    pub name: &'static str,
    /// Schedule length (rounds).
    pub schedule: u64,
    /// Pre-computation rounds.
    pub precompute: u64,
    /// Late (dropped) messages.
    pub late: u64,
    /// Fraction of (algorithm, node) outputs matching the alone runs.
    pub correctness: f64,
}

impl Measured {
    /// Total rounds.
    pub fn total(&self) -> u64 {
        self.schedule + self.precompute
    }
}

/// Runs a scheduler on a problem and verifies it.
///
/// # Panics
/// Panics if the workload violates the CONGEST model (a bug in the
/// workload, not the scheduler).
pub fn measure(scheduler: &dyn Scheduler, problem: &DasProblem<'_>) -> (Measured, ScheduleOutcome) {
    let outcome = scheduler.run(problem).expect("workload is model-valid");
    let report = verify::against_references(problem, &outcome).expect("references computable");
    (
        Measured {
            name: scheduler.name(),
            schedule: outcome.schedule_rounds(),
            precompute: outcome.precompute_rounds,
            late: outcome.stats.late_messages,
            correctness: report.correctness_rate(),
        },
        outcome,
    )
}

/// Builds the per-trial record for a schedule outcome, verifying outputs
/// against the problem's reference runs.
///
/// # Panics
/// Panics if the reference runs are not computable (a workload bug).
pub fn record_trial(problem: &DasProblem<'_>, seed: u64, outcome: &ScheduleOutcome) -> TrialRecord {
    let report = verify::against_references(problem, outcome).expect("references computable");
    TrialRecord {
        seed,
        schedule: outcome.schedule_rounds(),
        precompute: outcome.precompute_rounds,
        late: outcome.stats.late_messages,
        correctness: report.correctness_rate(),
    }
}

/// Success rate of a scheduler over repeated trials: the empirical version
/// of the paper's "with high probability".
///
/// Trials are fanned across threads by [`TrialRunner`]; `run` receives the
/// trial index `0..trials` (experiments derive their own seeds from it),
/// and the result is independent of the thread count.
pub fn success_rate<F>(trials: u64, run: F) -> f64
where
    F: Fn(u64) -> bool + Send + Sync,
{
    if trials == 0 {
        return 0.0;
    }
    let ok = TrialRunner::new(0, trials)
        .run_indexed(run)
        .into_iter()
        .filter(|&ok| ok)
        .count();
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::SequentialScheduler;
    use das_graph::generators;

    #[test]
    fn measure_reports_correct_run() {
        let g = generators::path(8);
        let p = workloads::stacked_relays(&g, 4, 1);
        let (m, _) = measure(&SequentialScheduler, &p);
        assert_eq!(m.name, "sequential");
        assert_eq!(m.late, 0);
        assert_eq!(m.correctness, 1.0);
        assert_eq!(m.total(), m.schedule);
    }

    #[test]
    fn success_rate_counts() {
        assert_eq!(success_rate(10, |t| t % 2 == 0), 0.5);
        assert_eq!(success_rate(0, |_| true), 0.0);
    }
}
