//! Parallel deterministic trial harness.
//!
//! Experiments in this repo are sweeps over independent seeds: run a
//! scheduler many times, look at the distribution of schedule lengths and
//! the empirical success rate (the measured stand-in for the paper's
//! "with high probability"). [`TrialRunner`] fans those independent trials
//! across threads with rayon while keeping the results **bit-identical
//! regardless of thread count**: each trial's seed is derived from the base
//! seed and the trial index by a SplitMix64 step, never from any shared
//! mutable state, and results are collected in trial order.
//!
//! ```
//! use das_bench::TrialRunner;
//!
//! let runner = TrialRunner::new(42, 8);
//! let lengths = runner.run_trials(|seed| seed % 10);
//! assert_eq!(lengths.len(), 8);
//! // same base seed => same trial seeds, on any number of threads
//! assert_eq!(lengths, TrialRunner::new(42, 8).run_trials(|seed| seed % 10));
//! ```

use das_obs::ObsSummary;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Fans independent trials of an experiment across threads, with per-trial
/// seeds derived deterministically from one base seed.
#[derive(Clone, Copy, Debug)]
pub struct TrialRunner {
    base_seed: u64,
    trials: u64,
}

impl TrialRunner {
    /// Creates a runner for `trials` trials derived from `base_seed`.
    pub fn new(base_seed: u64, trials: u64) -> Self {
        TrialRunner { base_seed, trials }
    }

    /// The base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The seed of trial `trial`: a SplitMix64 step over the base seed and
    /// the trial index. Depends only on `(base_seed, trial)`, so a sweep is
    /// reproducible trial-by-trial no matter how trials are distributed
    /// over threads.
    pub fn trial_seed(&self, trial: u64) -> u64 {
        splitmix64(self.base_seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs `run` once per trial index `0..trials` across the rayon pool,
    /// returning the results in trial order.
    pub fn run_indexed<T, F>(&self, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Send + Sync,
    {
        (0..self.trials).into_par_iter().map(run).collect()
    }

    /// Runs `run` once per trial seed across the rayon pool, returning the
    /// results in trial order.
    pub fn run_trials<T, F>(&self, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Send + Sync,
    {
        self.run_indexed(|t| run(self.trial_seed(t)))
    }

    /// Runs one [`TrialRecord`]-producing closure per trial and aggregates
    /// the distribution into a [`TrialAggregate`] for `experiment`.
    pub fn aggregate<F>(&self, experiment: &str, scheduler: &str, run: F) -> TrialAggregate
    where
        F: Fn(u64) -> TrialRecord + Send + Sync,
    {
        let records = self.run_trials(run);
        TrialAggregate::from_records(experiment, scheduler, self.base_seed, records)
    }
}

/// SplitMix64 (same step the engine uses for per-node seeds).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The outcome of one trial, as recorded into the aggregate artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The trial's derived seed.
    pub seed: u64,
    /// Schedule length in engine rounds.
    pub schedule: u64,
    /// The plan's predicted schedule length (the last step boundary),
    /// when the trial went through the staged plan/execute pipeline —
    /// emitted into the artifact so the plan-vs-reality gap is tracked.
    pub predicted: Option<u64>,
    /// Pre-computation rounds.
    pub precompute: u64,
    /// Late (dropped) messages.
    pub late: u64,
    /// Fraction of (algorithm, node) outputs matching the alone runs.
    pub correctness: f64,
    /// Whether the execution hit the engine-round cap and was cut short
    /// (the schedule never drained; nothing was verified).
    #[serde(default)]
    pub truncated: bool,
    /// Per-shard timing and cross-shard traffic, when the trial ran on the
    /// sharded executor. Partition-dependent measurements only — the
    /// outcome itself is byte-identical to the sequential path.
    #[serde(default)]
    pub shard: Option<ShardSummary>,
    /// Per-trial observability summary, when the trial ran with recording
    /// enabled. All fields are deterministic integers on the big-round
    /// clock, so artifacts stay byte-identical across thread counts.
    /// Absent in older artifacts and in unobserved trials.
    #[serde(default)]
    pub obs: Option<ObsSummary>,
    /// Doubling-search summary, when the trial ran a congestion-doubling
    /// search instead of a single plan. Deterministic counters only (the
    /// cache's wall clocks stay out of the artifact). Absent in older
    /// artifacts and in non-doubling trials.
    #[serde(default)]
    pub doubling: Option<DoublingSummary>,
    /// Seed-sweep plan-sharing summary, when the trial's plan was derived
    /// from a sweep-shared artifact ([`crate::SweepPlanner`]). Absent in
    /// older artifacts and in trials planned from scratch.
    #[serde(default)]
    pub sweep: Option<SweepSummary>,
    /// Coordinator-side traffic totals, when the trial ran over the
    /// networked coordinator/worker path. Absent in older artifacts and in
    /// in-process trials.
    #[serde(default)]
    pub net: Option<NetSummary>,
}

impl TrialRecord {
    /// Whether the trial succeeded: it drained within the round budget and
    /// nothing arrived late (the empirical version of the paper's w.h.p.
    /// event).
    pub fn success(&self) -> bool {
        self.late == 0 && !self.truncated
    }
}

/// What one doubling search did, recorded into the artifact: the search
/// shape (attempts, the final guess, whether it gave up) and the plan
/// artifact cache's deterministic counters. Every field is a pure function
/// of the schedule — no wall clocks — so artifacts stay byte-identical
/// across thread counts and cache on/off runs stay diffable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DoublingSummary {
    /// Attempts made (including the successful or given-up one).
    pub attempts: u32,
    /// Attempts rejected by the plan-level precheck.
    pub rejected_by_precheck: u32,
    /// The last attempt's implied congestion guess.
    pub final_guess: u64,
    /// Rounds charged to failed attempts.
    pub wasted_rounds: u64,
    /// Whether the search gave up and fell back to the interleave
    /// baseline.
    pub fell_back: bool,
    /// Guess-independent plan artifact builds (1 with the cache on, 0
    /// off).
    pub artifact_builds: u64,
    /// Attempts planned by re-sizing the cached artifact.
    pub replan_cache_hits: u64,
}

impl DoublingSummary {
    /// Condenses a [`das_core::DoublingOutcome`] into the artifact form.
    pub fn of(outcome: &das_core::DoublingOutcome) -> Self {
        DoublingSummary {
            attempts: outcome.attempts,
            rejected_by_precheck: outcome.rejected_by_precheck,
            final_guess: outcome.final_guess,
            wasted_rounds: outcome.wasted_rounds,
            fell_back: outcome.fell_back,
            artifact_builds: outcome.cache.artifact_builds,
            replan_cache_hits: outcome.cache.replan_cache_hits,
        }
    }
}

/// Seed-sweep plan-sharing marker for one trial: set when the trial's plan
/// was derived through a [`crate::SweepPlanner`] instead of a from-scratch
/// `plan()`. Deterministic — whether an artifact shares work is a pure
/// function of the scheduler, so artifacts stay byte-identical across
/// thread counts (and across sweep-cache on/off up to this marker).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Whether the sweep artifact actually carried shared planning work
    /// (`false` when the scheduler fell back to replanning per seed).
    pub shared: bool,
}

/// Partition-dependent measurements of one sharded execution, recorded
/// into the artifact alongside the (partition-independent) outcome fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Number of shard workers (after clamping to the node count).
    pub shards: usize,
    /// Messages that crossed a shard boundary (exchanged at big-round
    /// boundaries through the per-(shard, shard) outboxes).
    pub cross_shard_messages: u64,
    /// Per-shard wall-clock (step + drain phases), milliseconds.
    pub per_shard_ms: Vec<f64>,
    /// Per-shard delivered-message counts.
    pub per_shard_delivered: Vec<u64>,
}

impl ShardSummary {
    /// Condenses an executor [`das_core::ShardReport`] into the artifact
    /// form.
    pub fn of(report: &das_core::ShardReport) -> Self {
        ShardSummary {
            shards: report.shards,
            cross_shard_messages: report.cross_shard_messages,
            per_shard_ms: report
                .per_shard
                .iter()
                .map(|s| (s.step_nanos + s.drain_nanos) as f64 / 1e6)
                .collect(),
            per_shard_delivered: report.per_shard.iter().map(|s| s.delivered).collect(),
        }
    }
}

/// Traffic-side measurements of one networked (coordinator/worker)
/// execution, recorded into the artifact alongside the partition-dependent
/// [`ShardSummary`]. Counted on the coordinator's side of each worker
/// link, frame headers included.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetSummary {
    /// Number of worker connections (after clamping to the node count).
    pub workers: usize,
    /// Frames the coordinator sent, summed over all workers.
    pub frames_sent: u64,
    /// Frames the coordinator received, summed over all workers.
    pub frames_received: u64,
    /// Bytes the coordinator sent, summed over all workers.
    pub bytes_sent: u64,
    /// Bytes the coordinator received, summed over all workers.
    pub bytes_received: u64,
    /// Per-worker bytes sent by the coordinator, in shard order.
    pub per_worker_bytes_sent: Vec<u64>,
    /// Per-worker bytes received by the coordinator, in shard order.
    pub per_worker_bytes_received: Vec<u64>,
}

impl NetSummary {
    /// Condenses a [`das_core::NetReport`] into the artifact form.
    pub fn of(report: &das_core::NetReport) -> Self {
        NetSummary {
            workers: report.traffic.len(),
            frames_sent: report.traffic.iter().map(|t| t.frames_sent).sum(),
            frames_received: report.traffic.iter().map(|t| t.frames_received).sum(),
            bytes_sent: report.traffic.iter().map(|t| t.bytes_sent).sum(),
            bytes_received: report.traffic.iter().map(|t| t.bytes_received).sum(),
            per_worker_bytes_sent: report.traffic.iter().map(|t| t.bytes_sent).collect(),
            per_worker_bytes_received: report.traffic.iter().map(|t| t.bytes_received).collect(),
        }
    }
}

/// Summary of one integer-valued metric across trials.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Maximum.
    pub max: u64,
}

impl SummaryStats {
    /// Summarizes `values` (empty input gives all-zero stats).
    pub fn of(values: &[u64]) -> Self {
        if values.is_empty() {
            return SummaryStats {
                mean: 0.0,
                p50: 0,
                p95: 0,
                max: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        SummaryStats {
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: rank(0.5),
            p95: rank(0.95),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// The aggregate of a trial sweep — the JSON artifact experiments emit as
/// `BENCH_<experiment>.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialAggregate {
    /// Experiment name (e.g. `e01_uniform`).
    pub experiment: String,
    /// Scheduler under test.
    pub scheduler: String,
    /// Base seed the trial seeds were derived from.
    pub base_seed: u64,
    /// Number of trials.
    pub trials: u64,
    /// Schedule-length distribution.
    pub schedule: SummaryStats,
    /// Predicted-schedule-length distribution, when every record carries
    /// a plan prediction.
    pub predicted_schedule: Option<SummaryStats>,
    /// Late-message distribution.
    pub late: SummaryStats,
    /// Fraction of trials with zero late messages.
    pub success_rate: f64,
    /// Mean output-correctness fraction across trials.
    pub mean_correctness: f64,
    /// Every trial, in trial order.
    pub records: Vec<TrialRecord>,
}

impl TrialAggregate {
    /// Aggregates `records` (in trial order) into the artifact struct.
    pub fn from_records(
        experiment: &str,
        scheduler: &str,
        base_seed: u64,
        records: Vec<TrialRecord>,
    ) -> Self {
        let schedules: Vec<u64> = records.iter().map(|r| r.schedule).collect();
        let lates: Vec<u64> = records.iter().map(|r| r.late).collect();
        let predictions: Option<Vec<u64>> = if records.is_empty() {
            None
        } else {
            records.iter().map(|r| r.predicted).collect()
        };
        let n = records.len().max(1) as f64;
        let successes = records.iter().filter(|r| r.success()).count();
        TrialAggregate {
            experiment: experiment.to_string(),
            scheduler: scheduler.to_string(),
            base_seed,
            trials: records.len() as u64,
            schedule: SummaryStats::of(&schedules),
            predicted_schedule: predictions.map(|p| SummaryStats::of(&p)),
            late: SummaryStats::of(&lates),
            success_rate: successes as f64 / n,
            mean_correctness: records.iter().map(|r| r.correctness).sum::<f64>() / n,
            records,
        }
    }

    /// The artifact's JSON form: pretty-printed with keys in declaration
    /// order, so equal aggregates serialize byte-identically.
    ///
    /// # Panics
    /// Panics if a trial recorded a non-finite correctness value.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("aggregate is JSON-representable")
    }

    /// Writes the artifact as `BENCH_<experiment>.json` under `dir`
    /// (non-filename characters in the experiment name become `_`) and
    /// returns the path.
    ///
    /// # Errors
    /// Propagates I/O errors from the write.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let safe: String = self
            .experiment
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("BENCH_{safe}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64, schedule: u64, late: u64) -> TrialRecord {
        TrialRecord {
            seed,
            schedule,
            predicted: Some(schedule),
            precompute: 0,
            late,
            correctness: 1.0,
            truncated: false,
            shard: None,
            obs: None,
            doubling: None,
            sweep: None,
            net: None,
        }
    }

    #[test]
    fn trial_seeds_depend_only_on_base_and_index() {
        let a = TrialRunner::new(7, 16);
        let b = TrialRunner::new(7, 16);
        let seeds_a: Vec<u64> = (0..16).map(|t| a.trial_seed(t)).collect();
        let seeds_b: Vec<u64> = (0..16).map(|t| b.trial_seed(t)).collect();
        assert_eq!(seeds_a, seeds_b);
        let mut dedup = seeds_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "trial seeds collide");
        assert_ne!(seeds_a[0], TrialRunner::new(8, 16).trial_seed(0));
    }

    #[test]
    fn run_trials_returns_in_trial_order() {
        let runner = TrialRunner::new(3, 64);
        let expected: Vec<u64> = (0..64).map(|t| runner.trial_seed(t)).collect();
        assert_eq!(runner.run_trials(|seed| seed), expected);
    }

    #[test]
    fn summary_stats_of_known_values() {
        let s = SummaryStats::of(&[4, 1, 3, 2]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 3, "nearest-rank median of 4 values");
        assert_eq!(s.p95, 4);
        assert_eq!(s.max, 4);
        assert_eq!(SummaryStats::of(&[]).max, 0);
    }

    #[test]
    fn aggregate_counts_successes() {
        let records = vec![record(1, 10, 0), record(2, 20, 3), record(3, 30, 0)];
        let agg = TrialAggregate::from_records("test", "uniform", 9, records);
        assert_eq!(agg.trials, 3);
        assert_eq!(agg.success_rate, 2.0 / 3.0);
        assert_eq!(agg.schedule.max, 30);
        assert_eq!(agg.late.max, 3);
        assert_eq!(agg.mean_correctness, 1.0);
    }

    #[test]
    fn truncated_trials_do_not_count_as_successes() {
        let mut cut = record(2, 10, 0);
        cut.truncated = true;
        assert!(!cut.success());
        let agg = TrialAggregate::from_records("t", "s", 0, vec![record(1, 10, 0), cut]);
        assert_eq!(agg.success_rate, 0.5);
    }

    #[test]
    fn pre_shard_artifacts_still_deserialize() {
        // records written before the truncated/shard fields existed
        let json = r#"{"seed":1,"schedule":10,"predicted":null,"precompute":0,"late":0,"correctness":1.0}"#;
        let r: TrialRecord = serde_json::from_str(json).unwrap();
        assert!(!r.truncated);
        assert!(r.shard.is_none());
        assert!(r.obs.is_none());
        assert!(r.doubling.is_none());
        assert!(r.sweep.is_none());
        assert!(r.success());
    }

    #[test]
    fn doubling_summary_roundtrips_in_records() {
        let mut rec = record(1, 10, 0);
        rec.doubling = Some(DoublingSummary {
            attempts: 3,
            rejected_by_precheck: 2,
            final_guess: 24,
            wasted_rounds: 90,
            fell_back: false,
            artifact_builds: 1,
            replan_cache_hits: 2,
        });
        let agg = TrialAggregate::from_records("t", "s", 0, vec![rec]);
        let back: TrialAggregate = serde_json::from_str(&agg.to_json()).unwrap();
        assert_eq!(back, agg);
        assert_eq!(
            back.records[0]
                .doubling
                .as_ref()
                .map(|d| d.replan_cache_hits),
            Some(2)
        );
    }

    #[test]
    fn pre_obs_artifacts_still_deserialize() {
        // a record written before the obs field existed, including the
        // shard block — exactly the shape of older sharded BENCH artifacts
        let json = r#"{"seed":3,"schedule":12,"predicted":12,"precompute":0,"late":0,
            "correctness":1.0,"truncated":false,
            "shard":{"shards":2,"cross_shard_messages":4,
                     "per_shard_ms":[0.5,0.5],"per_shard_delivered":[3,3]}}"#;
        let r: TrialRecord = serde_json::from_str(json).unwrap();
        assert!(r.obs.is_none());
        assert_eq!(r.shard.as_ref().map(|s| s.shards), Some(2));
        assert!(r.success());
    }

    #[test]
    fn obs_summary_roundtrips_in_records() {
        let mut rec = record(1, 10, 0);
        rec.obs = Some(ObsSummary {
            messages: 40,
            peak_round: 2,
            ..ObsSummary::default()
        });
        let agg = TrialAggregate::from_records("t", "s", 0, vec![rec]);
        let json = agg.to_json();
        let back: TrialAggregate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, agg);
        assert_eq!(back.records[0].obs.as_ref().map(|o| o.messages), Some(40));
    }

    #[test]
    fn json_roundtrips_and_is_stable() {
        let agg = TrialAggregate::from_records(
            "e01_uniform",
            "uniform",
            42,
            vec![record(11, 17, 0), record(12, 19, 1)],
        );
        let json = agg.to_json();
        let back: TrialAggregate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, agg);
        assert_eq!(back.to_json(), json, "serialization is canonical");
    }

    #[test]
    fn write_sanitizes_the_experiment_name() {
        let agg = TrialAggregate::from_records("e/0 1", "s", 0, vec![]);
        let dir = std::env::temp_dir().join("das_bench_runner_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = agg.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_e_0_1.json"), "{}", path.display());
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, agg.to_json());
        std::fs::remove_file(path).unwrap();
    }
}
