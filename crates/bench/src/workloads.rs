//! Reusable workload builders for the experiments.

use das_algos::bfs::HopBfs;
use das_algos::broadcast::SingleBroadcast;
use das_core::synthetic::{FloodBall, RelayChain};
use das_core::{BlackBoxAlgorithm, DasProblem};
use das_graph::{Graph, NodeId};

/// `k` relays all along the full path `0..n`: congestion `k`, dilation
/// `n − 1` (the maximally-contended workload).
pub fn stacked_relays(g: &Graph, k: usize, seed: u64) -> DasProblem<'_> {
    let algos = (0..k)
        .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
        .collect();
    DasProblem::new(g, algos, seed)
}

/// `k` relays on sliding windows of length `seg` along a path: congestion
/// `≈ seg / stride`, dilation `seg` — the pipelining-friendly workload.
pub fn segment_relays(g: &Graph, k: usize, seg: usize, stride: usize, seed: u64) -> DasProblem<'_> {
    let n = g.node_count();
    assert!(seg + 1 < n, "segments must fit the path");
    let algos = (0..k)
        .map(|i| {
            let start = (i * stride) % (n - seg - 1);
            let route: Vec<NodeId> = (start..=start + seg).map(|v| NodeId(v as u32)).collect();
            Box::new(RelayChain::along(i as u64, g, route)) as Box<dyn BlackBoxAlgorithm>
        })
        .collect();
    DasProblem::new(g, algos, seed)
}

/// `k` depth-`h` floods from spread-out sources (data-dependent patterns).
pub fn flood_bundle(g: &Graph, k: usize, depth: u32, seed: u64) -> DasProblem<'_> {
    let n = g.node_count() as u64;
    let algos = (0..k as u64)
        .map(|i| {
            let src = NodeId(((i * 2654435761) % n) as u32);
            Box::new(FloodBall::new(i, g, src, depth)) as Box<dyn BlackBoxAlgorithm>
        })
        .collect();
    DasProblem::new(g, algos, seed)
}

/// A mixed bundle: BFS trees, broadcasts, and floods.
pub fn mixed_bundle(g: &Graph, k: usize, depth: u32, seed: u64) -> DasProblem<'_> {
    let n = g.node_count() as u64;
    let algos = (0..k as u64)
        .map(|i| {
            let src = NodeId(((i * 40503) % n) as u32);
            match i % 3 {
                0 => Box::new(HopBfs::new(i, g, src, depth)) as Box<dyn BlackBoxAlgorithm>,
                1 => Box::new(SingleBroadcast::new(i, g, src, depth)),
                _ => Box::new(FloodBall::new(i, g, src, depth)),
            }
        })
        .collect();
    DasProblem::new(g, algos, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    #[test]
    fn stacked_relay_parameters() {
        let g = generators::path(10);
        let p = stacked_relays(&g, 5, 0);
        let params = p.parameters().unwrap();
        assert_eq!(params.congestion, 5);
        assert_eq!(params.dilation, 9);
    }

    #[test]
    fn segment_relay_congestion_bounded() {
        let g = generators::path(50);
        let p = segment_relays(&g, 20, 10, 2, 0);
        let params = p.parameters().unwrap();
        assert!(params.congestion <= 7, "congestion {}", params.congestion);
        assert_eq!(params.dilation, 10);
    }

    #[test]
    fn bundles_build_and_reference() {
        let g = generators::grid(5, 5);
        assert!(flood_bundle(&g, 6, 4, 1).parameters().is_ok());
        assert!(mixed_bundle(&g, 9, 4, 1).parameters().is_ok());
    }
}
