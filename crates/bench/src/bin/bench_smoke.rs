//! Reduced-trial smoke experiment for CI: E1's representative
//! configuration with a handful of seeds through [`TrialRunner`], writing
//! `BENCH_e01_smoke.json` into the current directory.
//!
//! Usage: `bench_smoke [trials] [base_seed]` (defaults: 8 trials, seed 42).

use das_bench::{run_trial, workloads, TrialRunner};
use das_core::UniformScheduler;
use das_graph::generators;
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let base_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    if trials == 0 {
        eprintln!("error: trials must be at least 1 (usage: bench_smoke [trials] [base_seed])");
        std::process::exit(2);
    }

    let g = generators::path(120);
    let problem = workloads::segment_relays(&g, 40, 16, 2, 7);
    problem.parameters().expect("workload is model-valid");

    let runner = TrialRunner::new(base_seed, trials);
    let agg = runner.aggregate("e01_smoke", "uniform", |seed| {
        run_trial(&UniformScheduler::default(), &problem, seed)
    });
    let path = agg.write(Path::new(".")).expect("write BENCH artifact");
    let predicted = agg
        .predicted_schedule
        .as_ref()
        .expect("staged trials carry predictions");
    println!(
        "wrote {} ({} trials, success {:.0}%, schedule mean {:.1} / p50 {} / p95 {} / max {}, predicted mean {:.1} / max {})",
        path.display(),
        agg.trials,
        agg.success_rate * 100.0,
        agg.schedule.mean,
        agg.schedule.p50,
        agg.schedule.p95,
        agg.schedule.max,
        predicted.mean,
        predicted.max,
    );
    assert!(
        agg.mean_correctness > 0.99,
        "smoke run produced wrong outputs (correctness {})",
        agg.mean_correctness
    );
}
