//! Reduced-trial smoke experiment for CI: E1's representative
//! configuration with a handful of seeds through [`TrialRunner`], writing
//! `BENCH_e01_smoke.json` (fused) and `BENCH_e01_smoke_sharded.json`
//! (sharded executor) into the current directory, and printing a
//! sharded-vs-fused wall-clock comparison.
//!
//! Usage: `bench_smoke [trials] [base_seed]` (defaults: 8 trials, seed 42).

use das_bench::{run_trial, run_trial_sharded, workloads, TrialRunner};
use das_core::UniformScheduler;
use das_graph::generators;
use std::path::Path;
use std::time::Instant;

/// Shard count for the sharded leg of the smoke run.
const SMOKE_SHARDS: usize = 4;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let base_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    if trials == 0 {
        eprintln!("error: trials must be at least 1 (usage: bench_smoke [trials] [base_seed])");
        std::process::exit(2);
    }

    let g = generators::path(120);
    let problem = workloads::segment_relays(&g, 40, 16, 2, 7);
    problem.parameters().expect("workload is model-valid");

    let runner = TrialRunner::new(base_seed, trials);
    let fused_clock = Instant::now();
    let agg = runner.aggregate("e01_smoke", "uniform", |seed| {
        run_trial(&UniformScheduler::default(), &problem, seed)
    });
    let fused_ms = fused_clock.elapsed().as_secs_f64() * 1e3;
    let path = agg.write(Path::new(".")).expect("write BENCH artifact");
    let predicted = agg
        .predicted_schedule
        .as_ref()
        .expect("staged trials carry predictions");
    println!(
        "wrote {} ({} trials, success {:.0}%, schedule mean {:.1} / p50 {} / p95 {} / max {}, predicted mean {:.1} / max {})",
        path.display(),
        agg.trials,
        agg.success_rate * 100.0,
        agg.schedule.mean,
        agg.schedule.p50,
        agg.schedule.p95,
        agg.schedule.max,
        predicted.mean,
        predicted.max,
    );
    assert!(
        agg.mean_correctness > 0.99,
        "smoke run produced wrong outputs (correctness {})",
        agg.mean_correctness
    );

    // Same trials again through the sharded executor: the schedule-quality
    // numbers must not move (byte-identical outcomes), only wall-clock and
    // the per-shard fields may differ.
    let sharded_clock = Instant::now();
    let sharded = runner.aggregate("e01_smoke_sharded", "uniform", |seed| {
        run_trial_sharded(&UniformScheduler::default(), &problem, seed, SMOKE_SHARDS)
    });
    let sharded_ms = sharded_clock.elapsed().as_secs_f64() * 1e3;
    let sharded_path = sharded
        .write(Path::new("."))
        .expect("write sharded BENCH artifact");
    assert_eq!(
        (agg.schedule.max, agg.late.max, agg.success_rate),
        (sharded.schedule.max, sharded.late.max, sharded.success_rate),
        "sharded execution changed schedule statistics"
    );
    println!(
        "wrote {} ({} shards, sharded wall {:.1} ms vs fused {:.1} ms, ratio {:.2}x)",
        sharded_path.display(),
        SMOKE_SHARDS,
        sharded_ms,
        fused_ms,
        sharded_ms / fused_ms.max(f64::EPSILON),
    );
}
