//! Reduced-trial smoke experiment for CI: E1's representative
//! configuration with a handful of seeds through [`TrialRunner`], writing
//! `BENCH_e01_smoke.json` (fused) and `BENCH_e01_smoke_sharded.json`
//! (sharded executor) into the current directory, and printing a
//! sharded-vs-fused wall-clock comparison.
//!
//! Usage: `bench_smoke [trials] [base_seed] [--obs off|metrics|full]
//! [--engine row|columnar|batched] [--dump-outcome FILE] [--wall]
//! [--serve [ADDR]]` (defaults: 8 trials, seed 42, obs off, columnar
//! engine). `--serve` binds a live [`das_obs::ObsServer`] console (an OS
//! port when ADDR is omitted, advertised on the `listening on ADDR`
//! stdout line) that streams each leg's phase and, on the legs that carry
//! a hub, per-shard load and doubling attempts — without perturbing any
//! printed or persisted output.
//!
//! `--engine` selects the execution engine for the fused trials and the
//! outcome dumps; schedule statistics are byte-identical across engines
//! (CI diffs the dumps), only wall-clock may move.
//!
//! `--obs` sets the observability level for the fused trials; their
//! per-trial [`das_obs::ObsSummary`] is persisted into the BENCH artifact.
//! `--dump-outcome` writes every fused trial's `ScheduleOutcome` debug
//! dump to FILE — CI diffs those dumps between `--obs full` and
//! `--obs off` runs to enforce that recording never perturbs outcomes.
//! `--wall` opts into wall-clock reporting (the `ObsConfig::wall_clock`
//! side channel plus the printed timing splits); without it every line
//! this binary prints is deterministic, so CI can diff whole outputs
//! without flaking on timing noise.

use das_bench::{
    run_trial_doubling, run_trial_networked, run_trial_observed_with_engine, run_trial_sharded,
    run_trial_swept, workloads, SweepPlanner, TrialRunner,
};
use das_core::{
    doubling, execute_plan_observed_with, DasProblem, DoublingConfig, EngineKind, ExecutorConfig,
    Scheduler, UniformScheduler,
};
use das_obs::{LiveHub, ObsConfig, ObsServer};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Shard count for the sharded leg of the smoke run.
const SMOKE_SHARDS: usize = 4;

/// Worker count for the networked (coordinator/worker over localhost TCP)
/// leg of the smoke run.
const SMOKE_WORKERS: usize = 3;

const USAGE: &str = "usage: bench_smoke [trials] [base_seed] \
                     [--obs off|metrics|full] [--engine row|columnar|batched] \
                     [--dump-outcome FILE] [--plan-cache on|off] \
                     [--dump-doubling FILE] [--wall] [--serve [ADDR]]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    trials: u64,
    base_seed: u64,
    obs: ObsConfig,
    engine: EngineKind,
    dump_outcome: Option<String>,
    plan_cache: bool,
    dump_doubling: Option<String>,
    wall: bool,
    serve: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        trials: 8,
        base_seed: 42,
        obs: ObsConfig::off(),
        engine: EngineKind::Columnar,
        dump_outcome: None,
        plan_cache: true,
        dump_doubling: None,
        wall: false,
        serve: None,
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--obs" => {
                let v = it.next().unwrap_or_else(|| fail("--obs needs a value"));
                args.obs = ObsConfig::parse(&v)
                    .unwrap_or_else(|| fail("--obs must be off, metrics, or full"));
            }
            "--engine" => {
                let v = it.next().unwrap_or_else(|| fail("--engine needs a value"));
                args.engine = match v.as_str() {
                    "row" => EngineKind::Row,
                    "columnar" => EngineKind::Columnar,
                    "batched" => EngineKind::ColumnarBatched,
                    _ => fail("--engine must be row, columnar, or batched"),
                };
            }
            "--dump-outcome" => {
                args.dump_outcome = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--dump-outcome needs a value")),
                );
            }
            "--plan-cache" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--plan-cache needs a value"));
                args.plan_cache = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => fail("--plan-cache must be on or off"),
                };
            }
            "--dump-doubling" => {
                args.dump_doubling = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--dump-doubling needs a value")),
                );
            }
            "--wall" => args.wall = true,
            "--serve" => {
                // optional bind address: consume the next token only when
                // it cannot be another flag or a positional trial count
                args.serve = Some(match it.peek() {
                    Some(v) if !v.starts_with("--") && v.parse::<u64>().is_err() => {
                        it.next().expect("peeked")
                    }
                    _ => "127.0.0.1:0".to_string(),
                });
            }
            other => {
                let n: u64 = other
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("unexpected argument `{other}`")));
                match positional {
                    0 => args.trials = n,
                    1 => args.base_seed = n,
                    _ => fail("too many positional arguments"),
                }
                positional += 1;
            }
        }
    }
    if args.trials == 0 {
        fail("trials must be at least 1");
    }
    args
}

/// Executes every fused trial once more and writes the concatenated
/// `ScheduleOutcome` debug dumps — the artifact the obs-neutrality CI job
/// diffs between `--obs full` and `--obs off`.
fn dump_outcomes(
    path: &str,
    runner: &TrialRunner,
    problem: &DasProblem<'_>,
    obs: &ObsConfig,
    engine: EngineKind,
    live: Option<Arc<LiveHub>>,
) {
    let sched = UniformScheduler::default();
    let cfg = ExecutorConfig::default()
        .with_engine(engine)
        .with_live(live);
    let mut dump = String::new();
    for t in 0..runner.trials() {
        let seed = runner.trial_seed(t);
        let plan = sched.plan(problem, seed).expect("workload is model-valid");
        let (outcome, _) = execute_plan_observed_with(problem, &plan, obs, &cfg)
            .expect("smoke trials stay under the cap");
        dump.push_str(&format!("{outcome:?}\n"));
    }
    std::fs::write(path, dump).expect("write outcome dump");
    println!("wrote outcome dumps to {path}");
}

/// Runs every doubling trial once more and writes the search's full
/// deterministic state — outcome bytes plus the search shape, but *not*
/// the wall-clocked cache stats — so CI can diff `--plan-cache on`
/// against `--plan-cache off` byte-for-byte, the same discipline as the
/// obs-neutrality dump.
fn dump_doubling_outcomes(
    path: &str,
    runner: &TrialRunner,
    problem: &DasProblem<'_>,
    cfg: &DoublingConfig,
) {
    let mut dump = String::new();
    for t in 0..runner.trials() {
        let seed = runner.trial_seed(t);
        let sched = UniformScheduler::default().with_seed(seed);
        let (r, _) =
            doubling::uniform_with_doubling_configured(problem, &sched, &ObsConfig::off(), cfg)
                .expect("workload is model-valid");
        dump.push_str(&format!(
            "guess={} attempts={} rejected={} wasted={} ranges={:?} fell_back={} {:?}\n",
            r.final_guess,
            r.attempts,
            r.rejected_by_precheck,
            r.wasted_rounds,
            r.attempted_ranges,
            r.fell_back,
            r.outcome,
        ));
    }
    std::fs::write(path, dump).expect("write doubling dump");
    println!("wrote doubling dumps to {path}");
}

fn main() {
    let args = parse_args();

    let g = das_graph::generators::path(120);
    let problem = workloads::segment_relays(&g, 40, 16, 2, 7);
    problem.parameters().expect("workload is model-valid");

    // --serve: live operator console over the smoke run. The hub is
    // write-only, so every leg's outputs are unchanged by its presence.
    let live = args.serve.as_ref().map(|_| Arc::new(LiveHub::new()));
    let _server = match (&args.serve, &live) {
        (Some(addr), Some(hub)) => {
            let srv = ObsServer::bind(addr, hub.clone())
                .unwrap_or_else(|e| fail(&format!("bind {addr}: {e}")));
            println!("listening on {}", srv.local_addr());
            let engine = match args.engine {
                EngineKind::Row => "row",
                EngineKind::Columnar => "columnar",
                EngineKind::ColumnarBatched => "batched",
            };
            hub.set_run_info(engine, 1);
            Some(srv)
        }
        _ => None,
    };
    let phase = |name: &str| {
        if let Some(hub) = &live {
            hub.set_phase(name);
        }
    };

    let runner = TrialRunner::new(args.base_seed, args.trials);
    phase("fused trials");
    let fused_clock = Instant::now();
    let agg = runner.aggregate("e01_smoke", "uniform", |seed| {
        run_trial_observed_with_engine(
            &UniformScheduler::default(),
            &problem,
            seed,
            &args.obs,
            args.engine,
        )
        .0
    });
    let fused_ms = fused_clock.elapsed().as_secs_f64() * 1e3;
    let path = agg.write(Path::new(".")).expect("write BENCH artifact");
    let predicted = agg
        .predicted_schedule
        .as_ref()
        .expect("staged trials carry predictions");
    println!(
        "wrote {} ({} trials, success {:.0}%, schedule mean {:.1} / p50 {} / p95 {} / max {}, predicted mean {:.1} / max {})",
        path.display(),
        agg.trials,
        agg.success_rate * 100.0,
        agg.schedule.mean,
        agg.schedule.p50,
        agg.schedule.p95,
        agg.schedule.max,
        predicted.mean,
        predicted.max,
    );
    if let Some(obs) = agg.records.first().and_then(|r| r.obs.as_ref()) {
        println!(
            "obs (trial 0): {} messages, peak round {} ({} msgs), max arc load {}, congestion p95 {}, {} events",
            obs.messages,
            obs.peak_round,
            obs.peak_round_messages,
            obs.max_arc_load,
            obs.congestion_p95,
            obs.events,
        );
    }
    assert!(
        agg.mean_correctness > 0.99,
        "smoke run produced wrong outputs (correctness {})",
        agg.mean_correctness
    );

    if let Some(dump) = &args.dump_outcome {
        phase("outcome dumps");
        dump_outcomes(
            dump,
            &runner,
            &problem,
            &args.obs,
            args.engine,
            live.clone(),
        );
    }

    // Same trials again from one shared sweep artifact: the scheduler plans
    // its seed-independent prefix once, every trial re-derives only the
    // seed-dependent tail, and the schedule-quality numbers must not move.
    phase("swept trials");
    let sweep_sched = UniformScheduler::default();
    let planner = SweepPlanner::new(&sweep_sched, &problem);
    let swept = runner.aggregate("e01_smoke_swept", "uniform", |seed| {
        run_trial_swept(&planner, &problem, seed)
    });
    let swept_path = swept
        .write(Path::new("."))
        .expect("write swept BENCH artifact");
    assert_eq!(
        (agg.schedule.max, agg.late.max, agg.success_rate),
        (swept.schedule.max, swept.late.max, swept.success_rate),
        "sweep-shared planning changed schedule statistics"
    );
    println!(
        "wrote {} (sweep cache: shared={}, {} plan-cache hits over {} trials)",
        swept_path.display(),
        planner.shares_planning(),
        planner.cache_hits(),
        swept.trials,
    );

    // Same trials again through the sharded executor: the schedule-quality
    // numbers must not move (byte-identical outcomes), only wall-clock and
    // the per-shard fields may differ.
    phase("sharded trials");
    let sharded_clock = Instant::now();
    let sharded = runner.aggregate("e01_smoke_sharded", "uniform", |seed| {
        run_trial_sharded(&UniformScheduler::default(), &problem, seed, SMOKE_SHARDS)
    });
    let sharded_ms = sharded_clock.elapsed().as_secs_f64() * 1e3;
    let sharded_path = sharded
        .write(Path::new("."))
        .expect("write sharded BENCH artifact");
    assert_eq!(
        (agg.schedule.max, agg.late.max, agg.success_rate),
        (sharded.schedule.max, sharded.late.max, sharded.success_rate),
        "sharded execution changed schedule statistics"
    );
    if args.wall {
        println!(
            "wrote {} ({} shards, sharded wall {:.1} ms vs fused {:.1} ms, ratio {:.2}x)",
            sharded_path.display(),
            SMOKE_SHARDS,
            sharded_ms,
            fused_ms,
            sharded_ms / fused_ms.max(f64::EPSILON),
        );
    } else {
        println!("wrote {} ({} shards)", sharded_path.display(), SMOKE_SHARDS);
    }

    // Same trials again over the networked coordinator/worker path on
    // localhost: schedule-quality numbers must not move, and the artifact
    // additionally records per-worker coordinator-side traffic. Frame and
    // byte counts are a pure function of the plan, so this leg's printed
    // line stays CI-diffable.
    phase("networked trials");
    let networked_clock = Instant::now();
    let networked = runner.aggregate("e01_smoke_networked", "uniform", |seed| {
        run_trial_networked(&UniformScheduler::default(), &problem, seed, SMOKE_WORKERS)
    });
    let networked_ms = networked_clock.elapsed().as_secs_f64() * 1e3;
    let networked_path = networked
        .write(Path::new("."))
        .expect("write networked BENCH artifact");
    assert_eq!(
        (agg.schedule.max, agg.late.max, agg.success_rate),
        (
            networked.schedule.max,
            networked.late.max,
            networked.success_rate
        ),
        "networked execution changed schedule statistics"
    );
    let traffic = networked
        .records
        .first()
        .and_then(|r| r.net.as_ref())
        .expect("networked trials carry traffic");
    assert_eq!(traffic.workers, SMOKE_WORKERS);
    if args.wall {
        println!(
            "wrote {} ({} workers, trial-0 traffic tx {} frames / {} B, rx {} frames / {} B, wall {:.1} ms)",
            networked_path.display(),
            SMOKE_WORKERS,
            traffic.frames_sent,
            traffic.bytes_sent,
            traffic.frames_received,
            traffic.bytes_received,
            networked_ms,
        );
    } else {
        println!(
            "wrote {} ({} workers, trial-0 traffic tx {} frames / {} B, rx {} frames / {} B)",
            networked_path.display(),
            SMOKE_WORKERS,
            traffic.frames_sent,
            traffic.bytes_sent,
            traffic.frames_received,
            traffic.bytes_received,
        );
    }

    // Doubling leg: a congested instance (16 relays stacked on one short
    // path) that forces a multi-attempt search, so the plan-artifact cache
    // has attempts to save planning work on.
    phase("doubling trials");
    let dg = das_graph::generators::path(24);
    let dbl_problem = workloads::stacked_relays(&dg, 16, 7);
    let cfg = DoublingConfig {
        reuse_artifact: args.plan_cache,
        ..DoublingConfig::default()
    }
    .with_live(live.clone());
    let dbl_clock = Instant::now();
    let dbl = runner.aggregate("e01_smoke_doubling", "uniform+doubling", |seed| {
        run_trial_doubling(&UniformScheduler::default(), &dbl_problem, seed, &cfg)
    });
    let dbl_ms = dbl_clock.elapsed().as_secs_f64() * 1e3;
    let dbl_path = dbl
        .write(Path::new("."))
        .expect("write doubling BENCH artifact");
    assert!(
        dbl.mean_correctness > 0.99,
        "doubling smoke run produced wrong outputs (correctness {})",
        dbl.mean_correctness
    );
    let summaries: Vec<_> = dbl
        .records
        .iter()
        .map(|r| {
            r.doubling
                .as_ref()
                .expect("doubling trials carry a summary")
        })
        .collect();
    let hits: u64 = summaries.iter().map(|d| d.replan_cache_hits).sum();
    let builds: u64 = summaries.iter().map(|d| d.artifact_builds).sum();
    let max_attempts = summaries.iter().map(|d| d.attempts).max().unwrap_or(0);
    if args.plan_cache {
        assert!(
            max_attempts > 1,
            "the doubling smoke instance must force a multi-attempt search"
        );
        assert!(
            hits > 0,
            "a multi-attempt search with the cache on must record cache hits"
        );
        for d in &summaries {
            assert_eq!(d.artifact_builds, 1, "the artifact is built exactly once");
        }
    } else {
        assert_eq!(hits, 0, "the cache-off path must not report hits");
        assert_eq!(builds, 0, "the cache-off path replans from scratch");
    }
    if args.wall {
        println!(
            "wrote {} (plan cache {}, {} artifact builds, {} re-size hits, max attempts {}, wall {:.1} ms)",
            dbl_path.display(),
            if args.plan_cache { "on" } else { "off" },
            builds,
            hits,
            max_attempts,
            dbl_ms,
        );
        // one extra search at the base seed to surface the planning
        // wall-time split the deterministic artifact deliberately omits
        let probe_sched = UniformScheduler::default().with_seed(args.base_seed);
        let (probe, _) = doubling::uniform_with_doubling_configured(
            &dbl_problem,
            &probe_sched,
            &ObsConfig::off(),
            &cfg,
        )
        .expect("workload is model-valid");
        println!(
            "doubling planning wall (seed {}): {:.1} µs over {} build(s), {:.1} µs over {} re-size(s)",
            args.base_seed,
            probe.cache.build_nanos as f64 / 1e3,
            probe.cache.artifact_builds,
            probe.cache.size_nanos as f64 / 1e3,
            probe.cache.replan_cache_hits,
        );
    } else {
        println!(
            "wrote {} (plan cache {}, {} artifact builds, {} re-size hits, max attempts {})",
            dbl_path.display(),
            if args.plan_cache { "on" } else { "off" },
            builds,
            hits,
            max_attempts,
        );
    }

    if let Some(dump) = &args.dump_doubling {
        dump_doubling_outcomes(dump, &runner, &dbl_problem, &cfg);
    }
    phase("done");
}
