//! Reduced-trial smoke experiment for CI: E1's representative
//! configuration with a handful of seeds through [`TrialRunner`], writing
//! `BENCH_e01_smoke.json` (fused) and `BENCH_e01_smoke_sharded.json`
//! (sharded executor) into the current directory, and printing a
//! sharded-vs-fused wall-clock comparison.
//!
//! Usage: `bench_smoke [trials] [base_seed] [--obs off|metrics|full]
//! [--dump-outcome FILE]` (defaults: 8 trials, seed 42, obs off).
//!
//! `--obs` sets the observability level for the fused trials; their
//! per-trial [`das_obs::ObsSummary`] is persisted into the BENCH artifact.
//! `--dump-outcome` writes every fused trial's `ScheduleOutcome` debug
//! dump to FILE — CI diffs those dumps between `--obs full` and
//! `--obs off` runs to enforce that recording never perturbs outcomes.

use das_bench::{run_trial_observed, run_trial_sharded, workloads, TrialRunner};
use das_core::{execute_plan_observed, DasProblem, Scheduler, UniformScheduler};
use das_obs::ObsConfig;
use std::path::Path;
use std::time::Instant;

/// Shard count for the sharded leg of the smoke run.
const SMOKE_SHARDS: usize = 4;

const USAGE: &str = "usage: bench_smoke [trials] [base_seed] \
                     [--obs off|metrics|full] [--dump-outcome FILE]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    trials: u64,
    base_seed: u64,
    obs: ObsConfig,
    dump_outcome: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        trials: 8,
        base_seed: 42,
        obs: ObsConfig::off(),
        dump_outcome: None,
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--obs" => {
                let v = it.next().unwrap_or_else(|| fail("--obs needs a value"));
                args.obs = ObsConfig::parse(&v)
                    .unwrap_or_else(|| fail("--obs must be off, metrics, or full"));
            }
            "--dump-outcome" => {
                args.dump_outcome = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--dump-outcome needs a value")),
                );
            }
            other => {
                let n: u64 = other
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("unexpected argument `{other}`")));
                match positional {
                    0 => args.trials = n,
                    1 => args.base_seed = n,
                    _ => fail("too many positional arguments"),
                }
                positional += 1;
            }
        }
    }
    if args.trials == 0 {
        fail("trials must be at least 1");
    }
    args
}

/// Executes every fused trial once more and writes the concatenated
/// `ScheduleOutcome` debug dumps — the artifact the obs-neutrality CI job
/// diffs between `--obs full` and `--obs off`.
fn dump_outcomes(path: &str, runner: &TrialRunner, problem: &DasProblem<'_>, obs: &ObsConfig) {
    let sched = UniformScheduler::default();
    let mut dump = String::new();
    for t in 0..runner.trials() {
        let seed = runner.trial_seed(t);
        let plan = sched.plan(problem, seed).expect("workload is model-valid");
        let (outcome, _) =
            execute_plan_observed(problem, &plan, obs).expect("smoke trials stay under the cap");
        dump.push_str(&format!("{outcome:?}\n"));
    }
    std::fs::write(path, dump).expect("write outcome dump");
    println!("wrote outcome dumps to {path}");
}

fn main() {
    let args = parse_args();

    let g = das_graph::generators::path(120);
    let problem = workloads::segment_relays(&g, 40, 16, 2, 7);
    problem.parameters().expect("workload is model-valid");

    let runner = TrialRunner::new(args.base_seed, args.trials);
    let fused_clock = Instant::now();
    let agg = runner.aggregate("e01_smoke", "uniform", |seed| {
        run_trial_observed(&UniformScheduler::default(), &problem, seed, &args.obs).0
    });
    let fused_ms = fused_clock.elapsed().as_secs_f64() * 1e3;
    let path = agg.write(Path::new(".")).expect("write BENCH artifact");
    let predicted = agg
        .predicted_schedule
        .as_ref()
        .expect("staged trials carry predictions");
    println!(
        "wrote {} ({} trials, success {:.0}%, schedule mean {:.1} / p50 {} / p95 {} / max {}, predicted mean {:.1} / max {})",
        path.display(),
        agg.trials,
        agg.success_rate * 100.0,
        agg.schedule.mean,
        agg.schedule.p50,
        agg.schedule.p95,
        agg.schedule.max,
        predicted.mean,
        predicted.max,
    );
    if let Some(obs) = agg.records.first().and_then(|r| r.obs.as_ref()) {
        println!(
            "obs (trial 0): {} messages, peak round {} ({} msgs), max arc load {}, congestion p95 {}, {} events",
            obs.messages,
            obs.peak_round,
            obs.peak_round_messages,
            obs.max_arc_load,
            obs.congestion_p95,
            obs.events,
        );
    }
    assert!(
        agg.mean_correctness > 0.99,
        "smoke run produced wrong outputs (correctness {})",
        agg.mean_correctness
    );

    if let Some(dump) = &args.dump_outcome {
        dump_outcomes(dump, &runner, &problem, &args.obs);
    }

    // Same trials again through the sharded executor: the schedule-quality
    // numbers must not move (byte-identical outcomes), only wall-clock and
    // the per-shard fields may differ.
    let sharded_clock = Instant::now();
    let sharded = runner.aggregate("e01_smoke_sharded", "uniform", |seed| {
        run_trial_sharded(&UniformScheduler::default(), &problem, seed, SMOKE_SHARDS)
    });
    let sharded_ms = sharded_clock.elapsed().as_secs_f64() * 1e3;
    let sharded_path = sharded
        .write(Path::new("."))
        .expect("write sharded BENCH artifact");
    assert_eq!(
        (agg.schedule.max, agg.late.max, agg.success_rate),
        (sharded.schedule.max, sharded.late.max, sharded.success_rate),
        "sharded execution changed schedule statistics"
    );
    println!(
        "wrote {} ({} shards, sharded wall {:.1} ms vs fused {:.1} ms, ratio {:.2}x)",
        sharded_path.display(),
        SMOKE_SHARDS,
        sharded_ms,
        fused_ms,
        sharded_ms / fused_ms.max(f64::EPSILON),
    );
}
