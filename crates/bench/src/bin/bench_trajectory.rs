//! Benchmark-trajectory point for the CI `bench-trajectory` job: runs the
//! pinned E1 and E7 configurations through the columnar and batched
//! engines, measures throughput (rounds/sec), sweep plan-cache hits, and
//! peak RSS, and appends one point per (configuration, engine) to
//! `BENCH_trajectory.json` (an ever-growing JSON array — the trajectory
//! CI plots across commits).
//!
//! Usage: `bench_trajectory [--out FILE] [--baseline FILE] [--budget-ms N]
//! [--tag LABEL]`
//!
//! Without `--tag`, the provenance tag defaults to the repository's short
//! commit hash (read once via `git rev-parse --short HEAD`), or
//! `untracked` when the binary runs outside a git checkout — so locally
//! appended points are attributable to a commit without extra flags.
//!
//! With `--baseline FILE` the run additionally gates: if any
//! configuration's rounds/sec lands more than 20% below the matching
//! point in the committed baseline, the binary exits nonzero and CI
//! fails. The committed baseline (`ci/bench_baseline.json`) is set well
//! below a warm local run so shared CI runners do not flake; it catches
//! order-of-magnitude regressions, not percent-level noise.

use das_bench::{workloads, SweepPlanner};
use das_core::{
    execute_plan_with, run_loadgen, serve, DasProblem, EngineKind, ExecutorConfig, LoadgenConfig,
    NetConfig, Scheduler, ServeConfig, UniformScheduler,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str =
    "usage: bench_trajectory [--out FILE] [--baseline FILE] [--budget-ms N] [--tag LABEL]";

/// How far below the baseline rounds/sec may land before the gate fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Seeds swept per configuration to exercise the sweep plan cache.
const SWEEP_SEEDS: u64 = 8;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    out: String,
    baseline: Option<String>,
    budget: Duration,
    tag: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_trajectory.json".to_string(),
        baseline: None,
        budget: Duration::from_millis(300),
        tag: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().unwrap_or_else(|| fail("--out needs a value")),
            "--baseline" => {
                args.baseline = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--baseline needs a value")),
                );
            }
            "--budget-ms" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--budget-ms needs a value"));
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail("--budget-ms must be an integer"));
                args.budget = Duration::from_millis(ms.max(1));
            }
            "--tag" => args.tag = Some(it.next().unwrap_or_else(|| fail("--tag needs a value"))),
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }
    if args.tag.is_none() {
        args.tag = Some(git_short_hash());
    }
    args
}

/// The default provenance tag: the short commit hash of the working
/// directory, read once per run, or `untracked` when `git` is missing or
/// the binary runs outside a checkout.
fn git_short_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "untracked".to_string())
}

/// One measured point on the benchmark trajectory. The schema is append-
/// only: new optional fields may be added, existing ones never change
/// meaning, so old trajectory files always stay parseable.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrajectoryPoint {
    /// Pinned configuration label (e.g. `e07_path100_relays64`).
    label: String,
    /// Engine the throughput was measured on.
    engine: String,
    /// Schedule length of the measured plan, in rounds.
    rounds: u64,
    /// Engine throughput: schedule rounds executed per wall-clock second.
    rounds_per_sec: f64,
    /// Sweep plan-cache hits over the [`SWEEP_SEEDS`]-seed planning sweep.
    plan_cache_hits: u64,
    /// Whether the scheduler's sweep artifact actually shares planning.
    sweep_shared: bool,
    /// Peak resident set size of this process (kB, from `VmHWM`; 0 when
    /// `/proc` is unavailable).
    peak_rss_kb: u64,
    /// Free-form provenance tag (`--tag`, e.g. a commit hash in CI).
    #[serde(default)]
    tag: Option<String>,
}

/// Peak resident set size in kB, from `/proc/self/status` `VmHWM`.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The stable engine name recorded in trajectory rows and matched by the
/// baseline gate.
fn engine_name(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Row => "row",
        EngineKind::Columnar => "columnar",
        EngineKind::ColumnarBatched => "batched",
    }
}

/// Measures one pinned configuration: throughput on the selected engine
/// plus the sweep-cache counters for a [`SWEEP_SEEDS`]-seed plan sweep.
fn measure(
    label: &str,
    problem: &DasProblem<'_>,
    budget: Duration,
    tag: &Option<String>,
    engine: EngineKind,
) -> TrajectoryPoint {
    let sched = UniformScheduler::default();
    let planner = SweepPlanner::new(&sched, problem);
    for s in 0..SWEEP_SEEDS {
        let swept = planner.plan(problem, s);
        let scratch = sched.plan(problem, s).expect("model-valid workload");
        assert_eq!(
            scratch.to_json(),
            swept.to_json(),
            "{label}: swept plan must match plan() at seed {s}"
        );
    }
    let plan = planner.plan(problem, 7);
    let cfg = ExecutorConfig::default()
        .with_phase_len(plan.phase_len)
        .with_engine(engine);

    // One calibration run sizes a repetition count that fills the budget,
    // then the batch is timed as a whole.
    let t = Instant::now();
    let out = execute_plan_with(problem, &plan, &cfg).expect("trajectory run");
    let once = t.elapsed().max(Duration::from_nanos(1));
    let sched_rounds = out.schedule_rounds();
    let reps = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(execute_plan_with(problem, &plan, &cfg).expect("trajectory run"));
    }
    let secs = t.elapsed().as_secs_f64() / reps as f64;

    TrajectoryPoint {
        label: label.to_string(),
        engine: engine_name(engine).to_string(),
        rounds: sched_rounds,
        rounds_per_sec: sched_rounds as f64 / secs,
        plan_cache_hits: planner.cache_hits(),
        sweep_shared: planner.shares_planning(),
        peak_rss_kb: peak_rss_kb(),
        tag: tag.clone(),
    }
}

/// Measures the serve path: an in-process daemon on an ephemeral port
/// driven by the deterministic loadgen (2 clients × 12 jobs). `rounds`
/// records jobs completed and `rounds_per_sec` the sustained jobs/sec —
/// the unit differs from the engine points, which is why the pair gets
/// its own (label, engine) row in the baseline.
fn measure_serve(tag: &Option<String>) -> TrajectoryPoint {
    let g = das_graph::generators::grid(4, 4);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind serve bench");
    let addr = listener.local_addr().expect("addr").to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let cfg = ServeConfig {
        tape_seed: 42,
        net: NetConfig::default().with_stop(stop.clone()),
        ..ServeConfig::default()
    };
    let lg = LoadgenConfig {
        clients: 2,
        jobs_per_client: 12,
        depth: 4,
        seed: 42,
        ..LoadgenConfig::default()
    };
    let report = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            serve(&g, &UniformScheduler::default(), listener, &cfg).expect("serve bench daemon")
        });
        let report = run_loadgen(&g, &addr, &lg).expect("serve bench loadgen");
        stop.store(true, Ordering::SeqCst);
        let daemon_report = daemon.join().expect("daemon thread");
        assert_eq!(
            daemon_report.completed, 24,
            "every benchmark job must verify clean"
        );
        report
    });
    TrajectoryPoint {
        label: "e01_serve".to_string(),
        engine: "serve".to_string(),
        rounds: report.completed,
        rounds_per_sec: report.jobs_per_sec,
        plan_cache_hits: 0,
        sweep_shared: true,
        peak_rss_kb: peak_rss_kb(),
        tag: tag.clone(),
    }
}

/// Appends `points` to the JSON array in `path` (creating it if absent).
fn append_points(path: &str, points: &[TrajectoryPoint]) {
    let mut all: Vec<TrajectoryPoint> = match std::fs::read_to_string(path) {
        Ok(body) => serde_json::from_str(&body)
            .unwrap_or_else(|e| fail(&format!("{path} is not a trajectory file: {e}"))),
        Err(_) => Vec::new(),
    };
    all.extend(points.iter().cloned());
    let body = serde_json::to_string_pretty(&all).expect("points are JSON-representable");
    std::fs::write(path, body).expect("write trajectory file");
    println!(
        "appended {} point(s) to {path} ({} total)",
        points.len(),
        all.len()
    );
}

/// The `--baseline` gate: every measured (label, engine) pair must stay
/// within [`REGRESSION_TOLERANCE`] of the last matching baseline point.
///
/// A measured pair with *no* baseline point is a failure, not a skip: a
/// new engine or configuration must be added to the baseline explicitly,
/// or it would dodge the regression gate forever. To update the baseline,
/// run `bench_trajectory --out fresh.json` locally and copy the new
/// point(s) into `ci/bench_baseline.json` (the workflow is documented in
/// EXPERIMENTS.md).
fn gate(baseline_path: &str, points: &[TrajectoryPoint]) -> bool {
    let body = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| fail(&format!("cannot read baseline {baseline_path}: {e}")));
    let baseline: Vec<TrajectoryPoint> = serde_json::from_str(&body)
        .unwrap_or_else(|e| fail(&format!("{baseline_path} is not a trajectory file: {e}")));
    let mut ok = true;
    for p in points {
        let Some(base) = baseline
            .iter()
            .rev()
            .find(|b| b.label == p.label && b.engine == p.engine)
        else {
            eprintln!(
                "gate FAILED: {} ({}, tag {}) has no baseline point in {baseline_path} — \
                 new configurations must be gated, not skipped; run bench_trajectory \
                 locally and add the fresh point to the baseline",
                p.label,
                p.engine,
                p.tag.as_deref().unwrap_or("untagged")
            );
            ok = false;
            continue;
        };
        let floor = base.rounds_per_sec * (1.0 - REGRESSION_TOLERANCE);
        if p.rounds_per_sec < floor {
            eprintln!(
                "gate FAILED: {} ({}, tag {}) at {:.0} rounds/s, below {:.0} \
                 (baseline {:.0} - {:.0}%)",
                p.label,
                p.engine,
                p.tag.as_deref().unwrap_or("untagged"),
                p.rounds_per_sec,
                floor,
                base.rounds_per_sec,
                REGRESSION_TOLERANCE * 100.0
            );
            ok = false;
        } else {
            println!(
                "gate ok: {} ({}) at {:.0} rounds/s (floor {:.0}, baseline {:.0})",
                p.label, p.engine, p.rounds_per_sec, floor, base.rounds_per_sec
            );
        }
    }
    ok
}

fn main() {
    let args = parse_args();

    // Pinned configurations — E1's smoke instance and the E7 shoot-out
    // midpoint. Changing either invalidates the whole trajectory, so they
    // are frozen here rather than taken from the command line.
    let g1 = das_graph::generators::path(120);
    let g7 = das_graph::generators::path(100);
    let e01 = workloads::segment_relays(&g1, 40, 16, 2, 7);
    let e07 = workloads::segment_relays(&g7, 64, 14, 1, 5);
    let points = vec![
        measure(
            "e01_path120_relays40",
            &e01,
            args.budget,
            &args.tag,
            EngineKind::Columnar,
        ),
        measure(
            "e01_path120_relays40",
            &e01,
            args.budget,
            &args.tag,
            EngineKind::ColumnarBatched,
        ),
        measure(
            "e07_path100_relays64",
            &e07,
            args.budget,
            &args.tag,
            EngineKind::Columnar,
        ),
        measure(
            "e07_path100_relays64",
            &e07,
            args.budget,
            &args.tag,
            EngineKind::ColumnarBatched,
        ),
        measure_serve(&args.tag),
    ];

    for p in &points {
        println!(
            "{} ({}): {:.0} rounds/s over {} rounds, {} plan-cache hits (shared={}), peak RSS {} kB",
            p.label,
            p.engine,
            p.rounds_per_sec,
            p.rounds,
            p.plan_cache_hits,
            p.sweep_shared,
            p.peak_rss_kb
        );
    }
    append_points(&args.out, &points);

    if let Some(baseline) = &args.baseline {
        if !gate(baseline, &points) {
            std::process::exit(1);
        }
    }
}
