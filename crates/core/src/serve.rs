//! The long-lived scheduling service: `dasched serve`.
//!
//! A serve daemon turns the one-shot plan → execute → verify pipeline into
//! an online admission problem — the paper's framing of DAS as co-running
//! many independent jobs against shared congestion and dilation budgets,
//! kept running indefinitely:
//!
//! * **Clients** connect over the same length-prefixed framed-TCP layer
//!   the networked executor uses ([`crate::net`]), handshake with
//!   HELLO/CAPS (protocol version + graph fingerprint; the server
//!   advertises its capacity), and SUBMIT jobs carrying *declared*
//!   dilation / congestion / payload budgets.
//! * **Admission** is capability-based and content-free: a job is admitted
//!   or rejected by comparing its declared budgets against the advertised
//!   [`Capacity`] — arithmetic on announced numbers only, the same class
//!   of computation as [`crate::plan::analysis::predict`]'s precheck (no
//!   payload is inspected, no execution happens). Over-budget jobs get a
//!   typed REJECTED naming the violated budget.
//! * **Batching**: admitted jobs queue until [`ServeConfig::batch_max`]
//!   are waiting or [`ServeConfig::batch_wait_ms`] has passed; a batch of
//!   `k` jobs becomes one [`DasProblem`] (the job id is the algorithm id,
//!   so each job's random tape — and therefore its outputs — is
//!   independent of which other jobs share its batch). The batch is
//!   planned through the scheduler's sweep-artifact cache and executed on
//!   the bounded in-process sharded pool.
//! * **Trust, then verify**: declared budgets are *not* trusted beyond
//!   admission. After execution the server measures each job's real
//!   dilation and congestion from its reference run and cross-checks the
//!   declaration; a lying job comes back with
//!   [`JobStatus::BudgetMismatch`] even if its outputs verified clean.
//!   Outputs themselves are checked against the alone-run references
//!   ([`crate::verify::against_references`]) — the paper's correctness
//!   criterion — so a RESULT with [`JobStatus::Ok`] carries outputs
//!   byte-identical to a one-shot run of the same job set.
//!
//! [`run_loadgen`] is the deterministic counterpart: N client threads
//! submit seeded job streams, optionally re-deriving every output locally
//! to assert the byte-identity end-to-end, and report sustained jobs/sec
//! with p50/p95/p99 latency.

use crate::exec::{EngineKind, ExecError, ExecutorConfig};
use crate::net::{
    connect_with_retry, decode_reject, graph_fingerprint, wire, ByteReader, ByteWriter, FramedConn,
    NetConfig, PROTOCOL_VERSION,
};
use crate::plan::{execute_plan_sharded_with, SchedError};
use crate::problem::DasProblem;
use crate::reference::run_alone;
use crate::schedulers::Scheduler;
use crate::synthetic::{FloodBall, RelayChain};
use crate::verify;
use das_graph::{Graph, NodeId};
use das_obs::JobsLive;
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked serve-side waits re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(100);

/// Per-pool capacity the server advertises in its CAPS frame and admits
/// against. Budgets are *declared* quantities — admission never inspects
/// job content, so these caps bound what the pool has agreed to carry,
/// not what a client managed to sneak in (lies are caught post-execution
/// by the measured-budget cross-check).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capacity {
    /// Largest declared dilation (algorithm rounds) admitted.
    pub max_dilation: u32,
    /// Largest declared per-edge congestion admitted.
    pub max_congestion: u64,
    /// Largest declared message payload, in bytes, admitted.
    pub max_payload_bytes: u32,
}

impl Default for Capacity {
    fn default() -> Self {
        Capacity {
            max_dilation: 256,
            max_congestion: 4096,
            max_payload_bytes: 40,
        }
    }
}

/// The job families a serve daemon accepts. Jobs are *specifications* —
/// the server instantiates the black-box algorithm itself, so a SUBMIT
/// frame carries parameters, never code or payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// [`FloodBall`] from `source` to the given `depth`.
    Flood,
    /// [`RelayChain`] along the job-seeded route (`source`/`depth`
    /// ignored).
    Relay,
}

impl JobKind {
    fn to_wire(self) -> u8 {
        match self {
            JobKind::Flood => 0,
            JobKind::Relay => 1,
        }
    }

    fn from_wire(b: u8) -> Option<JobKind> {
        match b {
            0 => Some(JobKind::Flood),
            1 => Some(JobKind::Relay),
            _ => None,
        }
    }
}

/// A job's declared budgets, as carried in its SUBMIT frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Declared dilation: the algorithm's round count.
    pub dilation: u32,
    /// Declared congestion: the job's maximum per-edge message load.
    pub congestion: u64,
    /// Declared maximum message payload, in bytes.
    pub payload_bytes: u32,
}

/// One submitted job: identity, family, parameters, declared budgets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen job id; becomes the algorithm id (`aid`), which makes
    /// the job's random tape — and outputs — batch-independent.
    pub job_id: u64,
    /// The job family.
    pub kind: JobKind,
    /// Source node (floods; ignored for relays).
    pub source: u32,
    /// Flood depth (floods; ignored for relays).
    pub depth: u32,
    /// The declared budgets admission checks against [`Capacity`].
    pub declared: Budgets,
}

/// Why admission refused a job: the violated budget and both numbers, as
/// shipped in the REJECTED frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// A `wire::BUDGET_*` / [`wire::MALFORMED`] code.
    pub code: u32,
    /// The job's declared value for the violated budget.
    pub declared: u64,
    /// The server's capacity for it.
    pub capacity: u64,
}

/// Content-free admission: compares the job's declared budgets against
/// the advertised capacity — nothing else. This is deliberately the same
/// class of computation as [`crate::plan::analysis::predict`]'s
/// feasibility precheck (arithmetic over announced quantities; no
/// payloads, no execution, no engine), so rejection can never depend on
/// job content: two jobs declaring the same budgets are admitted or
/// refused identically.
///
/// # Errors
/// Returns the [`Rejection`] naming the first violated budget.
pub fn admit(spec: &JobSpec, nodes: usize, cap: &Capacity) -> Result<(), Rejection> {
    if spec.kind == JobKind::Flood && spec.source as usize >= nodes {
        return Err(Rejection {
            code: wire::MALFORMED,
            declared: spec.source as u64,
            capacity: nodes as u64,
        });
    }
    if spec.declared.dilation > cap.max_dilation {
        return Err(Rejection {
            code: wire::BUDGET_DILATION,
            declared: spec.declared.dilation as u64,
            capacity: cap.max_dilation as u64,
        });
    }
    if spec.declared.congestion > cap.max_congestion {
        return Err(Rejection {
            code: wire::BUDGET_CONGESTION,
            declared: spec.declared.congestion,
            capacity: cap.max_congestion,
        });
    }
    if spec.declared.payload_bytes > cap.max_payload_bytes {
        return Err(Rejection {
            code: wire::BUDGET_PAYLOAD,
            declared: spec.declared.payload_bytes as u64,
            capacity: cap.max_payload_bytes as u64,
        });
    }
    Ok(())
}

/// How a job's batch execution went, as carried in its RESULT frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Outputs verified byte-identical to the job's alone run, and the
    /// measured budgets fit the declaration.
    Ok,
    /// At least one node's output diverged from the alone run.
    VerifyFailed,
    /// Outputs may be fine, but the job's *measured* dilation or
    /// congestion exceeded what it declared at admission: the declaration
    /// was a lie, caught at verify time rather than trusted.
    BudgetMismatch,
    /// The batch failed to plan or execute; no outputs.
    ExecFailed,
}

impl JobStatus {
    fn to_wire(self) -> u8 {
        match self {
            JobStatus::Ok => 0,
            JobStatus::VerifyFailed => 1,
            JobStatus::BudgetMismatch => 2,
            JobStatus::ExecFailed => 3,
        }
    }

    /// Decodes the wire byte (unknown values read as
    /// [`JobStatus::ExecFailed`]).
    pub fn from_wire(b: u8) -> JobStatus {
        match b {
            0 => JobStatus::Ok,
            1 => JobStatus::VerifyFailed,
            2 => JobStatus::BudgetMismatch,
            _ => JobStatus::ExecFailed,
        }
    }
}

/// Tunables of the serve daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Jobs per batch: arrivals are grouped into [`DasProblem`]s of at
    /// most this size (clamped to ≥ 1).
    pub batch_max: usize,
    /// How long a non-full batch lingers (from its first job's arrival)
    /// before executing anyway, in milliseconds.
    pub batch_wait_ms: u64,
    /// Worker threads of the in-process execution pool.
    pub pool_shards: usize,
    /// Advertised per-pool admission capacity.
    pub capacity: Capacity,
    /// The tape seed every batch runs under; with job-id aids this pins
    /// every job's random tape across batches.
    pub tape_seed: u64,
    /// The scheduler seed every batch is planned with.
    pub sched_seed: u64,
    /// Execution engine for the pool.
    pub engine: EngineKind,
    /// Network tunables; `net.stop` is the daemon's shutdown signal and
    /// `net.live` its optional telemetry hub.
    pub net: NetConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_max: 4,
            batch_wait_ms: 50,
            pool_shards: 2,
            capacity: Capacity::default(),
            tape_seed: 42,
            sched_seed: 0,
            engine: EngineKind::ColumnarBatched,
            net: NetConfig::default(),
        }
    }
}

/// What a serve daemon reports once stopped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Jobs that passed admission.
    pub admitted: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs that executed and verified clean.
    pub completed: u64,
    /// Jobs that executed but failed verify / budget cross-check /
    /// execution.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
}

/// Shared daemon counters (atomics so the reader threads, the executor,
/// and the final report all see one truth).
#[derive(Default)]
struct Counters {
    queued: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
}

impl Counters {
    fn publish(&self, net: &NetConfig) {
        if let Some(hub) = &net.live {
            hub.publish_jobs(JobsLive {
                queued: self.queued.load(Ordering::SeqCst),
                admitted: self.admitted.load(Ordering::SeqCst),
                rejected: self.rejected.load(Ordering::SeqCst),
                completed: self.completed.load(Ordering::SeqCst),
                failed: self.failed.load(Ordering::SeqCst),
                batches: self.batches.load(Ordering::SeqCst),
            });
        }
    }
}

/// One admitted job waiting for a batch: the spec plus the client's write
/// half (ACCEPTED/REJECTED go out on the reader thread, RESULT on the
/// executor thread; the mutex serializes them).
struct PendingJob {
    spec: JobSpec,
    writer: Arc<Mutex<FramedConn>>,
}

struct JobQueue {
    jobs: Mutex<VecDeque<PendingJob>>,
    ready: Condvar,
}

/// Waits (interruptibly) for the next frame: `Ok(None)` means the stop
/// flag was raised, or `deadline` (when given) passed while the line was
/// quiet. With no deadline the wait is unbounded but still stops promptly
/// on the flag — the daemon's idle state.
fn recv_or_stop(
    conn: &mut FramedConn,
    net: &NetConfig,
    deadline: Option<Instant>,
) -> Result<Option<(u8, Vec<u8>)>, ExecError> {
    loop {
        if net.stopped() {
            return Ok(None);
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Ok(None);
            }
        }
        if conn.poll_readable(STOP_POLL)? {
            return conn.recv("serve frame").map(Some);
        }
    }
}

/// Runs the scheduling service on `listener` until the configured stop
/// flag ([`NetConfig::with_stop`]) is raised: accepts any number of
/// clients, admits or rejects their jobs against `cfg.capacity`, executes
/// admitted jobs in batches planned by `scheduler`, and streams each
/// job's RESULT back. Without a stop flag the daemon runs forever.
///
/// Outstanding admitted jobs are drained (executed and answered) before
/// the daemon returns, so a clean shutdown never drops an ACCEPTED job.
///
/// # Errors
/// Returns [`SchedError::Exec`] only for listener-level failures; client
/// and batch failures are per-connection / per-job and never take the
/// daemon down.
pub fn serve(
    g: &Graph,
    scheduler: &dyn Scheduler,
    listener: TcpListener,
    cfg: &ServeConfig,
) -> Result<ServeReport, SchedError> {
    listener.set_nonblocking(true).map_err(|e| {
        SchedError::Exec(ExecError::Net {
            detail: format!("set_nonblocking: {e}"),
        })
    })?;
    let counters = Counters::default();
    let queue = JobQueue {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    };
    let graph_fp = graph_fingerprint(g);
    counters.publish(&cfg.net);
    std::thread::scope(|scope| {
        let executor = scope.spawn(|| executor_loop(g, scheduler, cfg, &queue, &counters));
        while !cfg.net.stopped() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let queue = &queue;
                    let counters = &counters;
                    scope.spawn(move || {
                        // per-client thread: a misbehaving client costs
                        // only its own connection, never the daemon
                        let _ = serve_client(g, graph_fp, stream, cfg, queue, counters);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // wake the executor so it drains the queue and exits
        queue.ready.notify_all();
        let _ = executor.join();
    });
    Ok(ServeReport {
        admitted: counters.admitted.load(Ordering::SeqCst),
        rejected: counters.rejected.load(Ordering::SeqCst),
        completed: counters.completed.load(Ordering::SeqCst),
        failed: counters.failed.load(Ordering::SeqCst),
        batches: counters.batches.load(Ordering::SeqCst),
    })
}

/// One client connection: HELLO/CAPS handshake, then SUBMITs until the
/// client hangs up or the daemon stops. A disconnect mid-SUBMIT (clean or
/// truncated) closes the connection without touching any counter — the
/// clipped job was never admitted.
fn serve_client(
    g: &Graph,
    graph_fp: u64,
    stream: TcpStream,
    cfg: &ServeConfig,
    queue: &JobQueue,
    counters: &Counters,
) -> Result<(), ExecError> {
    let mut reader = FramedConn::new(
        stream.try_clone().map_err(|e| ExecError::Net {
            detail: format!("clone client stream: {e}"),
        })?,
        &cfg.net,
    )?;
    let writer = Arc::new(Mutex::new(FramedConn::new(stream, &cfg.net)?));

    // HELLO → CAPS (or REJECT): same shape as the worker handshake, but
    // against the graph fingerprint only — jobs arrive later.
    let hello_deadline = Instant::now() + Duration::from_millis(cfg.net.io_timeout_ms.max(1));
    let Some((kind, body)) = recv_or_stop(&mut reader, &cfg.net, Some(hello_deadline))? else {
        return Ok(());
    };
    if kind != wire::HELLO {
        return Err(ExecError::Net {
            detail: format!("expected HELLO, got frame kind {kind}"),
        });
    }
    let mut r = ByteReader::new(&body);
    let version = r.u32("HELLO version")?;
    let client_fp = r.u64("HELLO graph fingerprint")?;
    if version != PROTOCOL_VERSION {
        let mut w = ByteWriter::new();
        w.u32(wire::REJECT_VERSION);
        w.u64(PROTOCOL_VERSION as u64);
        w.u64(version as u64);
        let _ = lock_writer(&writer).send(wire::REJECT, &w.buf, "serve handshake (REJECT)");
        return Err(ExecError::VersionMismatch {
            coordinator: PROTOCOL_VERSION,
            worker: version,
        });
    }
    if client_fp != graph_fp {
        let mut w = ByteWriter::new();
        w.u32(wire::REJECT_PROBLEM);
        w.u64(graph_fp);
        w.u64(client_fp);
        let _ = lock_writer(&writer).send(wire::REJECT, &w.buf, "serve handshake (REJECT)");
        return Err(ExecError::ProblemMismatch {
            coordinator: graph_fp,
            worker: client_fp,
        });
    }
    let mut w = ByteWriter::new();
    w.u32(PROTOCOL_VERSION);
    w.u64(graph_fp);
    w.u64(cfg.tape_seed);
    w.u32(cfg.batch_max.max(1) as u32);
    w.u32(cfg.pool_shards.max(1) as u32);
    w.u32(cfg.capacity.max_dilation);
    w.u64(cfg.capacity.max_congestion);
    w.u32(cfg.capacity.max_payload_bytes);
    lock_writer(&writer).send(wire::CAPS, &w.buf, "serve handshake (CAPS)")?;

    let n = g.node_count();
    loop {
        let Some((kind, body)) = recv_or_stop(&mut reader, &cfg.net, None)? else {
            return Ok(()); // daemon stopping
        };
        if kind != wire::SUBMIT {
            return Err(ExecError::Net {
                detail: format!("expected SUBMIT, got frame kind {kind}"),
            });
        }
        let mut r = ByteReader::new(&body);
        let job_id = r.u64("SUBMIT job id")?;
        let kind_byte = r.u8("SUBMIT kind")?;
        let source = r.u32("SUBMIT source")?;
        let depth = r.u32("SUBMIT depth")?;
        let declared = Budgets {
            dilation: r.u32("SUBMIT dilation")?,
            congestion: r.u64("SUBMIT congestion")?,
            payload_bytes: r.u32("SUBMIT payload")?,
        };
        let Some(job_kind) = JobKind::from_wire(kind_byte) else {
            send_rejected(
                &writer,
                job_id,
                &Rejection {
                    code: wire::MALFORMED,
                    declared: kind_byte as u64,
                    capacity: 1,
                },
            );
            counters.rejected.fetch_add(1, Ordering::SeqCst);
            counters.publish(&cfg.net);
            continue;
        };
        let spec = JobSpec {
            job_id,
            kind: job_kind,
            source,
            depth,
            declared,
        };
        match admit(&spec, n, &cfg.capacity) {
            Err(rejection) => {
                send_rejected(&writer, job_id, &rejection);
                counters.rejected.fetch_add(1, Ordering::SeqCst);
            }
            Ok(()) => {
                let queued = {
                    let mut q = queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
                    q.push_back(PendingJob {
                        spec,
                        writer: Arc::clone(&writer),
                    });
                    q.len() as u64
                };
                queue.ready.notify_all();
                counters.admitted.fetch_add(1, Ordering::SeqCst);
                counters.queued.store(queued, Ordering::SeqCst);
                let mut w = ByteWriter::new();
                w.u64(job_id);
                w.u64(queued);
                let _ = lock_writer(&writer).send(wire::ACCEPTED, &w.buf, "serve (ACCEPTED)");
            }
        }
        counters.publish(&cfg.net);
    }
}

fn lock_writer(writer: &Arc<Mutex<FramedConn>>) -> std::sync::MutexGuard<'_, FramedConn> {
    writer.lock().unwrap_or_else(|e| e.into_inner())
}

fn send_rejected(writer: &Arc<Mutex<FramedConn>>, job_id: u64, rejection: &Rejection) {
    let mut w = ByteWriter::new();
    w.u64(job_id);
    w.u32(rejection.code);
    w.u64(rejection.declared);
    w.u64(rejection.capacity);
    let _ = lock_writer(writer).send(wire::REJECTED, &w.buf, "serve (REJECTED)");
}

/// The batch executor: forms batches from the admitted queue, runs each
/// through plan → execute → verify, and answers every job. Keeps running
/// until the stop flag is raised *and* the queue is drained, so ACCEPTED
/// jobs are never dropped on shutdown.
fn executor_loop(
    g: &Graph,
    scheduler: &dyn Scheduler,
    cfg: &ServeConfig,
    queue: &JobQueue,
    counters: &Counters,
) {
    let batch_max = cfg.batch_max.max(1);
    let linger = Duration::from_millis(cfg.batch_wait_ms);
    loop {
        let batch: Vec<PendingJob> = {
            let mut q = queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
            // wait for the first job (or for shutdown)
            while q.is_empty() {
                if cfg.net.stopped() {
                    return;
                }
                let (guard, _) = queue
                    .ready
                    .wait_timeout(q, STOP_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            // linger for stragglers until the batch fills, the wait
            // expires, or the daemon stops
            let first_seen = Instant::now();
            while q.len() < batch_max && first_seen.elapsed() < linger && !cfg.net.stopped() {
                let (guard, _) = queue
                    .ready
                    .wait_timeout(q, linger.min(STOP_POLL))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let take = q.len().min(batch_max);
            let batch = q.drain(..take).collect();
            counters.queued.store(q.len() as u64, Ordering::SeqCst);
            batch
        };
        execute_batch(g, scheduler, cfg, batch, counters);
        counters.batches.fetch_add(1, Ordering::SeqCst);
        counters.publish(&cfg.net);
    }
}

/// Instantiates a job's black-box algorithm. The job id is the algorithm
/// id, which pins the job's random tape (`seed_mix(tape_seed, job_id)`)
/// independently of batch composition — the lever that makes served
/// outputs byte-identical to a one-shot run of the same jobs.
pub fn instantiate(spec: &JobSpec, g: &Graph) -> Box<dyn crate::BlackBoxAlgorithm> {
    match spec.kind {
        JobKind::Flood => Box::new(FloodBall::new(
            spec.job_id,
            g,
            NodeId(spec.source),
            spec.depth,
        )),
        JobKind::Relay => Box::new(RelayChain::new(spec.job_id, g)),
    }
}

/// One batch: build the [`DasProblem`], plan through the sweep-artifact
/// cache, execute on the sharded pool, verify against references,
/// cross-check measured budgets, and answer every job.
fn execute_batch(
    g: &Graph,
    scheduler: &dyn Scheduler,
    cfg: &ServeConfig,
    batch: Vec<PendingJob>,
    counters: &Counters,
) {
    if batch.is_empty() {
        return;
    }
    let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> =
        batch.iter().map(|j| instantiate(&j.spec, g)).collect();
    let problem = DasProblem::new(g, algos, cfg.tape_seed);
    let k = batch.len();

    let run = problem
        .references()
        .map_err(SchedError::from)
        .and_then(|_| {
            let artifact = scheduler.build_sweep_artifact(&problem)?;
            let plan = scheduler.plan_swept(&problem, &artifact, cfg.sched_seed)?;
            let exec_cfg = ExecutorConfig::default()
                .with_shards(cfg.pool_shards.max(1))
                .with_engine(cfg.engine);
            let (outcome, _report) = execute_plan_sharded_with(&problem, &plan, &exec_cfg)?;
            let report = verify::against_references(&problem, &outcome)?;
            Ok((outcome, report))
        });

    match run {
        Err(_) => {
            // the whole batch failed to plan or execute: typed ExecFailed
            // per job, and the daemon keeps serving
            for job in &batch {
                let mut w = ByteWriter::new();
                w.u64(job.spec.job_id);
                w.u8(JobStatus::ExecFailed.to_wire());
                w.u64(0);
                w.u32(k as u32);
                w.u64(0);
                w.u64(0);
                w.u32(0);
                w.u64(0);
                w.u32(0);
                let _ = lock_writer(&job.writer).send(wire::RESULT, &w.buf, "serve (RESULT)");
                counters.failed.fetch_add(1, Ordering::SeqCst);
            }
        }
        Ok((outcome, report)) => {
            let refs = problem.references().expect("references already built");
            for (i, job) in batch.iter().enumerate() {
                // measured budgets from the job's own reference run: the
                // declaration was only trusted for admission
                let measured_dilation = problem.algorithms()[i].rounds();
                let measured_congestion =
                    refs[i].pattern.edge_loads().into_iter().max().unwrap_or(0);
                let lied = measured_dilation > job.spec.declared.dilation
                    || measured_congestion > job.spec.declared.congestion;
                let status = if lied {
                    JobStatus::BudgetMismatch
                } else if report.mismatches[i] > 0 {
                    JobStatus::VerifyFailed
                } else {
                    JobStatus::Ok
                };
                let mut w = ByteWriter::new();
                w.u64(job.spec.job_id);
                w.u8(status.to_wire());
                w.u64(outcome.stats.engine_rounds);
                w.u32(k as u32);
                w.u64(outcome.stats.delivered);
                w.u64(outcome.stats.late_messages);
                w.u32(measured_dilation);
                w.u64(measured_congestion);
                let outputs = &outcome.outputs[i];
                w.u32(outputs.len() as u32);
                for out in outputs {
                    match out {
                        Some(bytes) => {
                            w.u8(1);
                            w.bytes(bytes);
                        }
                        None => w.u8(0),
                    }
                }
                let _ = lock_writer(&job.writer).send(wire::RESULT, &w.buf, "serve (RESULT)");
                if status == JobStatus::Ok {
                    counters.completed.fetch_add(1, Ordering::SeqCst);
                } else {
                    counters.failed.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- loadgen

/// Tunables of the deterministic load generator.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs each client submits.
    pub jobs_per_client: usize,
    /// Flood depth of every generated job.
    pub depth: u32,
    /// Stream seed: sources are drawn as
    /// `(job_id · 2654435761 + seed) mod n` — the same formula as the CLI
    /// `floods:K:DEPTH` workload, so a one-client stream is the same job
    /// set as a one-shot run with the same seed.
    pub seed: u64,
    /// Re-derive every RESULT's outputs locally (alone run with the
    /// server's advertised tape seed) and count byte mismatches.
    pub check: bool,
    /// When nonzero, every Nth job declares an over-capacity dilation to
    /// exercise the typed rejection path.
    pub reject_every: usize,
    /// Network tunables for the client connections.
    pub net: NetConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 2,
            jobs_per_client: 8,
            depth: 4,
            seed: 42,
            check: false,
            reject_every: 0,
            net: NetConfig::default(),
        }
    }
}

/// What one load-generator run measured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadgenReport {
    /// Jobs submitted across all clients.
    pub submitted: u64,
    /// Jobs that came back [`JobStatus::Ok`].
    pub completed: u64,
    /// Jobs refused at admission (REJECTED frames).
    pub rejected: u64,
    /// Jobs that came back with any non-Ok status, plus client-side
    /// protocol failures.
    pub failed: u64,
    /// Output byte mismatches found by `check` (0 when `check` is off).
    pub check_mismatches: u64,
    /// Wall-clock of the whole run, in milliseconds.
    pub wall_ms: u64,
    /// Sustained throughput: terminal answers per second.
    pub jobs_per_sec: f64,
    /// Median submit→answer latency, in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, in milliseconds.
    pub p99_ms: f64,
    /// Per-job outputs of every [`JobStatus::Ok`] RESULT, as
    /// `(job_id, per-node outputs)`, sorted by job id — for byte-identity
    /// diffs against a one-shot run.
    pub outputs: Vec<(u64, Vec<Option<Vec<u8>>>)>,
}

/// The generated job stream: one entry per `(client, j)` pair. Public so
/// the CLI and tests can reproduce the exact stream a loadgen run
/// submitted.
pub fn loadgen_job(g: &Graph, cfg: &LoadgenConfig, client: usize, j: usize) -> JobSpec {
    let n = g.node_count() as u64;
    let job_id = (client * cfg.jobs_per_client + j) as u64;
    let source = ((job_id.wrapping_mul(2654435761).wrapping_add(cfg.seed)) % n.max(1)) as u32;
    JobSpec {
        job_id,
        kind: JobKind::Flood,
        source,
        depth: cfg.depth,
        declared: Budgets::default(), // filled by the caller
    }
}

/// Measures a job's honest budgets from its alone run.
fn honest_budgets(g: &Graph, spec: &JobSpec, tape_seed: u64) -> Result<Budgets, ExecError> {
    let algo = instantiate(spec, g);
    let run = run_alone(
        g,
        algo.as_ref(),
        das_congest::util::seed_mix(tape_seed, spec.job_id),
    )
    .map_err(|e| ExecError::Net {
        detail: format!("loadgen reference run: {e}"),
    })?;
    Ok(Budgets {
        dilation: algo.rounds(),
        congestion: run.pattern.edge_loads().into_iter().max().unwrap_or(0),
        // both synthetic families carry one u64 per message
        payload_bytes: 8,
    })
}

/// Drives `cfg.clients` concurrent deterministic job streams against a
/// serve daemon at `connect` and measures sustained jobs/sec plus
/// latency quantiles. With `cfg.check`, every Ok RESULT's outputs are
/// re-derived locally (alone run under the server's advertised tape
/// seed) and compared byte-for-byte.
///
/// # Errors
/// Returns [`ExecError`] if any client fails to connect or handshake;
/// per-job failures are counted in the report instead.
pub fn run_loadgen(
    g: &Graph,
    connect: &str,
    cfg: &LoadgenConfig,
) -> Result<LoadgenReport, ExecError> {
    let clients = cfg.clients.max(1);
    let started = Instant::now();
    let results: Vec<Result<ClientOutcome, ExecError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || run_client(g, connect, cfg, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(ExecError::Net {
                        detail: "loadgen client thread panicked".to_string(),
                    })
                })
            })
            .collect()
    });
    let wall = started.elapsed();
    let mut report = LoadgenReport::default();
    let mut latencies: Vec<f64> = Vec::new();
    for r in results {
        let c = r?;
        report.submitted += c.submitted;
        report.completed += c.completed;
        report.rejected += c.rejected;
        report.failed += c.failed;
        report.check_mismatches += c.check_mismatches;
        latencies.extend(c.latencies_ms);
        report.outputs.extend(c.outputs);
    }
    report.outputs.sort_by_key(|(id, _)| *id);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    report.p50_ms = quantile(0.50);
    report.p95_ms = quantile(0.95);
    report.p99_ms = quantile(0.99);
    report.wall_ms = wall.as_millis() as u64;
    let answered = report.completed + report.rejected + report.failed;
    report.jobs_per_sec = if wall.as_secs_f64() > 0.0 {
        answered as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    Ok(report)
}

struct ClientOutcome {
    submitted: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    check_mismatches: u64,
    latencies_ms: Vec<f64>,
    outputs: Vec<(u64, Vec<Option<Vec<u8>>>)>,
}

fn run_client(
    g: &Graph,
    connect: &str,
    cfg: &LoadgenConfig,
    client: usize,
) -> Result<ClientOutcome, ExecError> {
    let stream = connect_with_retry(connect, &cfg.net)?;
    let mut conn = FramedConn::new(stream, &cfg.net)?;
    let graph_fp = graph_fingerprint(g);

    // HELLO → CAPS
    let mut w = ByteWriter::new();
    w.u32(PROTOCOL_VERSION);
    w.u64(graph_fp);
    conn.send(wire::HELLO, &w.buf, "loadgen handshake (HELLO)")?;
    let (kind, body) = conn.recv("loadgen handshake (CAPS)")?;
    if kind == wire::REJECT {
        return Err(decode_reject(&body)?);
    }
    if kind != wire::CAPS {
        return Err(ExecError::Net {
            detail: format!("expected CAPS, got frame kind {kind}"),
        });
    }
    let mut r = ByteReader::new(&body);
    let _version = r.u32("CAPS version")?;
    let _fp = r.u64("CAPS graph fingerprint")?;
    let tape_seed = r.u64("CAPS tape seed")?;
    let _batch_max = r.u32("CAPS batch max")?;
    let _pool = r.u32("CAPS pool shards")?;
    let cap = Capacity {
        max_dilation: r.u32("CAPS max dilation")?,
        max_congestion: r.u64("CAPS max congestion")?,
        max_payload_bytes: r.u32("CAPS max payload")?,
    };

    // submit the whole stream pipelined, then collect answers
    let mut pending: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
    let mut expect_reject: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut out = ClientOutcome {
        submitted: 0,
        completed: 0,
        rejected: 0,
        failed: 0,
        check_mismatches: 0,
        latencies_ms: Vec::new(),
        outputs: Vec::new(),
    };
    for j in 0..cfg.jobs_per_client {
        let mut spec = loadgen_job(g, cfg, client, j);
        spec.declared = honest_budgets(g, &spec, tape_seed)?;
        if cfg.reject_every > 0 && (j + 1) % cfg.reject_every == 0 {
            // deliberately over-declare to exercise the typed rejection
            spec.declared.dilation = cap.max_dilation.saturating_add(1);
            expect_reject.insert(spec.job_id);
        }
        let mut w = ByteWriter::new();
        w.u64(spec.job_id);
        w.u8(spec.kind.to_wire());
        w.u32(spec.source);
        w.u32(spec.depth);
        w.u32(spec.declared.dilation);
        w.u64(spec.declared.congestion);
        w.u32(spec.declared.payload_bytes);
        conn.send(wire::SUBMIT, &w.buf, "loadgen (SUBMIT)")?;
        pending.insert(spec.job_id, Instant::now());
        out.submitted += 1;
    }

    // read until every job has a terminal answer (deadline-bounded by the
    // connection's io timeout per frame)
    while !pending.is_empty() {
        let (kind, body) = conn.recv("loadgen (answers)")?;
        let mut r = ByteReader::new(&body);
        match kind {
            wire::ACCEPTED => {
                let _job_id = r.u64("ACCEPTED job id")?;
                let _queued = r.u64("ACCEPTED queue depth")?;
            }
            wire::REJECTED => {
                let job_id = r.u64("REJECTED job id")?;
                let _code = r.u32("REJECTED code")?;
                if let Some(t) = pending.remove(&job_id) {
                    out.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                if expect_reject.contains(&job_id) {
                    out.rejected += 1;
                } else {
                    out.failed += 1;
                }
            }
            wire::RESULT => {
                let job_id = r.u64("RESULT job id")?;
                let status = JobStatus::from_wire(r.u8("RESULT status")?);
                let _rounds = r.u64("RESULT schedule rounds")?;
                let _batch_k = r.u32("RESULT batch k")?;
                let _delivered = r.u64("RESULT delivered")?;
                let _late = r.u64("RESULT late")?;
                let _md = r.u32("RESULT measured dilation")?;
                let _mc = r.u64("RESULT measured congestion")?;
                let count = r.u32("RESULT output count")? as usize;
                let mut outputs: Vec<Option<Vec<u8>>> = Vec::with_capacity(count);
                for _ in 0..count {
                    let some = r.u8("RESULT output tag")? != 0;
                    outputs.push(if some {
                        Some(r.bytes("RESULT output")?.to_vec())
                    } else {
                        None
                    });
                }
                if let Some(t) = pending.remove(&job_id) {
                    out.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                if status == JobStatus::Ok {
                    out.completed += 1;
                    if cfg.check {
                        out.check_mismatches +=
                            check_outputs(g, cfg, client, job_id, tape_seed, &outputs);
                    }
                    out.outputs.push((job_id, outputs));
                } else {
                    out.failed += 1;
                }
            }
            other => {
                return Err(ExecError::Net {
                    detail: format!("loadgen: unexpected frame kind {other}"),
                })
            }
        }
    }
    Ok(out)
}

/// Re-derives a job's outputs locally and counts byte mismatches against
/// what the server returned — the client-side half of the byte-identity
/// guarantee.
fn check_outputs(
    g: &Graph,
    cfg: &LoadgenConfig,
    client: usize,
    job_id: u64,
    tape_seed: u64,
    got: &[Option<Vec<u8>>],
) -> u64 {
    let j = (job_id as usize).wrapping_sub(client * cfg.jobs_per_client);
    let spec = loadgen_job(g, cfg, client, j);
    debug_assert_eq!(spec.job_id, job_id);
    let algo = instantiate(&spec, g);
    let Ok(reference) = run_alone(
        g,
        algo.as_ref(),
        das_congest::util::seed_mix(tape_seed, job_id),
    ) else {
        return got.len() as u64;
    };
    if reference.outputs.len() != got.len() {
        return got.len() as u64;
    }
    reference
        .outputs
        .iter()
        .zip(got)
        .filter(|(a, b)| a != b)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(dilation: u32, congestion: u64, payload: u32) -> JobSpec {
        JobSpec {
            job_id: 7,
            kind: JobKind::Flood,
            source: 3,
            depth: 2,
            declared: Budgets {
                dilation,
                congestion,
                payload_bytes: payload,
            },
        }
    }

    #[test]
    fn admission_is_a_pure_budget_comparison() {
        let cap = Capacity {
            max_dilation: 10,
            max_congestion: 20,
            max_payload_bytes: 40,
        };
        assert_eq!(admit(&spec(10, 20, 40), 8, &cap), Ok(()));
        assert_eq!(
            admit(&spec(11, 20, 40), 8, &cap).unwrap_err().code,
            wire::BUDGET_DILATION
        );
        assert_eq!(
            admit(&spec(10, 21, 40), 8, &cap).unwrap_err().code,
            wire::BUDGET_CONGESTION
        );
        assert_eq!(
            admit(&spec(10, 20, 41), 8, &cap).unwrap_err().code,
            wire::BUDGET_PAYLOAD
        );
        // out-of-range source is malformed, not a budget violation
        let mut bad = spec(1, 1, 1);
        bad.source = 99;
        assert_eq!(admit(&bad, 8, &cap).unwrap_err().code, wire::MALFORMED);
        // relays ignore the source field entirely
        bad.kind = JobKind::Relay;
        assert_eq!(admit(&bad, 8, &cap), Ok(()));
    }

    #[test]
    fn job_kind_and_status_round_trip_the_wire() {
        for kind in [JobKind::Flood, JobKind::Relay] {
            assert_eq!(JobKind::from_wire(kind.to_wire()), Some(kind));
        }
        assert_eq!(JobKind::from_wire(9), None);
        for status in [
            JobStatus::Ok,
            JobStatus::VerifyFailed,
            JobStatus::BudgetMismatch,
            JobStatus::ExecFailed,
        ] {
            assert_eq!(JobStatus::from_wire(status.to_wire()), status);
        }
    }

    #[test]
    fn loadgen_stream_matches_the_cli_flood_workload_formula() {
        let g = das_graph::generators::path(16);
        let cfg = LoadgenConfig {
            clients: 1,
            jobs_per_client: 4,
            depth: 3,
            seed: 42,
            ..LoadgenConfig::default()
        };
        for i in 0..4 {
            let spec = loadgen_job(&g, &cfg, 0, i);
            assert_eq!(spec.job_id, i as u64);
            let expected = ((i as u64 * 2654435761 + 42) % 16) as u32;
            assert_eq!(spec.source, expected);
            assert_eq!(spec.depth, 3);
        }
    }
}
