//! # das-core
//!
//! The paper's primary contribution: schedulers that run many independent
//! black-box distributed algorithms together in the CONGEST model, in
//! near-optimal time.
//!
//! ## The problem (Distributed Algorithm Scheduling, DAS)
//!
//! Given algorithms `A_1 … A_k` with
//! `dilation = max_i rounds(A_i)` and
//! `congestion = max_e Σ_i (messages of A_i over e)`, produce an execution
//! in which every node outputs, for every algorithm, exactly what it would
//! output if that algorithm ran alone. Trivially `max(congestion,
//! dilation)` rounds are necessary.
//!
//! ## The schedulers
//!
//! | Scheduler | Model | Length | Paper |
//! |---|---|---|---|
//! | [`SequentialScheduler`] | — | `Σ_i rounds(A_i)` | baseline |
//! | [`InterleaveScheduler`] | — | `k · dilation` | baseline |
//! | [`UniformScheduler`] | shared randomness | `O(congestion + dilation·log n)` | Thm 1.1 |
//! | [`TunedUniformScheduler`] | shared randomness | `O((congestion + dilation)·log n / log log n)` | §3 remark |
//! | [`PrivateScheduler`] | **private randomness only** | `O(congestion + dilation·log n)` after `O(dilation·log² n)` pre-computation | Thm 1.3 / 4.1 |
//!
//! Algorithms are *black boxes*: they expose only the paper's interface —
//! "in each round, each node knows what to send next, as a function of its
//! input, its (fixed) random tape, and the messages received so far"
//! ([`AlgoNode::step`]). Schedulers never read payloads; they only add a
//! small header (algorithm id + round) as the paper allows.
//!
//! ## The pipeline: plan → execute → verify
//!
//! Scheduling is staged. [`Scheduler::plan`] maps `(problem, sched_seed)`
//! to a serializable [`SchedulePlan`]; the shared [`execute_plan`] realizes
//! any plan on the engine; [`verify::against_references`] checks the
//! outcome. [`Scheduler::run`] fuses the first two for convenience. The
//! problem's `tape_seed` fixes only the algorithms' random tapes (and so
//! the reference runs), while scheduler randomness comes from the per-plan
//! `sched_seed` — a trial sweep varying only scheduler randomness reuses
//! one cached set of reference runs. [`plan::analysis`] predicts a plan's
//! per-edge traffic without executing it.
//!
//! ```
//! use das_core::{DasProblem, SequentialScheduler, UniformScheduler, Scheduler, verify};
//! use das_core::synthetic::RelayChain;
//! use das_graph::generators;
//!
//! let g = generators::path(16);
//! // 8 relay algorithms all hammering the same path: congestion 8, dilation 15
//! let problem = DasProblem::new(&g, (0..8).map(|i| {
//!     Box::new(RelayChain::new(i, &g)) as Box<dyn das_core::BlackBoxAlgorithm>
//! }).collect(), 42);
//!
//! let outcome = SequentialScheduler::default().run(&problem).unwrap();
//! let report = verify::against_references(&problem, &outcome).unwrap();
//! assert!(report.all_correct());
//! ```

#![warn(missing_docs)]

mod algorithm;
mod exec;
mod problem;
mod reference;
mod schedule;

pub mod bellagio;
pub mod doubling;
pub mod net;
pub mod newman;
pub mod obs;
pub mod plan;
pub mod schedulers;
pub mod serve;
pub mod shard;
pub mod synthetic;
pub mod verify;

pub use algorithm::{
    Aid, AlgoNode, AlgoSend, AlgoSlab, BatchedInboxes, BatchedSends, BlackBoxAlgorithm, BlockStep,
    NodeBatch,
};
pub use doubling::{DoublingConfig, DoublingOutcome, PlanCacheStats};
pub use exec::{
    EngineKind, ExecError, ExecStats, Executor, ExecutorConfig, ShardReport, ShardStats, StepPlan,
    Unit,
};
pub use net::{
    execute_plan_networked, graph_fingerprint, install_ctrl_c, plan_hash, problem_fingerprint,
    run_worker, wire, LinkTraffic, NetConfig, NetReport, WorkerOutcome, PROTOCOL_VERSION,
};
pub use obs::{run_traced, run_traced_live, TracedRun};
pub use plan::cache::{PlanArtifact, SweepArtifact};
pub use plan::{
    execute_plan, execute_plan_observed, execute_plan_observed_with, execute_plan_sharded,
    execute_plan_sharded_observed, execute_plan_sharded_observed_with, execute_plan_sharded_with,
    execute_plan_with, PlanError, SchedError, SchedulePlan,
};
pub use problem::DasProblem;
pub use reference::{run_alone, ReferenceError, ReferenceRun};
pub use schedule::ScheduleOutcome;
pub use schedulers::{
    prime_range_overhead, uniform_length_bound, InterleaveScheduler, PrivateDelayLaw,
    PrivateScheduler, Scheduler, SequentialScheduler, TunedUniformScheduler, UniformScheduler,
};
pub use serve::{
    admit, run_loadgen, serve, Budgets, Capacity, JobKind, JobSpec, JobStatus, LoadgenConfig,
    LoadgenReport, Rejection, ServeConfig, ServeReport,
};
pub use shard::Partition;
