//! Graph sharding for the big-round-synchronous sharded executor.
//!
//! A [`Partition`] assigns every node of the network to one of `S` shards.
//! The sharded executor ([`crate::Executor::run_sharded`]) gives each shard
//! a worker that owns the canonical machines, inboxes, and incoming-arc
//! FIFOs of its nodes; workers run big-rounds in lockstep and exchange
//! cross-shard messages only at big-round boundaries. Because arrival
//! order within an inbox is canonicalized before every machine step, the
//! partition affects only the parallel layout — never the outcome.
//!
//! The partition is a deterministic degree-balanced greedy: nodes are
//! visited in decreasing-degree order (ties by node id) and each goes to
//! the currently lightest shard, where a node's weight is its degree plus
//! one (so isolated nodes still spread). Message work per worker is
//! proportional to the degree it owns, so balancing degree balances the
//! per-big-round load.

use das_graph::{Graph, NodeId};

/// A deterministic assignment of nodes to shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    shards: usize,
    of_node: Vec<u32>,
}

impl Partition {
    /// Degree-balanced greedy partition into at most `shards` shards.
    ///
    /// The shard count is clamped to `1..=n` (an empty graph gets one
    /// empty shard), so every shard of a connected graph owns at least one
    /// node. Same graph and `shards`, same partition — no randomness, no
    /// iteration-order dependence.
    pub fn degree_balanced(g: &Graph, shards: usize) -> Self {
        let n = g.node_count();
        let s = shards.clamp(1, n.max(1));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(NodeId(v as u32))), v));
        let mut load = vec![0u64; s];
        let mut of_node = vec![0u32; n];
        for &v in &order {
            let lightest = (0..s).min_by_key(|&i| (load[i], i)).expect("s >= 1");
            of_node[v] = lightest as u32;
            load[lightest] += g.degree(NodeId(v as u32)) as u64 + 1;
        }
        Partition { shards: s, of_node }
    }

    /// Number of shards (after clamping to the node count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning node `v`.
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.of_node[v.index()] as usize
    }

    /// The full node → shard assignment, indexed by node id.
    pub fn of_node(&self) -> &[u32] {
        &self.of_node
    }

    /// The nodes owned by `shard`, in ascending node order.
    pub fn nodes_of(&self, shard: usize) -> Vec<NodeId> {
        self.of_node
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s as usize == shard)
            .map(|(v, _)| NodeId(v as u32))
            .collect()
    }

    /// Whether `arc`'s endpoints live in different shards (such messages
    /// cross only at big-round boundaries).
    pub fn is_cross_arc(&self, g: &Graph, arc: das_graph::Arc) -> bool {
        let (src, dst) = g.arc_endpoints(arc);
        self.of_node[src.index()] != self.of_node[dst.index()]
    }

    /// Count of arcs whose endpoints live in different shards.
    pub fn cross_arc_count(&self, g: &Graph) -> usize {
        (0..g.arc_count())
            .filter(|&i| self.is_cross_arc(g, das_graph::Arc::from_index(i)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    fn shard_degrees(g: &Graph, p: &Partition) -> Vec<u64> {
        let mut d = vec![0u64; p.shards()];
        for v in g.nodes() {
            d[p.shard_of(v)] += g.degree(v) as u64 + 1;
        }
        d
    }

    #[test]
    fn every_node_is_assigned_and_counts_clamp() {
        let g = generators::path(10);
        let p = Partition::degree_balanced(&g, 3);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.of_node().len(), 10);
        assert!(p.of_node().iter().all(|&s| (s as usize) < 3));
        let total: usize = (0..3).map(|s| p.nodes_of(s).len()).sum();
        assert_eq!(total, 10);
        // more shards than nodes clamp down
        assert_eq!(Partition::degree_balanced(&g, 64).shards(), 10);
        assert_eq!(Partition::degree_balanced(&g, 0).shards(), 1);
    }

    #[test]
    fn partition_is_deterministic() {
        let g = generators::gnp_connected(40, 0.15, 7);
        let a = Partition::degree_balanced(&g, 5);
        let b = Partition::degree_balanced(&g, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_balances_degree_on_a_grid() {
        let g = generators::grid(8, 8);
        let p = Partition::degree_balanced(&g, 4);
        let loads = shard_degrees(&g, &p);
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        // greedy keeps the spread within one node's weight (max degree + 1)
        assert!(
            max - min <= g.max_degree() as u64 + 1,
            "loads {loads:?} spread too far"
        );
    }

    #[test]
    fn star_center_does_not_capture_a_whole_shard_alone_with_leaves() {
        // the hub of a star dominates degree: greedy puts it alone first,
        // then spreads the leaves over the remaining shards
        let g = generators::star(9);
        let p = Partition::degree_balanced(&g, 3);
        let loads = shard_degrees(&g, &p);
        assert_eq!(
            loads.iter().sum::<u64>(),
            2 * g.edge_count() as u64 + g.node_count() as u64
        );
        let hub_shard = p.shard_of(das_graph::NodeId(0));
        // every other shard holds leaves
        for s in 0..3 {
            if s != hub_shard {
                assert!(!p.nodes_of(s).is_empty());
            }
        }
    }

    #[test]
    fn cross_arcs_counted_consistently() {
        let g = generators::path(6);
        let single = Partition::degree_balanced(&g, 1);
        assert_eq!(single.cross_arc_count(&g), 0);
        let p = Partition::degree_balanced(&g, 2);
        let cross = p.cross_arc_count(&g);
        assert!(cross > 0 && cross <= g.arc_count());
        // each cross edge contributes both of its arcs
        assert_eq!(cross % 2, 0);
    }
}
