//! Meta-Theorem A.1: removing shared randomness from *Bellagio*
//! (pseudo-deterministic) distributed algorithms.
//!
//! A randomized distributed algorithm parameterized by a shared seed is
//! **Bellagio** if for every input, every node outputs one *canonical*
//! value in at least 2/3 of the seed choices. For such algorithms the
//! paper's clustering machinery removes the shared-randomness assumption
//! wholesale:
//!
//! 1. carve `Θ(log n)` clustering layers padded for the algorithm's
//!    runtime `T` (Lemma 4.2);
//! 2. share a seed inside every cluster (Lemma 4.3);
//! 3. run the algorithm once per layer — each node using *its cluster's*
//!    seed, truncated at its contained radius so executions never straddle
//!    clusters;
//! 4. each node outputs the **majority vote** over the layers whose
//!    cluster contains its whole `T`-ball. Each such layer is a faithful
//!    partial simulation with a fresh seed, so each vote is canonical with
//!    probability ≥ 2/3, and the majority over `Θ(log n)` covering layers
//!    is canonical w.h.p.
//!
//! Cost: `O(T·log² n)` rounds total — the Meta-Theorem A.1 bound.

use crate::algorithm::{AlgoNode, BatchedSends, NodeBatch};
use das_cluster::{CarveConfig, Clustering, ShareConfig};
use das_congest::util::seed_mix;
use das_graph::{Graph, NodeId};
use std::collections::HashMap;

/// A distributed algorithm family parameterized by a shared random seed.
///
/// `create_node` receives both the shared seed (the same value at every
/// node in the shared-randomness model; per-cluster after
/// derandomization) and a private tape seed.
pub trait SeededFamily {
    /// Running time `T` of the algorithm.
    fn rounds(&self) -> u32;

    /// Builds the machine for node `v`.
    fn create_node(
        &self,
        v: NodeId,
        n: usize,
        shared_seed: u64,
        private_seed: u64,
    ) -> Box<dyn AlgoNode>;

    /// Batched tier: builds the machines for all of `nodes` at once, with
    /// `shared_seeds[i]` / `private_seeds[i]` the seeds of `nodes[i]`.
    /// Slab machine `i` must behave identically to
    /// `create_node(nodes[i], n, shared_seeds[i], private_seeds[i])`. The
    /// default wraps a `create_node` loop; families override it to build
    /// contiguous state in one pass.
    fn create_nodes(
        &self,
        nodes: &[NodeId],
        n: usize,
        shared_seeds: &[u64],
        private_seeds: &[u64],
    ) -> NodeBatch {
        assert_eq!(nodes.len(), shared_seeds.len(), "one shared seed per node");
        assert_eq!(
            nodes.len(),
            private_seeds.len(),
            "one private seed per node"
        );
        NodeBatch::from_boxed(
            nodes
                .iter()
                .zip(shared_seeds.iter().zip(private_seeds))
                .map(|(&v, (&s, &p))| self.create_node(v, n, s, p))
                .collect(),
        )
    }
}

/// Runs the family alone with per-node shared-seed assignment and
/// optional per-node truncation: node `v` executes only rounds
/// `r < trunc[v]` (Lemma 4.4's partial execution). Returns per-node
/// outputs.
fn run_truncated(
    g: &Graph,
    family: &dyn SeededFamily,
    seeds: &[u64],
    trunc: Option<&[u32]>,
    private_seed: u64,
) -> Vec<Option<Vec<u8>>> {
    let n = g.node_count();
    let nodes: Vec<NodeId> = (0..n).map(|v| NodeId(v as u32)).collect();
    let private_seeds: Vec<u64> = (0..n).map(|v| seed_mix(private_seed, v as u64)).collect();
    let mut batch = family.create_nodes(&nodes, n, seeds, &private_seeds);
    let mut inboxes: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
    let mut sends = BatchedSends::new();
    for r in 0..family.rounds() {
        let mut next: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
        for v in 0..n {
            if trunc.is_some_and(|t| r >= t[v]) {
                continue;
            }
            let mut inbox = std::mem::take(&mut inboxes[v]);
            inbox.sort();
            sends.clear();
            batch.step_into(v, &inbox, &mut sends);
            for (to, payload) in sends.segment(0) {
                debug_assert!(g.has_edge(NodeId(v as u32), to));
                next[to.index()].push((NodeId(v as u32), payload.to_vec()));
            }
        }
        inboxes = next;
    }
    (0..n).map(|v| batch.output(v)).collect()
}

/// Runs the family in the shared-randomness model (every node holds the
/// same seed) — the baseline the derandomization is checked against.
pub fn run_with_global_seed(
    g: &Graph,
    family: &dyn SeededFamily,
    shared_seed: u64,
    private_seed: u64,
) -> Vec<Option<Vec<u8>>> {
    run_truncated(
        g,
        family,
        &vec![shared_seed; g.node_count()],
        None,
        private_seed,
    )
}

/// Configuration of the derandomization.
#[derive(Clone, Debug)]
pub struct BellagioConfig {
    /// Number of clustering layers (`Θ(log n)` default).
    pub layers: Option<usize>,
    /// Base seed for all private draws.
    pub seed: u64,
}

impl Default for BellagioConfig {
    fn default() -> Self {
        BellagioConfig {
            layers: None,
            seed: 0xBE11A610,
        }
    }
}

/// The result of the derandomized execution.
#[derive(Clone, Debug)]
pub struct BellagioOutcome {
    /// Majority-vote outputs (`None` where no layer covered the node —
    /// w.h.p. nowhere).
    pub outputs: Vec<Option<Vec<u8>>>,
    /// Per-layer raw outputs (for inspecting vote margins).
    pub layer_outputs: Vec<Vec<Option<Vec<u8>>>>,
    /// Fraction of nodes with at least one covering layer.
    pub coverage: f64,
    /// Total CONGEST rounds: carving + sharing + one truncated run per
    /// layer (the Meta-Theorem's `O(T log² n)`).
    pub total_rounds: u64,
}

/// The planned derandomization: clustering, per-layer per-node seed
/// assignments, and the analytic round accounting — everything decided
/// before any machine steps, mirroring the core pipeline's plan/execute
/// split (see [`crate::plan`]).
#[derive(Clone, Debug)]
pub struct DerandomizationPlan {
    /// The carved clustering (step 1).
    pub clustering: Clustering,
    /// Per-layer, per-node folded cluster seeds (step 2).
    pub layer_seeds: Vec<Vec<u64>>,
    /// The private tape seed threaded into every truncated run.
    pub private_seed: u64,
    /// Runtime `T` the plan was padded for.
    pub t_rounds: u32,
    /// Total CONGEST rounds the plan charges: carving + sharing + one
    /// truncated run per layer (the Meta-Theorem's `O(T log² n)`).
    pub total_rounds: u64,
}

/// Plans the derandomization of a Bellagio family: carves the layers,
/// shares one seed per cluster, and accounts the rounds — without running
/// the family.
pub fn plan_derandomization(
    g: &Graph,
    family: &dyn SeededFamily,
    config: &BellagioConfig,
) -> DerandomizationPlan {
    let n = g.node_count();
    let t_rounds = family.rounds();

    // 1. carve, padded for the algorithm's runtime
    let mut carve_cfg = CarveConfig::for_dilation(g, t_rounds);
    if let Some(l) = config.layers {
        carve_cfg = carve_cfg.with_num_layers(l);
    }
    let clustering = Clustering::carve_centralized(g, &carve_cfg, config.seed);
    let mut total_rounds = clustering.precompute_rounds();

    // 2. share one seed per cluster
    let share_cfg = ShareConfig::for_graph(g, carve_cfg.horizon);
    let chunks =
        das_cluster::share::center_chunks(n, share_cfg.chunks, seed_mix(config.seed, 0x5EED));
    let mut layer_seeds = Vec::with_capacity(clustering.layers().len());
    for layer in clustering.layers() {
        total_rounds += share_cfg.rounds_needed();
        let seeds_words = das_cluster::share_layer_centralized(layer, &chunks);
        let seeds: Vec<u64> = seeds_words
            .iter()
            .map(|ws| ws.iter().fold(0u64, |acc, &w| seed_mix(acc, w)))
            .collect();
        total_rounds += t_rounds as u64; // alone, one round per engine round
        layer_seeds.push(seeds);
    }

    DerandomizationPlan {
        clustering,
        layer_seeds,
        private_seed: seed_mix(config.seed, 0x7A9E),
        t_rounds,
        total_rounds,
    }
}

/// Executes a derandomization plan: one truncated run per layer with the
/// planned per-cluster seeds, then the majority vote over covering layers.
pub fn execute_derandomization(
    g: &Graph,
    family: &dyn SeededFamily,
    plan: &DerandomizationPlan,
) -> BellagioOutcome {
    let n = g.node_count();
    let t_rounds = plan.t_rounds;

    // 3. one truncated run per layer with per-cluster seeds
    let mut layer_outputs = Vec::with_capacity(plan.clustering.layers().len());
    for (l, layer) in plan.clustering.layers().iter().enumerate() {
        let outputs = run_truncated(
            g,
            family,
            &plan.layer_seeds[l],
            Some(&layer.contained_radius),
            plan.private_seed,
        );
        layer_outputs.push(outputs);
    }

    // 4. majority vote over covering layers
    let mut outputs: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut covered = 0usize;
    for v in g.nodes() {
        let covering = plan.clustering.covering_layers(v, t_rounds);
        if covering.is_empty() {
            continue;
        }
        covered += 1;
        let mut votes: HashMap<&Option<Vec<u8>>, usize> = HashMap::new();
        for &l in &covering {
            *votes.entry(&layer_outputs[l][v.index()]).or_default() += 1;
        }
        let winner = votes
            .into_iter()
            .max_by_key(|&(out, c)| (c, out.is_some() as usize))
            .map(|(out, _)| out.clone())
            .expect("non-empty covering set");
        outputs[v.index()] = winner;
    }

    BellagioOutcome {
        outputs,
        layer_outputs,
        coverage: covered as f64 / n as f64,
        total_rounds: plan.total_rounds,
    }
}

/// Derandomizes a Bellagio family per Meta-Theorem A.1: plans, then
/// executes.
pub fn derandomize(
    g: &Graph,
    family: &dyn SeededFamily,
    config: &BellagioConfig,
) -> BellagioOutcome {
    execute_derandomization(g, family, &plan_derandomization(g, family, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AlgoSend;
    use das_graph::generators;

    /// Demo Bellagio algorithm: "is the number of distinct inputs in my
    /// `h`-ball at least `threshold`?" — one threshold hash test repeated
    /// over iterations packed into a 64-bit OR-flood. The canonical output
    /// (the true bit) is produced for most seeds when the count is away
    /// from the threshold.
    struct ThresholdTest {
        inputs: Vec<u64>,
        neighbors: Vec<Vec<NodeId>>,
        h: u32,
        threshold: f64,
        iters: u32,
    }

    impl ThresholdTest {
        fn new(g: &Graph, inputs: Vec<u64>, h: u32, threshold: f64) -> Self {
            ThresholdTest {
                inputs,
                neighbors: g
                    .nodes()
                    .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
                    .collect(),
                h,
                threshold,
                iters: 48,
            }
        }
    }

    struct ThresholdNode {
        neighbors: Vec<NodeId>,
        acc: u64,
        h: u32,
        round: u32,
        iters: u32,
    }

    impl SeededFamily for ThresholdTest {
        fn rounds(&self) -> u32 {
            self.h + 1
        }

        fn create_node(
            &self,
            v: NodeId,
            _n: usize,
            shared_seed: u64,
            _private_seed: u64,
        ) -> Box<dyn AlgoNode> {
            let mut acc = 0u64;
            for i in 0..self.iters {
                let hsh = seed_mix(seed_mix(shared_seed, self.inputs[v.index()]), i as u64);
                let u = (hsh >> 11) as f64 / (1u64 << 53) as f64;
                if u < 1.0 - (-1.0 / self.threshold).exp2() {
                    acc |= 1 << i;
                }
            }
            Box::new(ThresholdNode {
                neighbors: self.neighbors[v.index()].clone(),
                acc,
                h: self.h,
                round: 0,
                iters: self.iters,
            })
        }
    }

    impl AlgoNode for ThresholdNode {
        fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
            for (_, payload) in inbox {
                self.acc |= u64::from_le_bytes(payload[..8].try_into().unwrap());
            }
            let mut out = Vec::new();
            if self.round < self.h {
                for &u in &self.neighbors {
                    out.push(AlgoSend {
                        to: u,
                        payload: self.acc.to_le_bytes().to_vec(),
                    });
                }
            }
            self.round += 1;
            out
        }

        fn output(&self) -> Option<Vec<u8>> {
            // majority of the OR bits decides
            let ones = self.acc.count_ones();
            Some(vec![(ones > self.iters / 2) as u8])
        }
    }

    fn canonical_bits(g: &Graph, inputs: &[u64], h: u32, threshold: f64) -> Vec<u8> {
        g.nodes()
            .map(|v| {
                let mut vals: Vec<u64> = das_graph::traversal::ball(g, v, h)
                    .into_iter()
                    .map(|u| inputs[u.index()])
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                (vals.len() as f64 >= threshold) as u8
            })
            .collect()
    }

    #[test]
    fn family_is_bellagio_under_global_seeds() {
        // over many seeds, most executions output the canonical bit at
        // every node with a clear count margin
        let g = generators::grid(5, 5);
        let inputs: Vec<u64> = (0..25).map(|v| seed_mix(3, (v % 12) as u64)).collect();
        let fam = ThresholdTest::new(&g, inputs.clone(), 2, 4.0);
        let canon = canonical_bits(&g, &inputs, 2, 4.0);
        let mut canonical_votes = 0usize;
        let trials = 20;
        for s in 0..trials {
            let out = run_with_global_seed(&g, &fam, 1000 + s, 7);
            let all_canon = g
                .nodes()
                .all(|v| out[v.index()].as_deref() == Some(&canon[v.index()..=v.index()]));
            canonical_votes += all_canon as usize;
        }
        assert!(
            canonical_votes as f64 / trials as f64 >= 0.7,
            "only {canonical_votes}/{trials} seed choices were fully canonical"
        );
    }

    #[test]
    fn derandomization_recovers_canonical_outputs() {
        let g = generators::grid(5, 5);
        let inputs: Vec<u64> = (0..25).map(|v| seed_mix(3, (v % 12) as u64)).collect();
        let fam = ThresholdTest::new(&g, inputs.clone(), 2, 4.0);
        let canon = canonical_bits(&g, &inputs, 2, 4.0);
        let outcome = derandomize(&g, &fam, &BellagioConfig::default());
        assert!(outcome.coverage >= 0.9, "coverage {}", outcome.coverage);
        let mut ok = 0usize;
        let mut total = 0usize;
        for v in g.nodes() {
            if let Some(out) = &outcome.outputs[v.index()] {
                total += 1;
                ok += (out[0] == canon[v.index()]) as usize;
            }
        }
        assert!(
            ok as f64 / total as f64 >= 0.9,
            "majority vote canonical at only {ok}/{total} nodes"
        );
        assert!(outcome.total_rounds > 0);
    }

    #[test]
    fn staged_derandomization_matches_fused() {
        let g = generators::grid(5, 5);
        let inputs: Vec<u64> = (0..25).map(|v| seed_mix(3, (v % 12) as u64)).collect();
        let fam = ThresholdTest::new(&g, inputs, 2, 4.0);
        let cfg = BellagioConfig::default();
        let plan = plan_derandomization(&g, &fam, &cfg);
        let staged = execute_derandomization(&g, &fam, &plan);
        let fused = derandomize(&g, &fam, &cfg);
        assert_eq!(staged.outputs, fused.outputs);
        assert_eq!(staged.layer_outputs, fused.layer_outputs);
        assert_eq!(staged.total_rounds, fused.total_rounds);
        assert!(plan.total_rounds > 0);
    }

    #[test]
    fn cost_is_t_log_squared_shape() {
        let g = generators::grid(6, 6);
        let inputs: Vec<u64> = (0..36).map(|v| seed_mix(4, v as u64)).collect();
        let fam = ThresholdTest::new(&g, inputs, 2, 3.0);
        let outcome = derandomize(&g, &fam, &BellagioConfig::default());
        let n = 36f64;
        let t = fam.rounds() as f64;
        let budget = t * n.ln() * n.ln();
        let ratio = outcome.total_rounds as f64 / budget;
        // the constant is dominated by the carving (3 log2 n layers, each
        // H + boundary rounds); just pin it to a sane band
        assert!(ratio > 1.0 && ratio < 200.0, "ratio {ratio}");
    }
}
