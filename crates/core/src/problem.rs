//! The DAS problem instance: a network plus the algorithms to co-schedule.

use crate::algorithm::BlackBoxAlgorithm;
use crate::reference::{run_alone, ReferenceError, ReferenceRun};
use das_graph::Graph;
use das_pattern::{das_parameters, DasParameters};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A Distributed Algorithm Scheduling instance: the network, the `k`
/// black-box algorithms, and the **tape seed** fixing all their random
/// tapes.
///
/// The seed domain is split in two:
///
/// * the `tape_seed` held here fixes the algorithms' random tapes — and
///   therefore the reference (alone) runs, the measured congestion and
///   dilation, and the ground-truth outputs;
/// * the scheduler's own randomness is a separate per-run `sched_seed`,
///   passed to [`crate::Scheduler::plan`].
///
/// Because the reference runs depend only on the tape seed, a trial sweep
/// that varies only the scheduler seed (the common experiment shape) can
/// share one `DasProblem` and pay for the `k` alone runs exactly once;
/// [`DasProblem::reference_runs_computed`] counts them so tests can pin
/// that property.
///
/// Reference runs are computed lazily and cached: they provide the
/// ground-truth outputs as well as the measured `congestion` and
/// `dilation` the schedulers are parameterized by (the paper assumes nodes
/// know constant-factor approximations of both; see [`crate::doubling`]
/// for removing that assumption).
pub struct DasProblem<'g> {
    graph: &'g Graph,
    algorithms: Vec<Box<dyn BlackBoxAlgorithm>>,
    tape_seed: u64,
    references: OnceLock<Result<Vec<ReferenceRun>, ReferenceError>>,
    reference_runs: AtomicU64,
}

impl<'g> DasProblem<'g> {
    /// Creates a problem instance with the given tape seed.
    ///
    /// # Panics
    /// Panics if `algorithms` is empty.
    pub fn new(
        graph: &'g Graph,
        algorithms: Vec<Box<dyn BlackBoxAlgorithm>>,
        tape_seed: u64,
    ) -> Self {
        assert!(!algorithms.is_empty(), "need at least one algorithm");
        DasProblem {
            graph,
            algorithms,
            tape_seed,
            references: OnceLock::new(),
            reference_runs: AtomicU64::new(0),
        }
    }

    /// The network.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The algorithms.
    pub fn algorithms(&self) -> &[Box<dyn BlackBoxAlgorithm>] {
        &self.algorithms
    }

    /// Number of algorithms `k`.
    pub fn k(&self) -> usize {
        self.algorithms.len()
    }

    /// The seed fixing all algorithm random tapes (and nothing else —
    /// scheduler randomness is a separate `sched_seed`).
    pub fn tape_seed(&self) -> u64 {
        self.tape_seed
    }

    /// The random-tape seed of algorithm `i` (mixes the tape seed with the
    /// algorithm's AID, so tapes are independent across algorithms).
    pub fn algo_seed(&self, i: usize) -> u64 {
        das_congest::util::seed_mix(self.tape_seed, self.algorithms[i].aid().0)
    }

    /// The declared dilation: `max_i rounds(A_i)`.
    pub fn dilation(&self) -> u32 {
        self.algorithms
            .iter()
            .map(|a| a.rounds())
            .max()
            .expect("non-empty")
    }

    /// How many reference (alone) runs this instance has computed so far —
    /// `k` after the first access to [`DasProblem::references`], and still
    /// `k` after any number of further plans/executions/verifications.
    pub fn reference_runs_computed(&self) -> u64 {
        self.reference_runs.load(Ordering::Relaxed)
    }

    /// The cached reference (alone) runs of all algorithms.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`] if some algorithm violates the
    /// CONGEST model.
    pub fn references(&self) -> Result<&[ReferenceRun], ReferenceError> {
        let computed = self.references.get_or_init(|| {
            (0..self.k())
                .map(|i| {
                    self.reference_runs.fetch_add(1, Ordering::Relaxed);
                    run_alone(self.graph, self.algorithms[i].as_ref(), self.algo_seed(i))
                })
                .collect()
        });
        match computed {
            Ok(refs) => Ok(refs),
            Err(e) => Err(e.clone()),
        }
    }

    /// The measured `congestion` and `dilation` of the instance.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`] from the reference runs.
    pub fn parameters(&self) -> Result<DasParameters, ReferenceError> {
        let refs = self.references()?;
        let patterns: Vec<_> = refs.iter().map(|r| r.pattern.clone()).collect();
        Ok(das_parameters(&patterns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use das_graph::generators;

    fn relay_problem(g: &Graph, k: usize) -> DasProblem<'_> {
        let algos = (0..k)
            .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, 11)
    }

    #[test]
    fn parameters_of_stacked_relays() {
        let g = generators::path(10);
        let p = relay_problem(&g, 6);
        assert_eq!(p.k(), 6);
        assert_eq!(p.dilation(), 9);
        let params = p.parameters().unwrap();
        assert_eq!(params.dilation, 9);
        assert_eq!(params.congestion, 6, "each relay loads each edge once");
        assert_eq!(params.sum(), 15);
    }

    #[test]
    fn references_cached_and_seeded() {
        let g = generators::path(5);
        let p = relay_problem(&g, 2);
        assert_eq!(p.reference_runs_computed(), 0, "references are lazy");
        let a = p.references().unwrap()[0].outputs.clone();
        let b = p.references().unwrap()[0].outputs.clone();
        assert_eq!(a, b);
        assert_ne!(p.algo_seed(0), p.algo_seed(1));
        assert_eq!(p.tape_seed(), 11);
        assert_eq!(
            p.reference_runs_computed(),
            2,
            "one alone run per algorithm"
        );
    }

    #[test]
    #[should_panic]
    fn empty_problem_panics() {
        let g = generators::path(3);
        DasProblem::new(&g, vec![], 0);
    }
}
