//! The DAS problem instance: a network plus the algorithms to co-schedule.

use crate::algorithm::BlackBoxAlgorithm;
use crate::reference::{run_alone, ReferenceError, ReferenceRun};
use das_graph::Graph;
use das_pattern::{das_parameters, DasParameters};
use std::sync::OnceLock;

/// A Distributed Algorithm Scheduling instance: the network, the `k`
/// black-box algorithms, and the seed fixing all their random tapes.
///
/// Reference (alone) runs are computed lazily and cached: they provide the
/// ground-truth outputs as well as the measured `congestion` and
/// `dilation` the schedulers are parameterized by (the paper assumes nodes
/// know constant-factor approximations of both; see [`crate::doubling`]
/// for removing that assumption).
pub struct DasProblem<'g> {
    graph: &'g Graph,
    algorithms: Vec<Box<dyn BlackBoxAlgorithm>>,
    base_seed: u64,
    references: OnceLock<Result<Vec<ReferenceRun>, ReferenceError>>,
}

impl<'g> DasProblem<'g> {
    /// Creates a problem instance.
    ///
    /// # Panics
    /// Panics if `algorithms` is empty.
    pub fn new(
        graph: &'g Graph,
        algorithms: Vec<Box<dyn BlackBoxAlgorithm>>,
        base_seed: u64,
    ) -> Self {
        assert!(!algorithms.is_empty(), "need at least one algorithm");
        DasProblem {
            graph,
            algorithms,
            base_seed,
            references: OnceLock::new(),
        }
    }

    /// The network.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The algorithms.
    pub fn algorithms(&self) -> &[Box<dyn BlackBoxAlgorithm>] {
        &self.algorithms
    }

    /// Number of algorithms `k`.
    pub fn k(&self) -> usize {
        self.algorithms.len()
    }

    /// The random-tape seed of algorithm `i` (mixes the base seed with the
    /// algorithm's AID, so tapes are independent across algorithms).
    pub fn algo_seed(&self, i: usize) -> u64 {
        das_congest::util::seed_mix(self.base_seed, self.algorithms[i].aid().0)
    }

    /// The declared dilation: `max_i rounds(A_i)`.
    pub fn dilation(&self) -> u32 {
        self.algorithms
            .iter()
            .map(|a| a.rounds())
            .max()
            .expect("non-empty")
    }

    /// The cached reference (alone) runs of all algorithms.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`] if some algorithm violates the
    /// CONGEST model.
    pub fn references(&self) -> Result<&[ReferenceRun], ReferenceError> {
        let computed = self.references.get_or_init(|| {
            (0..self.k())
                .map(|i| run_alone(self.graph, self.algorithms[i].as_ref(), self.algo_seed(i)))
                .collect()
        });
        match computed {
            Ok(refs) => Ok(refs),
            Err(e) => Err(e.clone()),
        }
    }

    /// The measured `congestion` and `dilation` of the instance.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`] from the reference runs.
    pub fn parameters(&self) -> Result<DasParameters, ReferenceError> {
        let refs = self.references()?;
        let patterns: Vec<_> = refs.iter().map(|r| r.pattern.clone()).collect();
        Ok(das_parameters(&patterns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use das_graph::generators;

    fn relay_problem(g: &Graph, k: usize) -> DasProblem<'_> {
        let algos = (0..k)
            .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, 11)
    }

    #[test]
    fn parameters_of_stacked_relays() {
        let g = generators::path(10);
        let p = relay_problem(&g, 6);
        assert_eq!(p.k(), 6);
        assert_eq!(p.dilation(), 9);
        let params = p.parameters().unwrap();
        assert_eq!(params.dilation, 9);
        assert_eq!(params.congestion, 6, "each relay loads each edge once");
        assert_eq!(params.sum(), 15);
    }

    #[test]
    fn references_cached_and_seeded() {
        let g = generators::path(5);
        let p = relay_problem(&g, 2);
        let a = p.references().unwrap()[0].outputs.clone();
        let b = p.references().unwrap()[0].outputs.clone();
        assert_eq!(a, b);
        assert_ne!(p.algo_seed(0), p.algo_seed(1));
    }

    #[test]
    #[should_panic]
    fn empty_problem_panics() {
        let g = generators::path(3);
        DasProblem::new(&g, vec![], 0);
    }
}
