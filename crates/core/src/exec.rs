//! The scheduled executor: drives canonical machines in big-rounds over
//! capacity-1 edges, honestly.
//!
//! The executor realizes the execution style shared by all the paper's
//! schedulers (Theorem 1.1, the §3 remark, and Lemma 4.4):
//!
//! * Time is split into **big-rounds** of `phase_len` engine rounds.
//! * Each algorithm is run by one or more [`Unit`]s — (per-node delay,
//!   per-node truncation) assignments. In the shared-randomness schedulers
//!   there is one unit per algorithm with a global delay; in the
//!   private-randomness scheduler there is one unit per (algorithm, layer)
//!   with per-cluster delays and per-node truncations.
//! * There is **one canonical machine per (algorithm, node)**; algorithm
//!   round `r` executes at the *earliest* big-round any eligible unit
//!   schedules it. This built-in deduplication is exactly Lemma 4.4's
//!   "only the first copy of each message is actually sent".
//! * Messages travel through per-arc FIFO queues at **one message per edge
//!   per direction per engine round** — the CONGEST bandwidth. If a
//!   scheduler overloads an edge, messages spill into later big-rounds and
//!   may arrive after their consumer has stepped; such *late* messages are
//!   dropped and counted, and the wrong outputs they cause are caught by
//!   [`crate::verify`]. "With high probability" claims become measured
//!   failure rates.

mod columnar;

use crate::algorithm::BlackBoxAlgorithm;
use crate::schedule::ScheduleOutcome;
use crate::shard::Partition;
use das_graph::{Graph, NodeId};
use das_obs::{ExecObs, ObsConfig, ObsReport};
use das_pattern::{SimulationMap, TimedArc};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Ways an execution can fail outright (as opposed to producing wrong
/// outputs, which [`crate::verify`] catches after the fact).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The engine-round cap was reached before all arc queues drained: the
    /// schedule is overloaded (or malformed) beyond what the configured
    /// budget tolerates. Surfaced as a typed error so a trial sweep can
    /// record the truncated attempt and move on instead of aborting.
    RoundCapExceeded {
        /// The configured cap ([`ExecutorConfig::max_engine_rounds`]).
        cap: u64,
        /// The big-round that was draining when the cap was hit.
        big_round: u64,
    },
    /// A networked worker's connection dropped (or its stream errored)
    /// while the coordinator was mid-protocol with it.
    WorkerDisconnected {
        /// Shard index of the lost worker.
        shard: usize,
        /// What the coordinator was doing when the connection died.
        detail: String,
    },
    /// A frame arrived shorter than its length prefix promised (or the
    /// prefix itself was cut off): the peer closed or corrupted the stream
    /// mid-frame.
    TruncatedFrame {
        /// Where in the protocol the short read happened.
        detail: String,
    },
    /// Coordinator and worker speak different protocol versions.
    VersionMismatch {
        /// The coordinator's [`crate::net::PROTOCOL_VERSION`].
        coordinator: u32,
        /// The version the worker announced in its JOIN frame.
        worker: u32,
    },
    /// The plan JSON a worker received does not hash to the plan hash the
    /// coordinator announced — the plan was corrupted or substituted in
    /// transit.
    PlanHashMismatch {
        /// The hash announced in the ASSIGN frame.
        expected: u64,
        /// The hash of the plan bytes actually received.
        got: u64,
    },
    /// Coordinator and worker were launched on different problems (graph,
    /// workload, or tape seed differ), so byte-identity is impossible.
    ProblemMismatch {
        /// The coordinator's problem fingerprint.
        coordinator: u64,
        /// The worker's problem fingerprint.
        worker: u64,
    },
    /// A worker JOINed after every shard slot was already assigned: the
    /// coordinator keeps listening just long enough to turn stragglers
    /// away with a typed REJECT instead of a generic connection error.
    LateJoin {
        /// How many shard slots the run had (all taken).
        shards: usize,
    },
    /// A blocking network wait exceeded its configured deadline. Every
    /// wait on the networked path is deadline-bounded, so a dead peer
    /// surfaces as this error instead of a hang.
    NetTimeout {
        /// The protocol phase that timed out.
        during: String,
        /// The configured deadline in milliseconds.
        ms: u64,
    },
    /// The run was aborted deliberately: the coordinator was interrupted
    /// (Ctrl-C) or told this worker to stand down after another worker
    /// failed.
    Aborted {
        /// Why the run was torn down.
        detail: String,
    },
    /// Any other network-layer failure (bind, connect, malformed frame
    /// kind, oversized frame, encode/decode error).
    Net {
        /// Description of the failure.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::RoundCapExceeded { cap, big_round } => write!(
                f,
                "engine round cap {cap} exceeded while draining big-round \
                 {big_round}; the schedule does not drain"
            ),
            ExecError::WorkerDisconnected { shard, detail } => {
                write!(f, "worker for shard {shard} disconnected: {detail}")
            }
            ExecError::TruncatedFrame { detail } => {
                write!(f, "truncated frame: {detail}")
            }
            ExecError::VersionMismatch {
                coordinator,
                worker,
            } => write!(
                f,
                "protocol version mismatch: coordinator speaks v{coordinator}, \
                 worker speaks v{worker}"
            ),
            ExecError::PlanHashMismatch { expected, got } => write!(
                f,
                "plan hash mismatch: coordinator announced {expected:#018x} but \
                 the received plan hashes to {got:#018x}"
            ),
            ExecError::ProblemMismatch {
                coordinator,
                worker,
            } => write!(
                f,
                "problem fingerprint mismatch: coordinator {coordinator:#018x} vs \
                 worker {worker:#018x} — both sides must be launched with the \
                 same graph, workload, and seed"
            ),
            ExecError::LateJoin { shards } => write!(
                f,
                "late JOIN rejected: all {shards} shard slots are already \
                 assigned for this run"
            ),
            ExecError::NetTimeout { during, ms } => {
                write!(f, "network wait timed out after {ms} ms during {during}")
            }
            ExecError::Aborted { detail } => write!(f, "run aborted: {detail}"),
            ExecError::Net { detail } => write!(f, "network error: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One scheduled execution of an algorithm: who runs it, when, how far.
///
/// Units are the atoms of a [`crate::plan::SchedulePlan`] and serialize as
/// part of the plan's JSON form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unit {
    /// Index of the algorithm in the problem.
    pub algo: usize,
    /// Per-node start delay in big-rounds.
    pub delay: Vec<u64>,
    /// Big-rounds per algorithm round (1 everywhere except the
    /// time-division baseline).
    pub stride: u64,
    /// Per-node truncation: node `v` executes only rounds `r <
    /// trunc[v]` of this unit (`u32::MAX` = no truncation). Lemma 4.4's
    /// "execute only the first h' rounds".
    pub trunc: Vec<u32>,
}

impl Unit {
    /// A unit where every node starts at the same delay, untruncated.
    pub fn global(algo: usize, delay: u64, n: usize) -> Self {
        Unit {
            algo,
            delay: vec![delay; n],
            stride: 1,
            trunc: vec![u32::MAX; n],
        }
    }
}

/// Which implementation drives the engine's hot loop. Both produce
/// byte-identical [`ScheduleOutcome`]s for every plan, shard count, and
/// observability setting (enforced by `tests/shard_equivalence.rs`,
/// `tests/obs_neutrality.rs`, and the `columnar-equivalence` CI job); they
/// differ only in throughput.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The row-at-a-time reference loop: one message per active arc per
    /// engine round, heap-allocated payloads, per-message departure
    /// inserts. Kept as the executable specification the columnar engine
    /// is checked against.
    Row,
    /// The columnar hot path (default): per-arc arena queues drained in
    /// contiguous per-big-round batches, bitset-indexed tag windows, and
    /// deferred departure recording. See `exec/columnar.rs`.
    #[default]
    Columnar,
    /// The columnar engine plus the batched black-box tier: machines are
    /// built as node-contiguous [`crate::NodeBatch`] slabs, each
    /// big-round's step table is grouped into maximal same-algorithm runs,
    /// and every run dispatches as **one** virtual
    /// [`crate::AlgoSlab::step_block`] call with sends landing in a flat
    /// arena. Sends are still validated and enqueued in per-step order,
    /// which keeps the outcome byte-identical to the other engines.
    ColumnarBatched,
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Engine rounds per big-round.
    pub phase_len: u64,
    /// Per-message payload limit in bytes (the scheduler's header is extra,
    /// as the paper allows).
    pub message_bytes: usize,
    /// Hard cap on engine rounds.
    pub max_engine_rounds: u64,
    /// Record message departures to build a causality-checkable
    /// [`SimulationMap`] per algorithm.
    pub record_departures: bool,
    /// Number of shards for [`Executor::run_sharded`] (clamped to the node
    /// count; [`Executor::run`] ignores it). The outcome is byte-identical
    /// for every shard count — sharding changes only the parallel layout.
    pub shards: usize,
    /// Which engine implementation to run; outcomes are byte-identical
    /// either way (see [`EngineKind`]).
    pub engine: EngineKind,
    /// Live observability hub, if the run is being served. Probes publish
    /// write-only snapshots into it at big-round boundaries; execution
    /// never reads it, so outcomes stay byte-identical with or without it
    /// (`tests/obs_neutrality.rs` enforces this with a polling client).
    pub live: Option<std::sync::Arc<das_obs::LiveHub>>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            phase_len: 1,
            message_bytes: 40,
            max_engine_rounds: 10_000_000,
            record_departures: true,
            shards: 1,
            engine: EngineKind::default(),
            live: None,
        }
    }
}

impl ExecutorConfig {
    /// Sets the big-round length.
    pub fn with_phase_len(mut self, phase_len: u64) -> Self {
        self.phase_len = phase_len.max(1);
        self
    }

    /// Attaches a live observability hub for the run to publish into.
    pub fn with_live(mut self, live: Option<std::sync::Arc<das_obs::LiveHub>>) -> Self {
        self.live = live;
        self
    }

    /// Enables or disables departure recording.
    pub fn with_record_departures(mut self, record: bool) -> Self {
        self.record_departures = record;
        self
    }

    /// Sets the shard count for [`Executor::run_sharded`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Selects the engine implementation.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// Measured execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Engine rounds the schedule took (its length).
    pub engine_rounds: u64,
    /// Big-rounds executed.
    pub big_rounds: u64,
    /// Engine rounds per big-round.
    pub phase_len: u64,
    /// Messages delivered in time.
    pub delivered: u64,
    /// Messages that arrived after their consumer had already stepped
    /// (dropped; a nonzero count usually means wrong outputs).
    pub late_messages: u64,
    /// Sends rejected for model violations under perturbed inboxes.
    pub invalid_sends: u64,
    /// Maximum backlog observed on any arc queue.
    pub max_arc_queue: usize,
}

/// The per-(algorithm, node) step plan: `plan[a][v]` lists the big-round of
/// each algorithm round `0, 1, 2, …` (a prefix of the rounds; truncation
/// can cut it short).
#[derive(Clone, Debug)]
pub struct StepPlan {
    pub(crate) plan: Vec<Vec<Vec<u64>>>,
}

impl StepPlan {
    /// Builds the plan: round `r` of algorithm `a` at node `v` executes at
    /// the earliest big-round over all eligible units.
    ///
    /// # Panics
    /// Panics if units reference out-of-range algorithms or are missized.
    #[allow(clippy::needless_range_loop)]
    pub fn build(g: &Graph, algos: &[Box<dyn BlackBoxAlgorithm>], units: &[Unit]) -> Self {
        let n = g.node_count();
        let mut plan: Vec<Vec<Vec<u64>>> = algos.iter().map(|_| vec![Vec::new(); n]).collect();
        // earliest[a][v][r]
        let mut earliest: Vec<Vec<Vec<Option<u64>>>> = algos
            .iter()
            .map(|a| vec![vec![None; a.rounds() as usize]; n])
            .collect();
        for u in units {
            assert!(u.algo < algos.len(), "unit for unknown algorithm");
            assert_eq!(u.delay.len(), n, "delay vector missized");
            assert_eq!(u.trunc.len(), n, "truncation vector missized");
            assert!(u.stride >= 1, "stride must be at least 1");
            let rounds = algos[u.algo].rounds();
            for v in 0..n {
                let lim = rounds.min(u.trunc[v]);
                for r in 0..lim {
                    let b = u.delay[v] + r as u64 * u.stride;
                    let slot = &mut earliest[u.algo][v][r as usize];
                    if slot.is_none_or(|cur| b < cur) {
                        *slot = Some(b);
                    }
                }
            }
        }
        for (a, per_node) in earliest.into_iter().enumerate() {
            for (v, rounds) in per_node.into_iter().enumerate() {
                let mut prev: Option<u64> = None;
                for (r, slot) in rounds.into_iter().enumerate() {
                    match slot {
                        Some(b) => {
                            assert!(
                                plan[a][v].len() == r,
                                "round {r} of algorithm {a} at node {v} scheduled \
                                 without its predecessor"
                            );
                            if let Some(p) = prev {
                                assert!(b > p, "step plan must be strictly increasing");
                            }
                            prev = Some(b);
                            plan[a][v].push(b);
                        }
                        None => break,
                    }
                }
            }
        }
        StepPlan { plan }
    }

    /// The big-rounds at which node `v` steps algorithm `a`.
    pub fn steps(&self, a: usize, v: NodeId) -> &[u64] {
        &self.plan[a][v.index()]
    }

    /// The last big-round with any step, or `None` for an empty plan.
    pub fn last_big_round(&self) -> Option<u64> {
        self.plan
            .iter()
            .flatten()
            .filter_map(|s| s.last().copied())
            .max()
    }
}

/// A message in flight.
pub(crate) struct Flight {
    pub(crate) dst: NodeId,
    pub(crate) algo: u32,
    pub(crate) round: u32,
    pub(crate) from: NodeId,
    pub(crate) payload: Vec<u8>,
}

/// Per-arc FIFO of in-flight messages: a two-stack queue over plain `Vec`s
/// (push onto `back`, pop from `front`, refill by reversing), keeping the
/// hot path on flat storage whose allocations persist across big-rounds.
#[derive(Default)]
pub(crate) struct ArcFifo {
    /// Pop end, stored in reverse arrival order.
    front: Vec<Flight>,
    /// Push end, in arrival order.
    back: Vec<Flight>,
}

impl ArcFifo {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.front.is_empty() && self.back.is_empty()
    }

    #[inline]
    pub(crate) fn push_back(&mut self, f: Flight) {
        self.back.push(f);
    }

    #[inline]
    pub(crate) fn pop_front(&mut self) -> Option<Flight> {
        if self.front.is_empty() {
            self.front.extend(self.back.drain(..).rev());
        }
        self.front.pop()
    }
}

/// Arrival buffer for one (algorithm, node) machine: inbox entries keyed by
/// algorithm-round tag. The executor consumes tags strictly in order (step
/// `r` consumes tag `r - 1`) and drops older arrivals as late, so the live
/// tags form a window starting at the consumer's next tag. A flat ring over
/// a power-of-two array of buckets therefore replaces a `BTreeMap`, with
/// the bucket vectors reused across rounds.
#[derive(Default)]
pub(crate) struct TagWindow {
    /// Smallest tag the window can currently hold.
    base: u32,
    /// Ring position of `base`'s bucket.
    head: usize,
    /// Power-of-two ring of buckets (empty until the first push).
    buckets: Vec<Vec<(NodeId, Vec<u8>)>>,
}

impl TagWindow {
    /// Files one arrival under `tag`. Requires `tag >= base`, which the
    /// executor's late-drop check guarantees.
    pub(crate) fn push(&mut self, tag: u32, from: NodeId, payload: Vec<u8>) {
        debug_assert!(tag >= self.base, "arrival below the live window");
        let offset = (tag - self.base) as usize;
        if offset >= self.buckets.len() {
            self.grow(offset + 1);
        }
        let pos = (self.head + offset) & (self.buckets.len() - 1);
        self.buckets[pos].push((from, payload));
    }

    /// Moves the bucket for `tag` into `into` (clearing it first) and
    /// advances the window past `tag`. Buckets below `tag` must already be
    /// empty — the executor consumes tags strictly in order.
    pub(crate) fn take(&mut self, tag: u32, into: &mut Vec<(NodeId, Vec<u8>)>) {
        into.clear();
        debug_assert!(tag >= self.base, "tags are consumed in order");
        if self.buckets.is_empty() {
            self.base = tag + 1;
            return;
        }
        let len = self.buckets.len();
        let offset = (tag - self.base) as usize;
        if offset >= len {
            // the window never stretched to this tag: nothing is stored
            debug_assert!(self.buckets.iter().all(|b| b.is_empty()));
            self.base = tag + 1;
            self.head = 0;
            return;
        }
        let mask = len - 1;
        for i in 0..offset {
            debug_assert!(
                self.buckets[(self.head + i) & mask].is_empty(),
                "skipped a live tag"
            );
        }
        // swap rather than take, so `into`'s allocation returns to the ring
        std::mem::swap(into, &mut self.buckets[(self.head + offset) & mask]);
        self.head = (self.head + offset + 1) & mask;
        self.base = tag + 1;
    }

    fn grow(&mut self, min_len: usize) {
        let new_len = min_len.next_power_of_two().max(4);
        let mut new_buckets: Vec<Vec<(NodeId, Vec<u8>)>> = Vec::with_capacity(new_len);
        new_buckets.resize_with(new_len, Vec::new);
        let old_len = self.buckets.len();
        for (i, slot) in new_buckets.iter_mut().enumerate().take(old_len) {
            *slot = std::mem::take(&mut self.buckets[(self.head + i) & (old_len - 1)]);
        }
        self.buckets = new_buckets;
        self.head = 0;
    }
}

/// Runs a scheduled execution; see the `exec` module docs at the top of
/// this file for the semantics.
pub struct Executor;

impl Executor {
    /// Executes `units` over the problem's algorithms with the given
    /// configuration, returning outputs, stats, and (optionally) the
    /// per-algorithm simulation maps.
    ///
    /// # Errors
    /// Returns [`ExecError::RoundCapExceeded`] if the queues have not
    /// drained by `config.max_engine_rounds`.
    ///
    /// # Panics
    /// Panics if the plan is malformed (missized vectors, zero stride,
    /// unknown algorithm) — plans from untrusted sources go through
    /// [`crate::SchedulePlan::validate`] first.
    pub fn run(
        g: &Graph,
        algos: &[Box<dyn BlackBoxAlgorithm>],
        seeds: &[u64],
        units: &[Unit],
        config: &ExecutorConfig,
    ) -> Result<ScheduleOutcome, ExecError> {
        Self::run_with(g, algos, seeds, units, config, &mut ExecObs::disabled())
    }

    /// Like [`Executor::run`], recording observability at the level `obs`
    /// asks for. The outcome is byte-identical to [`Executor::run`] for
    /// every `obs` setting — the probe only reads executor state and never
    /// feeds back into it (`tests/obs_neutrality.rs` enforces this
    /// property-style). Returns `None` for the report when recording is
    /// disabled.
    ///
    /// # Errors
    /// Returns [`ExecError::RoundCapExceeded`] exactly as [`Executor::run`]
    /// does.
    ///
    /// # Panics
    /// Panics on malformed plans, as [`Executor::run`] does.
    pub fn run_observed(
        g: &Graph,
        algos: &[Box<dyn BlackBoxAlgorithm>],
        seeds: &[u64],
        units: &[Unit],
        config: &ExecutorConfig,
        obs: &ObsConfig,
    ) -> Result<(ScheduleOutcome, Option<ObsReport>), ExecError> {
        let mut probe = ExecObs::new(obs, 0);
        probe.attach_live(config.live.clone());
        let outcome = Self::run_with(g, algos, seeds, units, config, &mut probe)?;
        Ok((outcome, probe.finish()))
    }

    /// The fused executor loop; `obs` hooks are self-guarded no-ops when
    /// recording is off, so this is also [`Executor::run`]'s body. The body
    /// below is the **row** engine — the executable specification; the
    /// default [`EngineKind::Columnar`] dispatches to the batched loop in
    /// `exec/columnar.rs`, which must match it byte-for-byte.
    fn run_with(
        g: &Graph,
        algos: &[Box<dyn BlackBoxAlgorithm>],
        seeds: &[u64],
        units: &[Unit],
        config: &ExecutorConfig,
        obs: &mut ExecObs,
    ) -> Result<ScheduleOutcome, ExecError> {
        match config.engine {
            EngineKind::Columnar => {
                return columnar::run_fused(g, algos, seeds, units, config, obs)
            }
            EngineKind::ColumnarBatched => {
                return columnar::run_fused_batched(g, algos, seeds, units, config, obs)
            }
            EngineKind::Row => {}
        }
        let n = g.node_count();
        let k = algos.len();
        assert_eq!(seeds.len(), k, "one seed per algorithm");
        let plan = StepPlan::build(g, algos, units);

        // Canonical machines and their progress.
        let mut machines: Vec<Vec<Box<dyn crate::algorithm::AlgoNode>>> = (0..k)
            .map(|a| {
                (0..n)
                    .map(|v| {
                        algos[a].create_node(
                            NodeId(v as u32),
                            n,
                            das_congest::util::seed_mix(seeds[a], v as u64),
                        )
                    })
                    .collect()
            })
            .collect();
        let mut steps_done = vec![vec![0u32; n]; k];
        // Buffered arrivals: one flat TagWindow per (algorithm, node),
        // indexed densely at `a * n + v`.
        let mut buffers: Vec<TagWindow> = Vec::with_capacity(k * n);
        buffers.resize_with(k * n, TagWindow::default);
        let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();

        // Steps grouped by big-round: big-rounds are dense, so a flat Vec
        // indexed by `b` replaces a BTreeMap.
        let last_step_round = plan.last_big_round().unwrap_or(0);
        let mut by_big_round: Vec<Vec<(u32, u32, u32)>> =
            vec![Vec::new(); last_step_round as usize + 1];
        for a in 0..k {
            for v in 0..n {
                for (r, &b) in plan.plan[a][v].iter().enumerate() {
                    by_big_round[b as usize].push((a as u32, v as u32, r as u32));
                }
            }
        }

        let mut queues: Vec<ArcFifo> = Vec::with_capacity(g.arc_count());
        queues.resize_with(g.arc_count(), ArcFifo::default);
        let mut active_arcs: Vec<usize> = Vec::new();
        obs.init(g.arc_count(), config.phase_len);
        let mut stats = ExecStats {
            phase_len: config.phase_len,
            ..ExecStats::default()
        };
        let mut departures: Vec<SimulationMap> = vec![SimulationMap::new(); k];
        let mut engine_round: u64 = 0;
        let mut last_activity_round: u64 = 0;

        let mut b: u64 = 0;
        loop {
            // 1. Execute the steps scheduled at big-round b.
            if let Some(steps) = by_big_round.get(b as usize) {
                for &(a, v, r) in steps {
                    let (a, v) = (a as usize, v as usize);
                    debug_assert_eq!(steps_done[a][v], r, "steps execute in order");
                    if r == 0 {
                        inbox.clear();
                    } else {
                        buffers[a * n + v].take(r - 1, &mut inbox);
                    }
                    // canonical inbox order, matching the reference runner
                    inbox.sort();
                    obs.on_step(inbox.len());
                    let sends = machines[a][v].step(&inbox);
                    steps_done[a][v] = r + 1;
                    let me = NodeId(v as u32);
                    let mut sent_to: Vec<NodeId> = Vec::new();
                    for s in sends {
                        let valid = g.find_edge(me, s.to).is_some()
                            && s.payload.len() <= config.message_bytes
                            && !sent_to.contains(&s.to);
                        if !valid {
                            stats.invalid_sends += 1;
                            obs.on_invalid_send();
                            continue;
                        }
                        sent_to.push(s.to);
                        let edge = g.find_edge(me, s.to).expect("validated");
                        let arc = g.arc_from(edge, me);
                        let q = &mut queues[arc.index()];
                        if q.is_empty() {
                            active_arcs.push(arc.index());
                        }
                        q.push_back(Flight {
                            dst: s.to,
                            algo: a as u32,
                            round: r,
                            from: me,
                            payload: s.payload,
                        });
                        stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                        obs.on_inject(arc.index(), q.len());
                    }
                }
            }

            // 2. Drain queues for phase_len engine rounds.
            for _ in 0..config.phase_len {
                let arcs = std::mem::take(&mut active_arcs);
                for arc_idx in arcs {
                    let Some(f) = queues[arc_idx].pop_front() else {
                        continue;
                    };
                    if !queues[arc_idx].is_empty() {
                        active_arcs.push(arc_idx);
                    }
                    let (a, v) = (f.algo as usize, f.dst.index());
                    if config.record_departures {
                        departures[a].insert(
                            TimedArc {
                                round: f.round,
                                arc: das_graph::Arc::from_index(arc_idx),
                            },
                            engine_round as u32,
                        );
                    }
                    let late = steps_done[a][v] >= f.round + 2;
                    if late {
                        stats.late_messages += 1;
                    } else {
                        buffers[a * n + v].push(f.round, f.from, f.payload);
                        stats.delivered += 1;
                    }
                    obs.on_deliver(engine_round, late);
                    last_activity_round = engine_round + 1;
                }
                engine_round += 1;
                if engine_round > config.max_engine_rounds {
                    return Err(ExecError::RoundCapExceeded {
                        cap: config.max_engine_rounds,
                        big_round: b,
                    });
                }
            }

            obs.end_big_round(b);
            b += 1;
            if b > last_step_round && active_arcs.is_empty() {
                break;
            }
        }

        stats.big_rounds = b;
        // Schedule length: last big-round boundary with any step, extended
        // by any drain tail.
        stats.engine_rounds = (last_step_round + 1)
            .saturating_mul(config.phase_len)
            .max(last_activity_round);

        let outputs = machines
            .iter()
            .map(|per_node| per_node.iter().map(|m| m.output()).collect())
            .collect();
        Ok(ScheduleOutcome {
            outputs,
            stats,
            departures: config.record_departures.then_some(departures),
            precompute_rounds: 0,
        })
    }

    /// Executes `units` sharded: nodes are partitioned into
    /// `config.shards` degree-balanced shards (see [`Partition`]), each
    /// driven by its own worker thread. Workers step their own nodes and
    /// drain the arcs they own (an arc belongs to the shard of its
    /// *destination* node) freely within a big-round; cross-shard messages
    /// travel through per-(shard, shard) outboxes and enter the owner's
    /// queues only at the big-round boundary.
    ///
    /// The returned [`ScheduleOutcome`] is **byte-identical** to
    /// [`Executor::run`] for every plan and shard count: per-arc FIFO order
    /// is preserved (each arc has a unique source node, and each worker
    /// steps its nodes in the same order the sequential executor does),
    /// lateness checks read only owner-local progress, inboxes are sorted
    /// before every machine step, and departures merge into an ordered map.
    /// Wall-clock and traffic measurements that *do* depend on the
    /// partition are returned separately in the [`ShardReport`].
    ///
    /// One dedicated thread per shard is spawned (independent of any rayon
    /// pool and of `RAYON_NUM_THREADS`), so big-round barriers cannot
    /// starve.
    ///
    /// # Errors
    /// Returns [`ExecError::RoundCapExceeded`] if the queues have not
    /// drained by `config.max_engine_rounds` — all workers observe the
    /// identical engine-round counter, so they abandon the run in lockstep.
    ///
    /// # Panics
    /// Panics if the plan is malformed (missized vectors, zero stride,
    /// unknown algorithm) or a worker thread panics.
    pub fn run_sharded(
        g: &Graph,
        algos: &[Box<dyn BlackBoxAlgorithm>],
        seeds: &[u64],
        units: &[Unit],
        config: &ExecutorConfig,
    ) -> Result<(ScheduleOutcome, ShardReport), ExecError> {
        Self::run_sharded_observed(g, algos, seeds, units, config, &ObsConfig::off())
            .map(|(outcome, report, _)| (outcome, report))
    }

    /// Like [`Executor::run_sharded`], recording observability at the level
    /// `obs` asks for: each shard worker carries its own probe (events land
    /// on that shard's lane/track) and the per-shard recordings merge into
    /// one report in shard order — so the report's deterministic content is
    /// independent of thread interleaving, and the [`ScheduleOutcome`]
    /// stays byte-identical to [`Executor::run`] for every `obs` setting.
    /// Returns `None` for the report when recording is disabled.
    ///
    /// # Errors
    /// Returns [`ExecError::RoundCapExceeded`] exactly as
    /// [`Executor::run_sharded`] does.
    ///
    /// # Panics
    /// Panics on malformed plans or a worker panic, as
    /// [`Executor::run_sharded`] does.
    pub fn run_sharded_observed(
        g: &Graph,
        algos: &[Box<dyn BlackBoxAlgorithm>],
        seeds: &[u64],
        units: &[Unit],
        config: &ExecutorConfig,
        obs: &ObsConfig,
    ) -> Result<(ScheduleOutcome, ShardReport, Option<ObsReport>), ExecError> {
        let n = g.node_count();
        let k = algos.len();
        assert_eq!(seeds.len(), k, "one seed per algorithm");
        let part = Partition::degree_balanced(g, config.shards);
        let s = part.shards();
        let plan = StepPlan::build(g, algos, units);
        let last_step_round = plan.last_big_round().unwrap_or(0);
        let mut by_big_round: Vec<Vec<(u32, u32, u32)>> =
            vec![Vec::new(); last_step_round as usize + 1];
        for a in 0..k {
            for v in 0..n {
                for (r, &b) in plan.plan[a][v].iter().enumerate() {
                    by_big_round[b as usize].push((a as u32, v as u32, r as u32));
                }
            }
        }
        // An arc is owned by the shard of its destination node: deliveries
        // and lateness checks then touch only owner-local state.
        let arc_owner: Vec<u32> = (0..g.arc_count())
            .map(|i| {
                let (_, dst) = g.arc_endpoints(das_graph::Arc::from_index(i));
                part.of_node()[dst.index()]
            })
            .collect();
        let outboxes: Vec<Mutex<Vec<(usize, Flight)>>> =
            (0..s * s).map(|_| Mutex::new(Vec::new())).collect();
        let ctx = ShardCtx {
            g,
            algos,
            seeds,
            config,
            by_big_round: &by_big_round,
            last_step_round,
            part: &part,
            arc_owner: &arc_owner,
            outboxes: &outboxes,
            barrier: &Barrier::new(s),
            active_workers: &AtomicU64::new(0),
            obs,
        };
        let results: Vec<Result<ShardOutput, ExecError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..s)
                .map(|me| {
                    let ctx = &ctx;
                    scope.spawn(move || shard_worker(me, ctx))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut workers = Vec::with_capacity(s);
        for r in results {
            workers.push(r?);
        }

        let mut outputs: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; n]; k];
        let mut departures: Vec<SimulationMap> = vec![SimulationMap::new(); k];
        let mut stats = ExecStats {
            phase_len: config.phase_len,
            ..ExecStats::default()
        };
        let mut last_activity_round = 0u64;
        let mut report = ShardReport {
            shards: s,
            cross_shard_messages: 0,
            per_shard: Vec::with_capacity(s),
        };
        let mut merged_obs: Option<ObsReport> = None;
        for w in workers {
            let ShardOutput {
                own,
                outputs: w_outputs,
                departures: w_departures,
                stats: w_stats,
                last_activity_round: w_last,
                big_rounds,
                shard,
                obs: w_obs,
            } = w;
            // Workers are consumed in shard order, so the merged report is
            // deterministic for a fixed shard count.
            if let Some(r) = w_obs {
                match &mut merged_obs {
                    Some(m) => m.merge(&r),
                    None => merged_obs = Some(r),
                }
            }
            stats.delivered += w_stats.delivered;
            stats.late_messages += w_stats.late_messages;
            stats.invalid_sends += w_stats.invalid_sends;
            stats.max_arc_queue = stats.max_arc_queue.max(w_stats.max_arc_queue);
            // every worker leaves the lockstep loop at the same big-round
            stats.big_rounds = big_rounds;
            last_activity_round = last_activity_round.max(w_last);
            for (a, (outs, maps)) in w_outputs.into_iter().zip(w_departures).enumerate() {
                for (li, out) in outs.into_iter().enumerate() {
                    outputs[a][own[li]] = out;
                }
                departures[a].extend(maps);
            }
            report.cross_shard_messages += shard.cross_sent;
            report.per_shard.push(shard);
        }
        stats.engine_rounds = (last_step_round + 1)
            .saturating_mul(config.phase_len)
            .max(last_activity_round);
        Ok((
            ScheduleOutcome {
                outputs,
                stats,
                departures: config.record_departures.then_some(departures),
                precompute_rounds: 0,
            },
            report,
            merged_obs,
        ))
    }
}

/// Per-shard measurements from a sharded execution.
///
/// Wall-clock and traffic-split fields depend on the partition and the
/// machine, which is exactly why they live here and not in [`ExecStats`]:
/// the [`ScheduleOutcome`] stays byte-identical across shard counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Nodes owned by this shard.
    pub nodes: usize,
    /// Total degree owned by this shard (the balance target).
    pub degree: usize,
    /// Machine steps executed by this shard's worker.
    pub steps: u64,
    /// Messages delivered on arcs owned by this shard.
    pub delivered: u64,
    /// Messages this shard sent to other shards (through an outbox).
    pub cross_sent: u64,
    /// Wall-clock nanoseconds spent in step phases (nondeterministic).
    pub step_nanos: u64,
    /// Wall-clock nanoseconds spent in merge + drain phases
    /// (nondeterministic).
    pub drain_nanos: u64,
}

/// What a sharded execution reports beyond the (partition-independent)
/// [`ScheduleOutcome`]: the partition shape, cross-shard traffic, and
/// per-shard timing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardReport {
    /// Number of shards actually used (requested count clamped to `n`).
    pub shards: usize,
    /// Total messages that crossed a shard boundary (sum of
    /// [`ShardStats::cross_sent`]).
    pub cross_shard_messages: u64,
    /// Per-shard measurements, in shard order.
    pub per_shard: Vec<ShardStats>,
}

/// Read-only state shared by all shard workers.
struct ShardCtx<'e> {
    g: &'e Graph,
    algos: &'e [Box<dyn BlackBoxAlgorithm>],
    seeds: &'e [u64],
    config: &'e ExecutorConfig,
    by_big_round: &'e [Vec<(u32, u32, u32)>],
    last_step_round: u64,
    part: &'e Partition,
    arc_owner: &'e [u32],
    /// `outboxes[src * shards + dst]`: messages from shard `src` to arcs
    /// owned by shard `dst`, staged during the step phase of a big-round.
    outboxes: &'e [Mutex<Vec<(usize, Flight)>>],
    barrier: &'e Barrier,
    /// How many workers still have active arcs after the current
    /// big-round's drain (reset by worker 0 between rounds).
    active_workers: &'e AtomicU64,
    /// Observability level; each worker builds its own probe from this.
    obs: &'e ObsConfig,
}

/// What one shard worker hands back to be merged.
struct ShardOutput {
    /// Owned nodes, ascending (the local index space).
    own: Vec<usize>,
    /// `outputs[a][local]` for the owned nodes.
    outputs: Vec<Vec<Option<Vec<u8>>>>,
    departures: Vec<SimulationMap>,
    stats: ExecStats,
    last_activity_round: u64,
    big_rounds: u64,
    shard: ShardStats,
    obs: Option<ObsReport>,
}

/// Waits on a shard barrier, sampling the wall-clock wait into the probe's
/// side channel when enabled.
#[inline]
fn barrier_wait(barrier: &Barrier, obs: &mut ExecObs) {
    if obs.wall_enabled() {
        let t = Instant::now();
        barrier.wait();
        obs.on_barrier_wait_ns(t.elapsed().as_nanos() as u64);
    } else {
        barrier.wait();
    }
}

/// The big-round-synchronous shard worker: mirrors [`Executor::run`]'s
/// loop restricted to one shard's nodes and owned arcs, with three barriers
/// per big-round (outboxes complete / activity posted / decision read).
/// This body is the row engine; [`EngineKind::Columnar`] dispatches to the
/// batched worker in `exec/columnar.rs`, which follows the same protocol.
fn shard_worker(me: usize, ctx: &ShardCtx<'_>) -> Result<ShardOutput, ExecError> {
    match ctx.config.engine {
        EngineKind::Columnar => return columnar::shard_worker(me, ctx),
        EngineKind::ColumnarBatched => return columnar::shard_worker_batched(me, ctx),
        EngineKind::Row => {}
    }
    let g = ctx.g;
    let config = ctx.config;
    let n = g.node_count();
    let k = ctx.algos.len();
    let s = ctx.part.shards();
    let own: Vec<usize> = (0..n)
        .filter(|&v| ctx.part.of_node()[v] == me as u32)
        .collect();
    let own_n = own.len();
    let mut local_of = vec![usize::MAX; n];
    for (li, &v) in own.iter().enumerate() {
        local_of[v] = li;
    }
    // Machines get the same per-node seed mix as the sequential path, so
    // machine state is independent of the partition.
    let mut machines: Vec<Vec<Box<dyn crate::algorithm::AlgoNode>>> = (0..k)
        .map(|a| {
            own.iter()
                .map(|&v| {
                    ctx.algos[a].create_node(
                        NodeId(v as u32),
                        n,
                        das_congest::util::seed_mix(ctx.seeds[a], v as u64),
                    )
                })
                .collect()
        })
        .collect();
    let mut steps_done = vec![vec![0u32; own_n]; k];
    let mut buffers: Vec<TagWindow> = Vec::with_capacity(k * own_n);
    buffers.resize_with(k * own_n, TagWindow::default);
    let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    // Full-width arc array for global indexing; this worker only ever
    // touches the arcs it owns.
    let mut queues: Vec<ArcFifo> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), ArcFifo::default);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut obs = ExecObs::new(ctx.obs, me as u32);
    obs.attach_live(config.live.clone());
    obs.init(g.arc_count(), config.phase_len);
    let mut stats = ExecStats {
        phase_len: config.phase_len,
        ..ExecStats::default()
    };
    let mut departures: Vec<SimulationMap> = vec![SimulationMap::new(); k];
    let mut shard = ShardStats {
        shard: me,
        nodes: own_n,
        degree: own.iter().map(|&v| g.degree(NodeId(v as u32))).sum(),
        ..ShardStats::default()
    };
    let mut engine_round: u64 = 0;
    let mut last_activity_round: u64 = 0;
    let mut b: u64 = 0;
    loop {
        // 1. Step phase: this shard's share of big-round b's steps, in the
        // same (algorithm, node, round) order the sequential executor uses
        // — per-arc push order is therefore identical (each arc has one
        // source node, owned by one shard).
        let t_step = Instant::now();
        if let Some(steps) = ctx.by_big_round.get(b as usize) {
            for &(a, v, r) in steps {
                let (a, v) = (a as usize, v as usize);
                let li = local_of[v];
                if li == usize::MAX {
                    continue;
                }
                debug_assert_eq!(steps_done[a][li], r, "steps execute in order");
                if r == 0 {
                    inbox.clear();
                } else {
                    buffers[a * own_n + li].take(r - 1, &mut inbox);
                }
                // canonical inbox order, matching the reference runner
                inbox.sort();
                obs.on_step(inbox.len());
                let sends = machines[a][li].step(&inbox);
                steps_done[a][li] = r + 1;
                shard.steps += 1;
                let me_node = NodeId(v as u32);
                let mut sent_to: Vec<NodeId> = Vec::new();
                for snd in sends {
                    let valid = g.find_edge(me_node, snd.to).is_some()
                        && snd.payload.len() <= config.message_bytes
                        && !sent_to.contains(&snd.to);
                    if !valid {
                        stats.invalid_sends += 1;
                        obs.on_invalid_send();
                        continue;
                    }
                    sent_to.push(snd.to);
                    let edge = g.find_edge(me_node, snd.to).expect("validated");
                    let arc = g.arc_from(edge, me_node);
                    let idx = arc.index();
                    let flight = Flight {
                        dst: snd.to,
                        algo: a as u32,
                        round: r,
                        from: me_node,
                        payload: snd.payload,
                    };
                    let owner = ctx.arc_owner[idx] as usize;
                    if owner == me {
                        let q = &mut queues[idx];
                        if q.is_empty() {
                            active_arcs.push(idx);
                        }
                        q.push_back(flight);
                        stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                        obs.on_inject(idx, q.len());
                    } else {
                        shard.cross_sent += 1;
                        obs.on_cross_send();
                        ctx.outboxes[me * s + owner]
                            .lock()
                            .expect("outbox lock")
                            .push((idx, flight));
                    }
                }
            }
        }
        shard.step_nanos += t_step.elapsed().as_nanos() as u64;

        // All outboxes for big-round b are complete.
        barrier_wait(ctx.barrier, &mut obs);

        let t_drain = Instant::now();
        // 2. Merge cross-shard arrivals into the owned queues — the shard
        // boundary crossing, once per big-round. Within a big-round the
        // queue's push set (and per-arc order) equals the sequential one.
        for src in 0..s {
            if src == me {
                continue;
            }
            let incoming =
                std::mem::take(&mut *ctx.outboxes[src * s + me].lock().expect("outbox lock"));
            for (idx, flight) in incoming {
                let q = &mut queues[idx];
                if q.is_empty() {
                    active_arcs.push(idx);
                }
                q.push_back(flight);
                stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                obs.on_inject(idx, q.len());
            }
        }

        // 3. Drain the owned queues for phase_len engine rounds, exactly as
        // the sequential executor does. Lateness checks read steps_done of
        // the destination node, which this shard owns — no cross-shard
        // progress is ever consulted.
        for _ in 0..config.phase_len {
            let arcs = std::mem::take(&mut active_arcs);
            for arc_idx in arcs {
                let Some(f) = queues[arc_idx].pop_front() else {
                    continue;
                };
                if !queues[arc_idx].is_empty() {
                    active_arcs.push(arc_idx);
                }
                let (a, li) = (f.algo as usize, local_of[f.dst.index()]);
                debug_assert_ne!(li, usize::MAX, "arc delivered to a foreign shard");
                if config.record_departures {
                    departures[a].insert(
                        TimedArc {
                            round: f.round,
                            arc: das_graph::Arc::from_index(arc_idx),
                        },
                        engine_round as u32,
                    );
                }
                let late = steps_done[a][li] >= f.round + 2;
                if late {
                    stats.late_messages += 1;
                } else {
                    buffers[a * own_n + li].push(f.round, f.from, f.payload);
                    stats.delivered += 1;
                }
                obs.on_deliver(engine_round, late);
                last_activity_round = engine_round + 1;
            }
            engine_round += 1;
            if engine_round > config.max_engine_rounds {
                // every worker's engine-round counter is identical, so all
                // workers take this branch in lockstep — nobody is left
                // waiting at a barrier
                return Err(ExecError::RoundCapExceeded {
                    cap: config.max_engine_rounds,
                    big_round: b,
                });
            }
        }
        shard.drain_nanos += t_drain.elapsed().as_nanos() as u64;
        obs.end_big_round(b);

        // 4. Termination: post activity, agree on it, and let worker 0
        // reset the counter strictly after everyone has read it (barrier)
        // and strictly before anyone can post again (the next step-phase
        // barrier).
        if !active_arcs.is_empty() {
            ctx.active_workers.fetch_add(1, Ordering::SeqCst);
        }
        barrier_wait(ctx.barrier, &mut obs);
        let any_active = ctx.active_workers.load(Ordering::SeqCst) > 0;
        b += 1;
        let done = b > ctx.last_step_round && !any_active;
        barrier_wait(ctx.barrier, &mut obs);
        if me == 0 {
            ctx.active_workers.store(0, Ordering::SeqCst);
        }
        if done {
            break;
        }
    }

    shard.delivered = stats.delivered;
    let outputs = machines
        .iter()
        .map(|per_node| per_node.iter().map(|m| m.output()).collect())
        .collect();
    Ok(ShardOutput {
        own,
        outputs,
        departures,
        stats,
        last_activity_round,
        big_rounds: b,
        shard,
        obs: obs.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::DasProblem;
    use crate::synthetic::{FloodBall, RelayChain};
    use das_graph::generators;

    #[test]
    fn single_algorithm_zero_delay_matches_reference() {
        let g = generators::path(8);
        let p = DasProblem::new(&g, vec![Box::new(RelayChain::new(0, &g))], 3);
        let units = vec![Unit::global(0, 0, 8)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        let reference = &p.references().unwrap()[0];
        assert_eq!(outcome.outputs[0], reference.outputs);
        assert_eq!(outcome.stats.late_messages, 0);
        // one message per round, phase 1: 7 rounds of activity
        assert_eq!(outcome.stats.delivered, 7);
    }

    #[test]
    fn two_relays_same_path_collide_with_zero_delays() {
        // both relays want the same edge in the same round; with phase 1 the
        // second message spills and arrives late
        let g = generators::path(6);
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::new(0, &g)),
                Box::new(RelayChain::new(1, &g)),
            ],
            3,
        );
        let units = vec![Unit::global(0, 0, 6), Unit::global(1, 0, 6)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0), p.algo_seed(1)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert!(outcome.stats.late_messages > 0, "collision must surface");
    }

    #[test]
    fn two_relays_staggered_delays_both_correct() {
        let g = generators::path(6);
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::new(0, &g)),
                Box::new(RelayChain::new(1, &g)),
            ],
            3,
        );
        // delay the second by one big-round: the token trains never collide
        let units = vec![Unit::global(0, 0, 6), Unit::global(1, 1, 6)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0), p.algo_seed(1)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.stats.late_messages, 0);
        let refs = p.references().unwrap();
        assert_eq!(outcome.outputs[0], refs[0].outputs);
        assert_eq!(outcome.outputs[1], refs[1].outputs);
        // length: second relay starts at big-round 1, runs 5 rounds
        assert_eq!(outcome.stats.engine_rounds, 6);
    }

    #[test]
    fn departures_form_valid_simulation() {
        let g = generators::path(6);
        let p = DasProblem::new(&g, vec![Box::new(RelayChain::new(0, &g))], 3);
        let units = vec![Unit::global(0, 2, 6)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0)],
            &units,
            &ExecutorConfig::default().with_phase_len(3),
        )
        .unwrap();
        let map = &outcome.departures.as_ref().unwrap()[0];
        let pattern = &p.references().unwrap()[0].pattern;
        das_pattern::verify_simulation(&g, pattern, map).unwrap();
    }

    #[test]
    fn truncation_limits_execution() {
        let g = generators::path(10);
        let p = DasProblem::new(&g, vec![Box::new(FloodBall::new(0, &g, NodeId(0), 9))], 1);
        // truncate everyone at 3 rounds: the flood stops after 3 hops
        let units = vec![Unit {
            algo: 0,
            delay: vec![0; 10],
            stride: 1,
            trunc: vec![3; 10],
        }];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        // nodes 0..3 heard (they step rounds 0..3), beyond never stepped
        let out = &outcome.outputs[0];
        assert_eq!(out[2].as_ref().unwrap()[0], 1);
        assert_eq!(out[6].as_ref().unwrap()[0], 0);
    }

    #[test]
    fn two_units_earliest_wins_and_dedups() {
        let g = generators::path(5);
        let p = DasProblem::new(&g, vec![Box::new(RelayChain::new(0, &g))], 2);
        // the same algorithm scheduled twice with different delays: the
        // canonical machine steps at the earlier one; total messages equal
        // one copy (dedup)
        let units = vec![Unit::global(0, 3, 5), Unit::global(0, 1, 5)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.stats.delivered, 4, "one copy of each message");
        assert_eq!(outcome.outputs[0], p.references().unwrap()[0].outputs);
    }

    #[test]
    fn round_cap_surfaces_as_typed_error_not_panic() {
        // two colliding relays need ~10 engine rounds; cap at 3
        let g = generators::path(6);
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::new(0, &g)),
                Box::new(RelayChain::new(1, &g)),
            ],
            3,
        );
        let units = vec![Unit::global(0, 0, 6), Unit::global(1, 0, 6)];
        let config = ExecutorConfig {
            max_engine_rounds: 3,
            ..ExecutorConfig::default()
        };
        let seeds = [p.algo_seed(0), p.algo_seed(1)];
        let err = Executor::run(&g, p.algorithms(), &seeds, &units, &config).unwrap_err();
        assert_eq!(
            err,
            ExecError::RoundCapExceeded {
                cap: 3,
                big_round: 3
            }
        );
        assert!(err.to_string().contains("cap 3"));
        // the sharded path reports the identical error
        let sharded_err =
            Executor::run_sharded(&g, p.algorithms(), &seeds, &units, &config.with_shards(3))
                .unwrap_err();
        assert_eq!(sharded_err, err);
    }

    #[test]
    fn sharded_outcome_matches_sequential_byte_for_byte() {
        let g = generators::grid(4, 4);
        // snake route over the grid: left-to-right on even rows,
        // right-to-left on odd (consecutive hops are grid edges)
        let route: Vec<NodeId> = (0..4)
            .flat_map(|row: u32| {
                let cols: Vec<u32> = if row.is_multiple_of(2) {
                    (0..4).collect()
                } else {
                    (0..4).rev().collect()
                };
                cols.into_iter().map(move |c| NodeId(row * 4 + c))
            })
            .collect();
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::along(0, &g, route)) as Box<dyn BlackBoxAlgorithm>,
                Box::new(FloodBall::new(1, &g, NodeId(5), 3)),
            ],
            9,
        );
        let seeds = [p.algo_seed(0), p.algo_seed(1)];
        let units = vec![Unit::global(0, 0, 16), Unit::global(1, 1, 16)];
        let config = ExecutorConfig::default().with_phase_len(2);
        let fused = Executor::run(&g, p.algorithms(), &seeds, &units, &config).unwrap();
        for shards in [1, 2, 5, 16, 64] {
            let (sharded, report) = Executor::run_sharded(
                &g,
                p.algorithms(),
                &seeds,
                &units,
                &config.clone().with_shards(shards),
            )
            .unwrap();
            assert_eq!(
                format!("{fused:?}"),
                format!("{sharded:?}"),
                "shards = {shards}"
            );
            assert_eq!(report.shards, shards.min(16));
            assert_eq!(report.per_shard.len(), report.shards);
            let sent: u64 = report.per_shard.iter().map(|s| s.cross_sent).sum();
            assert_eq!(sent, report.cross_shard_messages);
            if shards == 1 {
                assert_eq!(report.cross_shard_messages, 0);
            }
            let steps: u64 = report.per_shard.iter().map(|s| s.steps).sum();
            assert!(steps > 0, "workers actually stepped machines");
        }
    }

    #[test]
    fn row_and_columnar_engines_agree_byte_for_byte() {
        let g = generators::grid(4, 4);
        // snake route over the grid, as in the sharded byte-identity test
        let route: Vec<NodeId> = (0..4)
            .flat_map(|row: u32| {
                let cols: Vec<u32> = if row.is_multiple_of(2) {
                    (0..4).collect()
                } else {
                    (0..4).rev().collect()
                };
                cols.into_iter().map(move |c| NodeId(row * 4 + c))
            })
            .collect();
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::along(0, &g, route.clone())) as Box<dyn BlackBoxAlgorithm>,
                Box::new(RelayChain::along(1, &g, route)),
                Box::new(FloodBall::new(2, &g, NodeId(5), 3)),
            ],
            11,
        );
        let seeds = [p.algo_seed(0), p.algo_seed(1), p.algo_seed(2)];
        let units = vec![
            Unit::global(0, 0, 16),
            Unit::global(1, 0, 16),
            Unit::global(2, 1, 16),
        ];
        for phase_len in [1, 2, 5] {
            let base = ExecutorConfig::default().with_phase_len(phase_len);
            let row = Executor::run(
                &g,
                p.algorithms(),
                &seeds,
                &units,
                &base.clone().with_engine(EngineKind::Row),
            )
            .unwrap();
            let col = Executor::run(
                &g,
                p.algorithms(),
                &seeds,
                &units,
                &base.clone().with_engine(EngineKind::Columnar),
            )
            .unwrap();
            assert_eq!(
                format!("{row:?}"),
                format!("{col:?}"),
                "phase_len = {phase_len}"
            );
            let batched = Executor::run(
                &g,
                p.algorithms(),
                &seeds,
                &units,
                &base.clone().with_engine(EngineKind::ColumnarBatched),
            )
            .unwrap();
            assert_eq!(
                format!("{row:?}"),
                format!("{batched:?}"),
                "phase_len = {phase_len} (batched)"
            );
        }
    }

    #[test]
    fn row_and_columnar_engines_agree_on_the_round_cap_error() {
        let g = generators::path(6);
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::new(0, &g)),
                Box::new(RelayChain::new(1, &g)),
            ],
            3,
        );
        let units = vec![Unit::global(0, 0, 6), Unit::global(1, 0, 6)];
        let seeds = [p.algo_seed(0), p.algo_seed(1)];
        let config = ExecutorConfig {
            max_engine_rounds: 3,
            ..ExecutorConfig::default()
        };
        let row = Executor::run(
            &g,
            p.algorithms(),
            &seeds,
            &units,
            &config.clone().with_engine(EngineKind::Row),
        )
        .unwrap_err();
        let col = Executor::run(
            &g,
            p.algorithms(),
            &seeds,
            &units,
            &config.clone().with_engine(EngineKind::Columnar),
        )
        .unwrap_err();
        assert_eq!(row, col);
        let batched = Executor::run(
            &g,
            p.algorithms(),
            &seeds,
            &units,
            &config.with_engine(EngineKind::ColumnarBatched),
        )
        .unwrap_err();
        assert_eq!(row, batched);
    }

    #[test]
    fn stride_spreads_steps() {
        let g = generators::path(4);
        let p = DasProblem::new(&g, vec![Box::new(RelayChain::new(0, &g))], 2);
        let units = vec![Unit {
            algo: 0,
            delay: vec![0; 4],
            stride: 3,
            trunc: vec![u32::MAX; 4],
        }];
        let plan = StepPlan::build(&g, p.algorithms(), &units);
        assert_eq!(plan.steps(0, NodeId(0)), &[0, 3, 6]);
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.outputs[0], p.references().unwrap()[0].outputs);
    }
}
