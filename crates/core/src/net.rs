//! Networked coordinator/worker execution: the sharded executor's
//! big-round barrier promoted to a real network barrier.
//!
//! The in-process sharded executor ([`crate::Executor::run_sharded`])
//! proved that a DAS execution partitions cleanly at big-round boundaries:
//! within a big-round every worker touches only its own nodes and the arcs
//! it owns, and cross-shard messages move exactly once per big-round. This
//! module runs the same protocol over TCP, one OS process per shard:
//!
//! * The **coordinator** owns the plan. It accepts one connection per
//!   shard, handshakes (protocol version + problem fingerprint), ships each
//!   worker its slice of the [`SchedulePlan`] (guarded by a slice hash next
//!   to the full-plan hash) plus the shard assignment, then relays
//!   cross-shard outboxes at every big-round boundary and collects the
//!   per-shard outcomes at the end. Stragglers that JOIN after every slot
//!   is assigned are turned away with a typed REJECT
//!   ([`ExecError::LateJoin`]).
//! * A **worker** builds the identical problem locally (same graph,
//!   workload, and tape seed — enforced by the fingerprint), recomputes the
//!   same degree-balanced [`Partition`], and runs the row-engine shard loop
//!   verbatim, with the three in-process barriers replaced by two framed
//!   round-trips (OUTBOX → INBOX, ACTIVITY → DECISION).
//!
//! ## The network-barrier invariant
//!
//! Byte-identity of the [`ScheduleOutcome`] extends verbatim from the
//! threaded path because the wire protocol preserves exactly the state the
//! in-process barriers preserve — and nothing else crosses a shard
//! boundary:
//!
//! * each worker steps its nodes in the same global `(algorithm, node,
//!   round)` order the fused executor uses, so per-arc push order within a
//!   big-round is the sequential order (every arc has a unique source
//!   node, owned by exactly one worker);
//! * the coordinator routes each destination's INBOX by **ascending source
//!   shard**, each group in send order — the exact merge order of the
//!   in-process outbox sweep (`for src in 0..s`);
//! * lateness checks read only the destination worker's own `steps_done`,
//!   which never crosses the wire;
//! * the termination decision is computed from the same `(big_round,
//!   any_active)` pair the in-process 3-barrier protocol agrees on.
//!
//! ## Robustness
//!
//! Every blocking wait is deadline-bounded ([`NetConfig::io_timeout_ms`]):
//! a dead peer surfaces as a typed [`ExecError`] — never a hang. Worker
//! connects retry with bounded backoff; frames carry a length prefix
//! checked against [`NetConfig::max_frame_bytes`]; a coordinator Ctrl-C
//! (see [`install_ctrl_c`]) aborts all workers gracefully, and a second
//! Ctrl-C aborts the process.

use crate::exec::{
    ArcFifo, ExecError, ExecStats, ExecutorConfig, Flight, ShardReport, ShardStats, StepPlan,
    TagWindow,
};
use crate::plan::{SchedError, SchedulePlan};
use crate::problem::DasProblem;
use crate::schedule::ScheduleOutcome;
use crate::shard::Partition;
use das_graph::NodeId;
use das_pattern::{SimulationMap, TimedArc};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Version of the wire protocol. A coordinator rejects workers announcing
/// any other version with [`ExecError::VersionMismatch`].
///
/// v2: ASSIGN ships a per-shard plan *slice* (guarded by its own hash next
/// to the full-plan hash) instead of the full plan, late JOINs get a typed
/// REJECT, and the serve-path frames (HELLO/CAPS/SUBMIT/…) exist.
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame kinds of the wire protocol (the byte after the length prefix).
/// Public so integration tests can speak the protocol against real
/// endpoints without linking crate internals.
pub mod wire {
    /// worker → coordinator: `version: u32, problem_fingerprint: u64`.
    pub const JOIN: u8 = 1;
    /// coordinator → worker: `shard: u32, shards: u32, plan_hash: u64
    /// (full plan), slice_hash: u64, slice_json: bytes, of_node: u32
    /// list`. The slice is the full plan restricted to the shard's nodes
    /// ([`crate::SchedulePlan::slice_for_shard`]).
    pub const ASSIGN: u8 = 2;
    /// coordinator → worker: `code: u32, ours: u64, theirs: u64` — the
    /// handshake failed; decodes to a typed error worker-side.
    pub const REJECT: u8 = 3;
    /// worker → coordinator: `big_round: u64`, then per destination shard
    /// a group of cross-shard flights staged during the step phase.
    pub const OUTBOX: u8 = 4;
    /// coordinator → worker: `big_round: u64`, the flights bound for this
    /// shard, pre-merged in ascending source-shard order.
    pub const INBOX: u8 = 5;
    /// worker → coordinator: `big_round: u64, active: u8` — whether this
    /// shard still holds undrained arcs after the drain phase.
    pub const ACTIVITY: u8 = 6;
    /// coordinator → worker: `big_round: u64, done: u8` — the agreed
    /// termination decision for this big-round.
    pub const DECISION: u8 = 7;
    /// worker → coordinator: outputs, departures, and stats of the
    /// finished shard.
    pub const DONE: u8 = 8;
    /// worker → coordinator: `cap: u64, big_round: u64` — the engine
    /// round cap fired (all workers hit it in lockstep).
    pub const ERROR: u8 = 9;
    /// coordinator → worker: `reason: bytes` — stand down; the run is
    /// being torn down.
    pub const ABORT: u8 = 10;

    /// client → server: `job_id: u64, kind: u8, source: u32, depth: u32,
    /// declared_dilation: u32, declared_congestion: u64,
    /// declared_payload: u32` — submit one job with its declared budgets.
    pub const SUBMIT: u8 = 11;
    /// server → client: `job_id: u64, queued: u64` — the job passed
    /// admission and is queued for the next batch.
    pub const ACCEPTED: u8 = 12;
    /// server → client: `job_id: u64, code: u32, declared: u64,
    /// capacity: u64` — admission refused the job; `code` names the
    /// violated budget (`BUDGET_*`) or `MALFORMED`.
    pub const REJECTED: u8 = 13;
    /// server → client: `job_id: u64, status: u8, schedule_rounds: u64,
    /// batch_k: u32, delivered: u64, late: u64, measured_dilation: u32,
    /// measured_congestion: u64, outputs: u32 count + per node
    /// `tag: u8 [, bytes]`` — the job's outcome after batch execution.
    pub const RESULT: u8 = 14;
    /// client → server: `version: u32, graph_fingerprint: u64` — the
    /// serve-path handshake (the client has no problem yet, only a graph).
    pub const HELLO: u8 = 15;
    /// server → client: `version: u32, graph_fingerprint: u64,
    /// tape_seed: u64, batch_max: u32, pool_shards: u32,
    /// max_dilation: u32, max_congestion: u64, max_payload: u32` — the
    /// server's advertised capacity, in reply to HELLO.
    pub const CAPS: u8 = 16;

    /// REJECT code: protocol version mismatch.
    pub const REJECT_VERSION: u32 = 1;
    /// REJECT code: problem fingerprint mismatch.
    pub const REJECT_PROBLEM: u32 = 2;
    /// REJECT code: the worker JOINed after every shard slot was assigned.
    pub const REJECT_FULL: u32 = 3;

    /// REJECTED code: declared dilation exceeds the advertised capacity.
    pub const BUDGET_DILATION: u32 = 1;
    /// REJECTED code: declared congestion exceeds the advertised capacity.
    pub const BUDGET_CONGESTION: u32 = 2;
    /// REJECTED code: declared payload exceeds the advertised capacity.
    pub const BUDGET_PAYLOAD: u32 = 3;
    /// REJECTED code: the SUBMIT body itself was malformed (unknown job
    /// kind, out-of-range source node).
    pub const MALFORMED: u32 = 4;
}

// ---------------------------------------------------------------- hashing

/// FNV-1a 64-bit hash, used for the plan hash and problem fingerprint.
/// Stable across platforms and dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The hash shipped in the ASSIGN frame: FNV-1a over the plan's canonical
/// JSON bytes. Workers recompute it over the received bytes and refuse a
/// mismatch with [`ExecError::PlanHashMismatch`].
pub fn plan_hash(plan: &SchedulePlan) -> u64 {
    fnv1a(plan.to_json().as_bytes())
}

/// A structural fingerprint of the problem: node count, edge list, tape
/// seed, and per-algorithm `(aid, rounds)`. Coordinator and workers build
/// their problems independently from identical CLI flags; the fingerprint
/// catches a divergence (different graph, workload, or seed) at handshake
/// time instead of as silent wrong outputs.
pub fn problem_fingerprint(problem: &DasProblem<'_>) -> u64 {
    let g = problem.graph();
    let mut w = ByteWriter::new();
    w.u64(g.node_count() as u64);
    for e in g.edges() {
        let (a, b) = g.endpoints(e);
        w.u32(a.0);
        w.u32(b.0);
    }
    w.u64(problem.tape_seed());
    w.u64(problem.k() as u64);
    for a in problem.algorithms() {
        w.u64(a.aid().0);
        w.u32(a.rounds());
    }
    fnv1a(&w.buf)
}

/// A structural fingerprint of just the graph (node count + edge list):
/// the serve-path analogue of [`problem_fingerprint`]. A serve client has
/// no [`DasProblem`] yet — jobs arrive later — so the HELLO/CAPS handshake
/// checks only that both sides were launched on the same graph spec.
pub fn graph_fingerprint(g: &das_graph::Graph) -> u64 {
    let mut w = ByteWriter::new();
    w.u64(g.node_count() as u64);
    for e in g.edges() {
        let (a, b) = g.endpoints(e);
        w.u32(a.0);
        w.u32(b.0);
    }
    fnv1a(&w.buf)
}

// ---------------------------------------------------------------- codec

/// Little-endian append-only encoder for frame bodies.
pub(crate) struct ByteWriter {
    pub(crate) buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Little-endian cursor over a received frame body. Every read is
/// bounds-checked; a short body decodes to [`ExecError::TruncatedFrame`].
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn truncated(&self, what: &str) -> ExecError {
        ExecError::TruncatedFrame {
            detail: format!("body ended while decoding {what}"),
        }
    }

    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], ExecError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(self.truncated(what)),
        }
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, ExecError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, ExecError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, ExecError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn bytes(&mut self, what: &str) -> Result<&'a [u8], ExecError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }
}

// ---------------------------------------------------------------- config

/// Tunables of the networked path. Every blocking wait uses
/// `io_timeout_ms`, so no failure mode can hang either side.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Deadline for each blocking network wait (accept, read, write), in
    /// milliseconds. Also bounds the coordinator's wait for all workers to
    /// connect.
    pub io_timeout_ms: u64,
    /// How many times a worker retries its initial connect before giving
    /// up with [`ExecError::NetTimeout`].
    pub connect_retries: u32,
    /// Sleep between connect attempts, in milliseconds.
    pub connect_backoff_ms: u64,
    /// Upper bound on a single frame body; larger length prefixes are
    /// rejected before any allocation ([`ExecError::Net`]).
    pub max_frame_bytes: usize,
    /// Cooperative-shutdown flag: when set (e.g. by [`install_ctrl_c`]),
    /// the coordinator aborts all workers at the next protocol boundary
    /// and returns [`ExecError::Aborted`].
    pub stop: Option<Arc<AtomicBool>>,
    /// Optional live hub (coordinator side): per-worker cumulative totals
    /// piggybacked on `ACTIVITY` frames and per-link traffic snapshots are
    /// published into it every big-round. Publication is write-only and
    /// never adds frames or blocks the protocol, so the outcome is
    /// byte-identical with or without a hub attached.
    pub live: Option<Arc<das_obs::LiveHub>>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            io_timeout_ms: 30_000,
            connect_retries: 40,
            connect_backoff_ms: 250,
            max_frame_bytes: 64 << 20,
            stop: None,
            live: None,
        }
    }
}

impl NetConfig {
    /// Sets the per-wait deadline in milliseconds (clamped to ≥ 1).
    pub fn with_io_timeout_ms(mut self, ms: u64) -> Self {
        self.io_timeout_ms = ms.max(1);
        self
    }

    /// Attaches a cooperative-shutdown flag.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Attaches a live hub for coordinator-side telemetry publication.
    #[must_use]
    pub fn with_live(mut self, live: Option<Arc<das_obs::LiveHub>>) -> Self {
        self.live = live;
        self
    }

    fn io_timeout(&self) -> Duration {
        Duration::from_millis(self.io_timeout_ms.max(1))
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst))
    }
}

/// Per-connection traffic counters (counted on the side that holds the
/// connection; frame = length prefix + kind + body).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Frames written to the peer.
    pub frames_sent: u64,
    /// Frames read from the peer.
    pub frames_received: u64,
    /// Bytes written, including frame headers.
    pub bytes_sent: u64,
    /// Bytes read, including frame headers.
    pub bytes_received: u64,
}

/// What a networked execution reports beyond the (partition-independent)
/// [`ScheduleOutcome`]: the merged [`ShardReport`] plus coordinator-side
/// per-worker traffic, in shard order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetReport {
    /// The merged per-shard report, exactly as the in-process sharded
    /// executor returns it.
    pub shard: ShardReport,
    /// Coordinator-side traffic per worker connection, in shard order
    /// (`bytes_sent` = coordinator → worker).
    pub traffic: Vec<LinkTraffic>,
}

/// What [`run_worker`] reports once its shard completes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// The shard this worker was assigned.
    pub shard: usize,
    /// Total shards in the run.
    pub shards: usize,
    /// Machine steps this worker executed.
    pub steps: u64,
    /// Messages delivered on arcs this worker owned.
    pub delivered: u64,
    /// Messages this worker sent to other shards.
    pub cross_sent: u64,
    /// Big-rounds executed (identical on every worker).
    pub big_rounds: u64,
    /// Worker-side traffic counters for the coordinator link.
    pub traffic: LinkTraffic,
}

// ---------------------------------------------------------------- framing

const FRAME_HEADER: usize = 5; // u32 body length + u8 kind

/// One framed, deadline-bounded, traffic-counted TCP connection.
pub(crate) struct FramedConn {
    stream: TcpStream,
    traffic: LinkTraffic,
    timeout: Duration,
    max_frame: usize,
}

impl FramedConn {
    pub(crate) fn new(stream: TcpStream, net: &NetConfig) -> Result<Self, ExecError> {
        let timeout = net.io_timeout();
        stream.set_nodelay(true).map_err(|e| ExecError::Net {
            detail: format!("set_nodelay: {e}"),
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| ExecError::Net {
                detail: format!("set timeouts: {e}"),
            })?;
        Ok(FramedConn {
            stream,
            traffic: LinkTraffic::default(),
            timeout,
            max_frame: net.max_frame_bytes,
        })
    }

    fn io_error(&self, e: std::io::Error, during: &str) -> ExecError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                ExecError::NetTimeout {
                    during: during.to_string(),
                    ms: self.timeout.as_millis() as u64,
                }
            }
            std::io::ErrorKind::UnexpectedEof => ExecError::TruncatedFrame {
                detail: format!("stream ended mid-frame during {during}"),
            },
            _ => ExecError::Net {
                detail: format!("{during}: {e}"),
            },
        }
    }

    /// Waits up to `wait` for the next frame to start arriving, without
    /// consuming anything: `Ok(true)` means bytes are ready (or the peer
    /// closed — the following [`FramedConn::recv`] will classify that),
    /// `Ok(false)` means the deadline passed quietly. The connection's
    /// configured read timeout is restored before returning, so this
    /// composes with `recv` to make a long idle wait interruptible.
    pub(crate) fn poll_readable(&mut self, wait: Duration) -> Result<bool, ExecError> {
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))
            .map_err(|e| ExecError::Net {
                detail: format!("set poll timeout: {e}"),
            })?;
        let mut probe = [0u8; 1];
        let ready = match self.stream.peek(&mut probe) {
            Ok(_) => Ok(true),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(false)
            }
            Err(e) => Err(ExecError::Net {
                detail: format!("poll: {e}"),
            }),
        };
        self.stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| ExecError::Net {
                detail: format!("restore timeout: {e}"),
            })?;
        ready
    }

    /// Writes one frame: `[u32 LE body len][u8 kind][body]`.
    pub(crate) fn send(&mut self, kind: u8, body: &[u8], during: &str) -> Result<(), ExecError> {
        let mut header = [0u8; FRAME_HEADER];
        header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
        header[4] = kind;
        self.stream
            .write_all(&header)
            .and_then(|()| self.stream.write_all(body))
            .and_then(|()| self.stream.flush())
            .map_err(|e| self.io_error(e, during))?;
        self.traffic.frames_sent += 1;
        self.traffic.bytes_sent += (FRAME_HEADER + body.len()) as u64;
        Ok(())
    }

    /// Reads one frame. A clean close at a frame boundary reads as a
    /// connection close ([`ExecError::Net`], upgraded to
    /// [`ExecError::WorkerDisconnected`] by the coordinator); a close
    /// mid-frame reads as [`ExecError::TruncatedFrame`].
    pub(crate) fn recv(&mut self, during: &str) -> Result<(u8, Vec<u8>), ExecError> {
        let mut header = [0u8; FRAME_HEADER];
        let mut filled = 0;
        while filled < FRAME_HEADER {
            match self.stream.read(&mut header[filled..]) {
                Ok(0) => {
                    return Err(if filled == 0 {
                        ExecError::Net {
                            detail: format!("connection closed by peer during {during}"),
                        }
                    } else {
                        ExecError::TruncatedFrame {
                            detail: format!("stream ended mid-header during {during}"),
                        }
                    });
                }
                Ok(got) => filled += got,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(self.io_error(e, during)),
            }
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let kind = header[4];
        if len > self.max_frame {
            return Err(ExecError::Net {
                detail: format!(
                    "frame of {len} bytes exceeds the {} byte limit during {during}",
                    self.max_frame
                ),
            });
        }
        let mut body = vec![0u8; len];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => ExecError::TruncatedFrame {
                    detail: format!("stream ended mid-body during {during}"),
                },
                _ => self.io_error(e, during),
            })?;
        self.traffic.frames_received += 1;
        self.traffic.bytes_received += (FRAME_HEADER + len) as u64;
        Ok((kind, body))
    }
}

/// Upgrades connection-level failures on an established worker link to
/// [`ExecError::WorkerDisconnected`] (a killed worker closes its socket);
/// protocol-level and timeout errors pass through unchanged.
fn for_worker(e: ExecError, shard: usize) -> ExecError {
    match e {
        ExecError::Net { detail } | ExecError::TruncatedFrame { detail } => {
            ExecError::WorkerDisconnected { shard, detail }
        }
        other => other,
    }
}

// ---------------------------------------------------------------- Ctrl-C

static CTRL_C: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    // async-signal-safe: atomic loads/stores and abort only
    if let Some(flag) = CTRL_C.get() {
        if flag.swap(true, Ordering::SeqCst) {
            // second Ctrl-C: the user wants out *now*
            std::process::abort();
        }
    }
}

/// Installs a SIGINT handler (Unix; a no-op flag elsewhere) and returns
/// the flag it sets. Wire the flag into [`NetConfig::with_stop`]: the
/// first Ctrl-C makes the coordinator abort all workers gracefully at the
/// next protocol boundary; a second Ctrl-C aborts the process.
pub fn install_ctrl_c() -> Arc<AtomicBool> {
    let flag = CTRL_C
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
    flag
}

// ---------------------------------------------------------------- coordinator

/// Executes a plan over networked workers: the networked analogue of
/// [`crate::execute_plan_sharded`], with byte-identical
/// [`ScheduleOutcome`].
///
/// The coordinator waits (deadline-bounded) for one connection per shard
/// on `listener` — `workers` is clamped to the node count exactly as the
/// in-process partition clamps shards — then drives the big-round relay
/// until every shard reports done.
///
/// # Errors
/// [`SchedError::InvalidPlan`] if the plan fails validation, or
/// [`SchedError::Exec`] with a typed [`ExecError`]: the usual
/// [`ExecError::RoundCapExceeded`] (propagated from workers in lockstep),
/// or a network failure — worker disconnect, truncated frame, handshake
/// mismatch, deadline expiry, abort.
pub fn execute_plan_networked(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    workers: usize,
    listener: TcpListener,
    net: &NetConfig,
) -> Result<(ScheduleOutcome, NetReport), SchedError> {
    plan.validate(problem)?;
    let (mut outcome, report) = run_coordinator(problem, plan, workers, listener, net)?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report))
}

fn run_coordinator(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    workers: usize,
    listener: TcpListener,
    net: &NetConfig,
) -> Result<(ScheduleOutcome, NetReport), ExecError> {
    if workers == 0 {
        return Err(ExecError::Net {
            detail: "a networked run needs at least one worker".to_string(),
        });
    }
    let g = problem.graph();
    let part = Partition::degree_balanced(g, workers);
    let s = part.shards();
    let mut conns = accept_workers(problem, plan, &part, &listener, net)?;
    // Keep listening for the rest of the run: a worker that JOINs after
    // every slot is assigned gets a typed REJECT_FULL instead of a
    // connection-refused (late-JOIN doorman).
    let doorman_stop = Arc::new(AtomicBool::new(false));
    let doorman = spawn_doorman(listener, s, net.clone(), doorman_stop.clone());
    let result = coordinator_protocol(problem, plan, &part, &mut conns, net);
    if let Err(ref e) = result {
        // best-effort teardown so surviving workers fail fast with a
        // typed Aborted instead of waiting out their own deadlines
        let mut w = ByteWriter::new();
        w.bytes(e.to_string().as_bytes());
        for c in conns.iter_mut() {
            let _ = c.send(wire::ABORT, &w.buf, "abort broadcast");
        }
    }
    doorman_stop.store(true, Ordering::SeqCst);
    let _ = doorman.join();
    let outcome = result?;
    let traffic: Vec<LinkTraffic> = conns.iter().map(|c| c.traffic.clone()).collect();
    debug_assert_eq!(traffic.len(), s);
    if let Some(hub) = &net.live {
        // final authoritative snapshot: includes the DECISION and DONE
        // frames the mid-run barrier snapshots have not seen yet
        hub.publish_links(
            traffic
                .iter()
                .enumerate()
                .map(|(shard, t)| das_obs::LinkLive {
                    shard,
                    frames_sent: t.frames_sent,
                    bytes_sent: t.bytes_sent,
                    frames_received: t.frames_received,
                    bytes_received: t.bytes_received,
                })
                .collect(),
        );
    }
    let (outcome, shard) = outcome;
    Ok((outcome, NetReport { shard, traffic }))
}

/// Accepts and handshakes one connection per shard, in shard order. The
/// listener is polled non-blocking under the configured deadline so a
/// stop request (Ctrl-C) or a missing worker can never hang the accept
/// loop.
fn accept_workers(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    part: &Partition,
    listener: &TcpListener,
    net: &NetConfig,
) -> Result<Vec<FramedConn>, ExecError> {
    let s = part.shards();
    let fingerprint = problem_fingerprint(problem);
    let plan_hash = plan_hash(plan);
    listener.set_nonblocking(true).map_err(|e| ExecError::Net {
        detail: format!("set_nonblocking: {e}"),
    })?;
    let deadline = Instant::now() + net.io_timeout();
    let mut conns: Vec<FramedConn> = Vec::with_capacity(s);
    while conns.len() < s {
        if net.stopped() {
            return Err(ExecError::Aborted {
                detail: "interrupted while waiting for workers".to_string(),
            });
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false).map_err(|e| ExecError::Net {
                    detail: format!("set_blocking: {e}"),
                })?;
                let shard = conns.len();
                let mut conn = FramedConn::new(stream, net)?;
                // each worker gets only its own slice of the plan: O(plan/s)
                // on the wire instead of O(plan) per worker
                let slice_json = plan.slice_for_shard(part.of_node(), shard as u32).to_json();
                handshake_worker(
                    &mut conn,
                    shard,
                    s,
                    fingerprint,
                    plan_hash,
                    &slice_json,
                    part,
                )?;
                conns.push(conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(ExecError::NetTimeout {
                        during: format!(
                            "waiting for workers to connect ({} of {s} joined)",
                            conns.len()
                        ),
                        ms: net.io_timeout_ms,
                    });
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                return Err(ExecError::Net {
                    detail: format!("accept: {e}"),
                })
            }
        }
    }
    Ok(conns)
}

/// Owns the listener for the rest of the run and turns stragglers away:
/// any connection accepted after all shard slots are assigned gets its one
/// frame read (best-effort) and a `REJECT_FULL` reply, which workers
/// decode to [`ExecError::LateJoin`]. The thread polls non-blocking (the
/// listener already is) and exits promptly once `stop` is set.
fn spawn_doorman(
    listener: TcpListener,
    shards: usize,
    net: NetConfig,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let Ok(mut conn) = FramedConn::new(stream, &net) else {
                        continue;
                    };
                    // read the straggler's JOIN so its REJECT is not lost
                    // in a half-open race; content does not matter
                    let _ = conn.recv("doorman (late JOIN)");
                    let mut w = ByteWriter::new();
                    w.u32(wire::REJECT_FULL);
                    w.u64(shards as u64);
                    w.u64(shards as u64);
                    let _ = conn.send(wire::REJECT, &w.buf, "doorman (REJECT)");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    })
}

/// Reads one JOIN, verifies it, and replies with ASSIGN (or REJECT plus a
/// typed error on mismatch). The ASSIGN carries the worker's plan slice
/// and both hashes: the slice hash guards the shipped bytes, the full-plan
/// hash pins the run identity across all workers.
fn handshake_worker(
    conn: &mut FramedConn,
    shard: usize,
    shards: usize,
    fingerprint: u64,
    plan_hash: u64,
    slice_json: &str,
    part: &Partition,
) -> Result<(), ExecError> {
    let (kind, body) = conn.recv("handshake (JOIN)")?;
    if kind != wire::JOIN {
        return Err(ExecError::Net {
            detail: format!("expected JOIN, got frame kind {kind}"),
        });
    }
    let mut r = ByteReader::new(&body);
    let version = r.u32("JOIN version")?;
    let worker_fp = r.u64("JOIN fingerprint")?;
    if version != PROTOCOL_VERSION {
        let mut w = ByteWriter::new();
        w.u32(wire::REJECT_VERSION);
        w.u64(PROTOCOL_VERSION as u64);
        w.u64(version as u64);
        let _ = conn.send(wire::REJECT, &w.buf, "handshake (REJECT)");
        return Err(ExecError::VersionMismatch {
            coordinator: PROTOCOL_VERSION,
            worker: version,
        });
    }
    if worker_fp != fingerprint {
        let mut w = ByteWriter::new();
        w.u32(wire::REJECT_PROBLEM);
        w.u64(fingerprint);
        w.u64(worker_fp);
        let _ = conn.send(wire::REJECT, &w.buf, "handshake (REJECT)");
        return Err(ExecError::ProblemMismatch {
            coordinator: fingerprint,
            worker: worker_fp,
        });
    }
    let mut w = ByteWriter::new();
    w.u32(shard as u32);
    w.u32(shards as u32);
    w.u64(plan_hash);
    w.u64(fnv1a(slice_json.as_bytes()));
    w.bytes(slice_json.as_bytes());
    w.u32(part.of_node().len() as u32);
    for &owner in part.of_node() {
        w.u32(owner);
    }
    conn.send(wire::ASSIGN, &w.buf, "handshake (ASSIGN)")
        .map_err(|e| for_worker(e, shard))
}

/// Everything a finished worker ships back in its DONE frame.
struct ShardDone {
    outputs: Vec<Vec<Option<Vec<u8>>>>,
    departures: Vec<SimulationMap>,
    delivered: u64,
    late_messages: u64,
    invalid_sends: u64,
    max_arc_queue: usize,
    last_activity_round: u64,
    big_rounds: u64,
    shard: ShardStats,
}

/// The coordinator's relay loop plus the final merge. Mirrors
/// [`crate::Executor::run_sharded`]'s merge exactly — the outcome is
/// byte-identical.
fn coordinator_protocol(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    part: &Partition,
    conns: &mut [FramedConn],
    net: &NetConfig,
) -> Result<(ScheduleOutcome, ShardReport), ExecError> {
    let g = problem.graph();
    let n = g.node_count();
    let k = problem.k();
    let s = part.shards();
    let phase_len = plan.phase_len.max(1);
    let steps = StepPlan::build(g, problem.algorithms(), &plan.units);
    let last_step_round = steps.last_big_round().unwrap_or(0);

    let mut b: u64 = 0;
    loop {
        if net.stopped() {
            return Err(ExecError::Aborted {
                detail: format!("interrupted at big-round {b}"),
            });
        }
        // 1. Collect OUTBOX from every worker in ascending shard order and
        // append each group to its destination's INBOX. Reading sources in
        // ascending order reproduces the in-process merge order: per
        // destination, sources ascend and each group keeps its push order.
        let mut routed_bodies: Vec<Vec<u8>> = vec![Vec::new(); s];
        let mut routed_counts: Vec<u32> = vec![0; s];
        for (src, conn) in conns.iter_mut().enumerate() {
            let (kind, body) = conn
                .recv("collecting outboxes")
                .map_err(|e| for_worker(e, src))?;
            match kind {
                wire::OUTBOX => {}
                wire::ERROR => return Err(decode_worker_error(&body)?),
                other => {
                    return Err(ExecError::Net {
                        detail: format!("expected OUTBOX from shard {src}, got kind {other}"),
                    })
                }
            }
            let mut r = ByteReader::new(&body);
            let round = r.u64("OUTBOX big-round")?;
            if round != b {
                return Err(ExecError::Net {
                    detail: format!("shard {src} sent OUTBOX for big-round {round}, expected {b}"),
                });
            }
            let groups = r.u32("OUTBOX group count")?;
            for _ in 0..groups {
                let dst = r.u32("OUTBOX group shard")? as usize;
                if dst >= s || dst == src {
                    return Err(ExecError::Net {
                        detail: format!("shard {src} routed a group to invalid shard {dst}"),
                    });
                }
                let count = r.u32("OUTBOX group size")?;
                let start = r.pos;
                for _ in 0..count {
                    skip_flight(&mut r)?;
                }
                routed_bodies[dst].extend_from_slice(&body[start..r.pos]);
                routed_counts[dst] += count;
            }
        }
        // 2. Ship each destination its merged INBOX.
        for dst in 0..s {
            let mut w = ByteWriter::new();
            w.u64(b);
            w.u32(routed_counts[dst]);
            w.buf.extend_from_slice(&routed_bodies[dst]);
            conns[dst]
                .send(wire::INBOX, &w.buf, "shipping inboxes")
                .map_err(|e| for_worker(e, dst))?;
        }
        // 3. Collect post-drain activity.
        let mut any_active = false;
        for (src, conn) in conns.iter_mut().enumerate() {
            let (kind, body) = conn
                .recv("collecting activity")
                .map_err(|e| for_worker(e, src))?;
            match kind {
                wire::ACTIVITY => {}
                wire::ERROR => return Err(decode_worker_error(&body)?),
                other => {
                    return Err(ExecError::Net {
                        detail: format!("expected ACTIVITY from shard {src}, got kind {other}"),
                    })
                }
            }
            let mut r = ByteReader::new(&body);
            let round = r.u64("ACTIVITY big-round")?;
            if round != b {
                return Err(ExecError::Net {
                    detail: format!(
                        "shard {src} sent ACTIVITY for big-round {round}, expected {b}"
                    ),
                });
            }
            any_active |= r.u8("ACTIVITY flag")? != 0;
            // Workers piggyback cumulative totals after the flag; a bare
            // flag (older worker) is still valid, so only read the tail if
            // it is present.
            if r.pos < body.len() {
                let steps = r.u64("ACTIVITY steps")?;
                let delivered = r.u64("ACTIVITY delivered")?;
                let late = r.u64("ACTIVITY late")?;
                let cross = r.u64("ACTIVITY cross-sent")?;
                if let Some(hub) = &net.live {
                    hub.publish_worker_totals(src as u32, b, steps, delivered, late, cross);
                }
            }
        }
        if let Some(hub) = &net.live {
            hub.publish_links(
                conns
                    .iter()
                    .enumerate()
                    .map(|(shard, c)| das_obs::LinkLive {
                        shard,
                        frames_sent: c.traffic.frames_sent,
                        bytes_sent: c.traffic.bytes_sent,
                        frames_received: c.traffic.frames_received,
                        bytes_received: c.traffic.bytes_received,
                    })
                    .collect(),
            );
        }
        // 4. Broadcast the termination decision — the same predicate the
        // in-process path evaluates after its post-increment (`b + 1` here
        // is the worker's incremented big-round counter).
        let done = b + 1 > last_step_round && !any_active;
        let mut w = ByteWriter::new();
        w.u64(b);
        w.u8(done as u8);
        for (dst, conn) in conns.iter_mut().enumerate() {
            conn.send(wire::DECISION, &w.buf, "broadcasting decision")
                .map_err(|e| for_worker(e, dst))?;
        }
        b += 1;
        if done {
            break;
        }
    }

    // Collect DONE frames and merge in shard order, exactly as
    // run_sharded_observed merges its ShardOutputs.
    let mut outputs: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; n]; k];
    let mut departures: Vec<SimulationMap> = vec![SimulationMap::new(); k];
    let mut stats = ExecStats {
        phase_len,
        ..ExecStats::default()
    };
    let mut last_activity_round = 0u64;
    let mut report = ShardReport {
        shards: s,
        cross_shard_messages: 0,
        per_shard: Vec::with_capacity(s),
    };
    for (src, conn) in conns.iter_mut().enumerate() {
        let (kind, body) = conn
            .recv("collecting results")
            .map_err(|e| for_worker(e, src))?;
        match kind {
            wire::DONE => {}
            wire::ERROR => return Err(decode_worker_error(&body)?),
            other => {
                return Err(ExecError::Net {
                    detail: format!("expected DONE from shard {src}, got kind {other}"),
                })
            }
        }
        let own: Vec<usize> = (0..n)
            .filter(|&v| part.of_node()[v] == src as u32)
            .collect();
        let done = decode_done(&body, k, own.len())?;
        stats.delivered += done.delivered;
        stats.late_messages += done.late_messages;
        stats.invalid_sends += done.invalid_sends;
        stats.max_arc_queue = stats.max_arc_queue.max(done.max_arc_queue);
        // every worker leaves the lockstep loop at the same big-round
        stats.big_rounds = done.big_rounds;
        last_activity_round = last_activity_round.max(done.last_activity_round);
        for (a, (outs, maps)) in done.outputs.into_iter().zip(done.departures).enumerate() {
            for (li, out) in outs.into_iter().enumerate() {
                outputs[a][own[li]] = out;
            }
            departures[a].extend(maps);
        }
        report.cross_shard_messages += done.shard.cross_sent;
        report.per_shard.push(done.shard);
    }
    stats.engine_rounds = (last_step_round + 1)
        .saturating_mul(phase_len)
        .max(last_activity_round);
    Ok((
        ScheduleOutcome {
            outputs,
            stats,
            departures: Some(departures),
            precompute_rounds: 0,
        },
        report,
    ))
}

/// Advances a reader past one encoded flight.
fn skip_flight(r: &mut ByteReader<'_>) -> Result<(), ExecError> {
    r.u32("flight arc")?;
    r.u32("flight dst")?;
    r.u32("flight algo")?;
    r.u32("flight round")?;
    r.u32("flight from")?;
    r.bytes("flight payload")?;
    Ok(())
}

/// Decodes an ERROR frame into the [`ExecError`] the worker hit — today
/// always the round cap, which every worker reaches in lockstep.
fn decode_worker_error(body: &[u8]) -> Result<ExecError, ExecError> {
    let mut r = ByteReader::new(body);
    let cap = r.u64("ERROR cap")?;
    let big_round = r.u64("ERROR big-round")?;
    Ok(ExecError::RoundCapExceeded { cap, big_round })
}

fn decode_done(body: &[u8], k: usize, own_n: usize) -> Result<ShardDone, ExecError> {
    let mut r = ByteReader::new(body);
    let big_rounds = r.u64("DONE big-rounds")?;
    let last_activity_round = r.u64("DONE last activity")?;
    let delivered = r.u64("DONE delivered")?;
    let late_messages = r.u64("DONE late")?;
    let invalid_sends = r.u64("DONE invalid sends")?;
    let max_arc_queue = r.u64("DONE max arc queue")? as usize;
    let shard = ShardStats {
        shard: r.u64("DONE shard index")? as usize,
        nodes: r.u64("DONE shard nodes")? as usize,
        degree: r.u64("DONE shard degree")? as usize,
        steps: r.u64("DONE shard steps")?,
        delivered: r.u64("DONE shard delivered")?,
        cross_sent: r.u64("DONE shard cross-sent")?,
        step_nanos: r.u64("DONE shard step nanos")?,
        drain_nanos: r.u64("DONE shard drain nanos")?,
    };
    let mut outputs: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut per_node = Vec::with_capacity(own_n);
        for _ in 0..own_n {
            let some = r.u8("DONE output tag")? != 0;
            per_node.push(if some {
                Some(r.bytes("DONE output")?.to_vec())
            } else {
                None
            });
        }
        outputs.push(per_node);
    }
    let mut departures: Vec<SimulationMap> = Vec::with_capacity(k);
    for _ in 0..k {
        let count = r.u64("DONE departure count")?;
        let mut map = SimulationMap::new();
        for _ in 0..count {
            let round = r.u32("DONE departure round")?;
            let arc = r.u32("DONE departure arc")? as usize;
            let engine_round = r.u32("DONE departure engine round")?;
            map.insert(
                TimedArc {
                    round,
                    arc: das_graph::Arc::from_index(arc),
                },
                engine_round,
            );
        }
        departures.push(map);
    }
    Ok(ShardDone {
        outputs,
        departures,
        delivered,
        late_messages,
        invalid_sends,
        max_arc_queue,
        last_activity_round,
        big_rounds,
        shard,
    })
}

// ---------------------------------------------------------------- worker

/// Connects to a coordinator, receives a shard assignment, and runs that
/// shard of the plan to completion.
///
/// The worker must be launched on the *same problem* as the coordinator
/// (same graph spec, workload, and seed): the handshake fingerprint
/// enforces this, the received plan's hash is checked against the
/// announced one, and the shipped partition is cross-checked against a
/// local recomputation — so a drifted deployment fails typed and early
/// rather than producing divergent bytes.
///
/// # Errors
/// [`SchedError::InvalidPlan`] if the received plan fails validation for
/// the local problem; [`SchedError::Exec`] for the round cap or any
/// network failure, including [`ExecError::Aborted`] when the coordinator
/// tears the run down.
pub fn run_worker(
    problem: &DasProblem<'_>,
    connect: &str,
    net: &NetConfig,
) -> Result<WorkerOutcome, SchedError> {
    let stream = connect_with_retry(connect, net).map_err(SchedError::Exec)?;
    let mut conn = FramedConn::new(stream, net).map_err(SchedError::Exec)?;

    // JOIN → ASSIGN (or REJECT / ABORT)
    let mut w = ByteWriter::new();
    w.u32(PROTOCOL_VERSION);
    w.u64(problem_fingerprint(problem));
    conn.send(wire::JOIN, &w.buf, "handshake (JOIN)")
        .map_err(SchedError::Exec)?;
    let (kind, body) = conn
        .recv("handshake (waiting for ASSIGN)")
        .map_err(SchedError::Exec)?;
    let mut r = ByteReader::new(&body);
    match kind {
        wire::ASSIGN => {}
        wire::REJECT => return Err(SchedError::Exec(decode_reject(&body)?)),
        wire::ABORT => {
            return Err(SchedError::Exec(ExecError::Aborted {
                detail: decode_abort(&body),
            }))
        }
        other => {
            return Err(SchedError::Exec(ExecError::Net {
                detail: format!("expected ASSIGN, got frame kind {other}"),
            }))
        }
    }
    let shard = r.u32("ASSIGN shard").map_err(SchedError::Exec)? as usize;
    let shards = r.u32("ASSIGN shard count").map_err(SchedError::Exec)? as usize;
    let _full_plan_hash = r.u64("ASSIGN plan hash").map_err(SchedError::Exec)?;
    let announced_hash = r.u64("ASSIGN slice hash").map_err(SchedError::Exec)?;
    let plan_bytes = r
        .bytes("ASSIGN plan slice JSON")
        .map_err(SchedError::Exec)?;
    let got_hash = fnv1a(plan_bytes);
    if got_hash != announced_hash {
        return Err(SchedError::Exec(ExecError::PlanHashMismatch {
            expected: announced_hash,
            got: got_hash,
        }));
    }
    let plan_json = std::str::from_utf8(plan_bytes).map_err(|e| {
        SchedError::Exec(ExecError::Net {
            detail: format!("plan JSON is not UTF-8: {e}"),
        })
    })?;
    let plan = SchedulePlan::from_json(plan_json).map_err(|e| {
        SchedError::Exec(ExecError::Net {
            detail: format!("plan JSON failed to parse: {e}"),
        })
    })?;
    // received plans are untrusted, exactly like plans loaded from disk
    plan.validate(problem)?;
    let part = Partition::degree_balanced(problem.graph(), shards);
    let of_len = r.u32("ASSIGN partition length").map_err(SchedError::Exec)? as usize;
    let mut shipped = Vec::with_capacity(of_len);
    for _ in 0..of_len {
        shipped.push(r.u32("ASSIGN partition entry").map_err(SchedError::Exec)?);
    }
    if part.shards() != shards || shipped != part.of_node() {
        return Err(SchedError::Exec(ExecError::Net {
            detail: "shipped partition disagrees with the locally recomputed \
                     degree-balanced partition"
                .to_string(),
        }));
    }
    if shard >= shards {
        return Err(SchedError::Exec(ExecError::Net {
            detail: format!("assigned shard {shard} out of range for {shards} shards"),
        }));
    }
    // the slice must be a fixed point of slicing: every scheduled step
    // belongs to a node this shard owns (with one shard this degenerates
    // to slice == full plan)
    if plan.slice_for_shard(part.of_node(), shard as u32) != plan {
        return Err(SchedError::Exec(ExecError::Net {
            detail: "received plan slice schedules nodes outside the assigned shard".to_string(),
        }));
    }
    worker_loop(problem, &plan, shard, &part, &mut conn).map_err(SchedError::Exec)
}

pub(crate) fn connect_with_retry(connect: &str, net: &NetConfig) -> Result<TcpStream, ExecError> {
    let started = Instant::now();
    let mut last_err = String::new();
    for attempt in 0..net.connect_retries.max(1) {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(net.connect_backoff_ms));
        }
        let addrs = match connect.to_socket_addrs() {
            Ok(a) => a,
            Err(e) => {
                last_err = format!("resolve {connect}: {e}");
                continue;
            }
        };
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, net.io_timeout()) {
                Ok(stream) => return Ok(stream),
                Err(e) => last_err = format!("connect {addr}: {e}"),
            }
        }
    }
    Err(ExecError::NetTimeout {
        during: format!(
            "connecting to {connect} ({} attempts, last error: {last_err})",
            net.connect_retries.max(1)
        ),
        ms: started.elapsed().as_millis() as u64,
    })
}

pub(crate) fn decode_reject(body: &[u8]) -> Result<ExecError, ExecError> {
    let mut r = ByteReader::new(body);
    let code = r.u32("REJECT code")?;
    let ours = r.u64("REJECT coordinator value")?;
    let theirs = r.u64("REJECT worker value")?;
    Ok(match code {
        wire::REJECT_VERSION => ExecError::VersionMismatch {
            coordinator: ours as u32,
            worker: theirs as u32,
        },
        wire::REJECT_PROBLEM => ExecError::ProblemMismatch {
            coordinator: ours,
            worker: theirs,
        },
        wire::REJECT_FULL => ExecError::LateJoin {
            shards: ours as usize,
        },
        other => ExecError::Net {
            detail: format!("coordinator rejected the handshake with unknown code {other}"),
        },
    })
}

pub(crate) fn decode_abort(body: &[u8]) -> String {
    ByteReader::new(body)
        .bytes("ABORT reason")
        .ok()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .unwrap_or_else(|| "coordinator aborted the run".to_string())
}

/// The worker's big-round loop: the row-engine shard worker with the
/// in-process barriers replaced by framed round-trips. Every stateful
/// detail — step order, send validation, arc ownership, lateness checks,
/// drain behaviour, the round cap, the termination predicate — matches
/// [`crate::Executor::run_sharded`]'s row worker line for line, which is
/// what makes the outcome byte-identical.
fn worker_loop(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    me: usize,
    part: &Partition,
    conn: &mut FramedConn,
) -> Result<WorkerOutcome, ExecError> {
    let g = problem.graph();
    let algos = problem.algorithms();
    let config = ExecutorConfig::default().with_phase_len(plan.phase_len);
    let n = g.node_count();
    let k = algos.len();
    let s = part.shards();
    let seeds: Vec<u64> = (0..k).map(|i| problem.algo_seed(i)).collect();
    let steps_plan = StepPlan::build(g, algos, &plan.units);
    let last_step_round = steps_plan.last_big_round().unwrap_or(0);
    let mut by_big_round: Vec<Vec<(u32, u32, u32)>> =
        vec![Vec::new(); last_step_round as usize + 1];
    for a in 0..k {
        for v in 0..n {
            for (r, &bb) in steps_plan.plan[a][v].iter().enumerate() {
                by_big_round[bb as usize].push((a as u32, v as u32, r as u32));
            }
        }
    }
    let arc_owner: Vec<u32> = (0..g.arc_count())
        .map(|i| {
            let (_, dst) = g.arc_endpoints(das_graph::Arc::from_index(i));
            part.of_node()[dst.index()]
        })
        .collect();

    let own: Vec<usize> = (0..n).filter(|&v| part.of_node()[v] == me as u32).collect();
    let own_n = own.len();
    let mut local_of = vec![usize::MAX; n];
    for (li, &v) in own.iter().enumerate() {
        local_of[v] = li;
    }
    let mut machines: Vec<Vec<Box<dyn crate::algorithm::AlgoNode>>> = (0..k)
        .map(|a| {
            own.iter()
                .map(|&v| {
                    algos[a].create_node(
                        NodeId(v as u32),
                        n,
                        das_congest::util::seed_mix(seeds[a], v as u64),
                    )
                })
                .collect()
        })
        .collect();
    let mut steps_done = vec![vec![0u32; own_n]; k];
    let mut buffers: Vec<TagWindow> = Vec::with_capacity(k * own_n);
    buffers.resize_with(k * own_n, TagWindow::default);
    let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut queues: Vec<ArcFifo> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), ArcFifo::default);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut stats = ExecStats {
        phase_len: config.phase_len,
        ..ExecStats::default()
    };
    let mut departures: Vec<SimulationMap> = vec![SimulationMap::new(); k];
    let mut shard = ShardStats {
        shard: me,
        nodes: own_n,
        degree: own.iter().map(|&v| g.degree(NodeId(v as u32))).sum(),
        ..ShardStats::default()
    };
    let mut engine_round: u64 = 0;
    let mut last_activity_round: u64 = 0;
    let mut b: u64 = 0;
    // per-destination staging for the OUTBOX frame, reused across rounds
    let mut out_groups: Vec<Vec<u8>> = vec![Vec::new(); s];
    let mut out_counts: Vec<u32> = vec![0; s];
    loop {
        // 1. Step phase: identical to the in-process row worker, except
        // that cross-shard flights are encoded into per-destination
        // staging buffers instead of in-memory outboxes.
        let t_step = Instant::now();
        if let Some(steps) = by_big_round.get(b as usize) {
            for &(a, v, r) in steps {
                let (a, v) = (a as usize, v as usize);
                let li = local_of[v];
                if li == usize::MAX {
                    continue;
                }
                debug_assert_eq!(steps_done[a][li], r, "steps execute in order");
                if r == 0 {
                    inbox.clear();
                } else {
                    buffers[a * own_n + li].take(r - 1, &mut inbox);
                }
                // canonical inbox order, matching the reference runner
                inbox.sort();
                let sends = machines[a][li].step(&inbox);
                steps_done[a][li] = r + 1;
                shard.steps += 1;
                let me_node = NodeId(v as u32);
                let mut sent_to: Vec<NodeId> = Vec::new();
                for snd in sends {
                    let valid = g.find_edge(me_node, snd.to).is_some()
                        && snd.payload.len() <= config.message_bytes
                        && !sent_to.contains(&snd.to);
                    if !valid {
                        stats.invalid_sends += 1;
                        continue;
                    }
                    sent_to.push(snd.to);
                    let edge = g.find_edge(me_node, snd.to).expect("validated");
                    let arc = g.arc_from(edge, me_node);
                    let idx = arc.index();
                    let owner = arc_owner[idx] as usize;
                    if owner == me {
                        let q = &mut queues[idx];
                        if q.is_empty() {
                            active_arcs.push(idx);
                        }
                        q.push_back(Flight {
                            dst: snd.to,
                            algo: a as u32,
                            round: r,
                            from: me_node,
                            payload: snd.payload,
                        });
                        stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                    } else {
                        shard.cross_sent += 1;
                        let grp = &mut out_groups[owner];
                        grp.extend_from_slice(&(idx as u32).to_le_bytes());
                        grp.extend_from_slice(&snd.to.0.to_le_bytes());
                        grp.extend_from_slice(&(a as u32).to_le_bytes());
                        grp.extend_from_slice(&r.to_le_bytes());
                        grp.extend_from_slice(&me_node.0.to_le_bytes());
                        grp.extend_from_slice(&(snd.payload.len() as u32).to_le_bytes());
                        grp.extend_from_slice(&snd.payload);
                        out_counts[owner] += 1;
                    }
                }
            }
        }
        shard.step_nanos += t_step.elapsed().as_nanos() as u64;

        // All outboxes for big-round b are complete: the first network
        // barrier (OUTBOX up, INBOX down).
        let mut w = ByteWriter::new();
        w.u64(b);
        let groups = out_counts.iter().filter(|&&c| c > 0).count();
        w.u32(groups as u32);
        for dst in 0..s {
            if out_counts[dst] == 0 {
                continue;
            }
            w.u32(dst as u32);
            w.u32(out_counts[dst]);
            w.buf.extend_from_slice(&out_groups[dst]);
            out_groups[dst].clear();
            out_counts[dst] = 0;
        }
        conn.send(wire::OUTBOX, &w.buf, "sending outbox")?;

        let (kind, body) = conn.recv("waiting for inbox")?;
        match kind {
            wire::INBOX => {}
            wire::ABORT => {
                return Err(ExecError::Aborted {
                    detail: decode_abort(&body),
                })
            }
            other => {
                return Err(ExecError::Net {
                    detail: format!("expected INBOX, got frame kind {other}"),
                })
            }
        }
        let t_drain = Instant::now();
        // 2. Merge cross-shard arrivals into the owned queues — the shard
        // boundary crossing, once per big-round, already ordered by
        // ascending source shard by the coordinator.
        {
            let mut r = ByteReader::new(&body);
            let round = r.u64("INBOX big-round")?;
            if round != b {
                return Err(ExecError::Net {
                    detail: format!("INBOX for big-round {round}, expected {b}"),
                });
            }
            let count = r.u32("INBOX count")?;
            for _ in 0..count {
                let idx = r.u32("flight arc")? as usize;
                let dst = NodeId(r.u32("flight dst")?);
                let algo = r.u32("flight algo")?;
                let round = r.u32("flight round")?;
                let from = NodeId(r.u32("flight from")?);
                let payload = r.bytes("flight payload")?.to_vec();
                if idx >= queues.len() || arc_owner[idx] as usize != me {
                    return Err(ExecError::Net {
                        detail: format!("INBOX delivered arc {idx} this shard does not own"),
                    });
                }
                let q = &mut queues[idx];
                if q.is_empty() {
                    active_arcs.push(idx);
                }
                q.push_back(Flight {
                    dst,
                    algo,
                    round,
                    from,
                    payload,
                });
                stats.max_arc_queue = stats.max_arc_queue.max(q.len());
            }
        }

        // 3. Drain the owned queues for phase_len engine rounds, exactly
        // as the in-process worker does.
        let mut capped = None;
        'drain: for _ in 0..config.phase_len {
            let arcs = std::mem::take(&mut active_arcs);
            for arc_idx in arcs {
                let Some(f) = queues[arc_idx].pop_front() else {
                    continue;
                };
                if !queues[arc_idx].is_empty() {
                    active_arcs.push(arc_idx);
                }
                let (a, li) = (f.algo as usize, local_of[f.dst.index()]);
                debug_assert_ne!(li, usize::MAX, "arc delivered to a foreign shard");
                departures[a].insert(
                    TimedArc {
                        round: f.round,
                        arc: das_graph::Arc::from_index(arc_idx),
                    },
                    engine_round as u32,
                );
                let late = steps_done[a][li] >= f.round + 2;
                if late {
                    stats.late_messages += 1;
                } else {
                    buffers[a * own_n + li].push(f.round, f.from, f.payload);
                    stats.delivered += 1;
                }
                last_activity_round = engine_round + 1;
            }
            engine_round += 1;
            if engine_round > config.max_engine_rounds {
                // every worker's engine-round counter is identical, so all
                // workers reach this in lockstep; each tells the
                // coordinator and exits with the same typed error
                capped = Some(ExecError::RoundCapExceeded {
                    cap: config.max_engine_rounds,
                    big_round: b,
                });
                break 'drain;
            }
        }
        shard.drain_nanos += t_drain.elapsed().as_nanos() as u64;
        if let Some(err) = capped {
            let mut w = ByteWriter::new();
            w.u64(config.max_engine_rounds);
            w.u64(b);
            let _ = conn.send(wire::ERROR, &w.buf, "reporting round cap");
            return Err(err);
        }

        // 4. Termination: the second network barrier (ACTIVITY up,
        // DECISION down) replaces the in-process activity counter and its
        // two barriers.
        let mut w = ByteWriter::new();
        w.u64(b);
        w.u8(!active_arcs.is_empty() as u8);
        // Cumulative telemetry totals ride along for free: coordinators
        // that predate them ignore the tail (ByteReader never over-reads),
        // so the protocol version is unchanged.
        w.u64(shard.steps);
        w.u64(stats.delivered);
        w.u64(stats.late_messages);
        w.u64(shard.cross_sent);
        conn.send(wire::ACTIVITY, &w.buf, "posting activity")?;
        let (kind, body) = conn.recv("waiting for decision")?;
        match kind {
            wire::DECISION => {}
            wire::ABORT => {
                return Err(ExecError::Aborted {
                    detail: decode_abort(&body),
                })
            }
            other => {
                return Err(ExecError::Net {
                    detail: format!("expected DECISION, got frame kind {other}"),
                })
            }
        }
        let mut r = ByteReader::new(&body);
        let round = r.u64("DECISION big-round")?;
        if round != b {
            return Err(ExecError::Net {
                detail: format!("DECISION for big-round {round}, expected {b}"),
            });
        }
        let done = r.u8("DECISION flag")? != 0;
        b += 1;
        if done {
            break;
        }
    }

    shard.delivered = stats.delivered;
    // DONE: outputs, departures, and stats, in one frame.
    let mut w = ByteWriter::new();
    w.u64(b);
    w.u64(last_activity_round);
    w.u64(stats.delivered);
    w.u64(stats.late_messages);
    w.u64(stats.invalid_sends);
    w.u64(stats.max_arc_queue as u64);
    w.u64(shard.shard as u64);
    w.u64(shard.nodes as u64);
    w.u64(shard.degree as u64);
    w.u64(shard.steps);
    w.u64(shard.delivered);
    w.u64(shard.cross_sent);
    w.u64(shard.step_nanos);
    w.u64(shard.drain_nanos);
    for per_node in &machines {
        for m in per_node {
            match m.output() {
                Some(out) => {
                    w.u8(1);
                    w.bytes(&out);
                }
                None => w.u8(0),
            }
        }
    }
    for map in &departures {
        w.u64(map.len() as u64);
        for (ta, &er) in map {
            w.u32(ta.round);
            w.u32(ta.arc.index() as u32);
            w.u32(er);
        }
    }
    conn.send(wire::DONE, &w.buf, "reporting results")?;
    Ok(WorkerOutcome {
        shard: me,
        shards: s,
        steps: shard.steps,
        delivered: stats.delivered,
        cross_sent: shard.cross_sent,
        big_rounds: b,
        traffic: conn.traffic.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // standard FNV-1a 64 test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn byte_codec_round_trips() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.bytes(b"payload");
        let mut r = ByteReader::new(&w.buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.bytes("d").unwrap(), b"payload");
        assert!(matches!(
            r.u8("past the end"),
            Err(ExecError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn short_body_decodes_to_truncated_frame() {
        let mut w = ByteWriter::new();
        w.u32(100); // promises 100 bytes
        w.buf.extend_from_slice(b"short");
        let mut r = ByteReader::new(&w.buf);
        assert!(matches!(
            r.bytes("clipped"),
            Err(ExecError::TruncatedFrame { .. })
        ));
    }
}
