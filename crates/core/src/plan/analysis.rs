//! Content-free load analysis of a [`SchedulePlan`]: predicts per-arc
//! traffic and late messages *without* running the engine.
//!
//! The prediction replays the problem's cached reference
//! [`das_pattern::CommPattern`]s through the plan's step schedule,
//! mirroring the executor's queueing discipline exactly — same step
//! order, same per-arc FIFO at one message per engine round, same
//! late-drop rule — but moving only (algorithm, round, arc) tags instead
//! of payloads, and never stepping a machine.
//!
//! **Exactness.** As long as no message has been late, every canonical
//! machine is in exactly its alone-run state, so its sends match the
//! reference pattern message-for-message and the prediction tracks the
//! real execution precisely. The *first* late message is therefore
//! predicted exactly: `predicted_late == 0` if and only if the real
//! execution of the plan has `late_messages == 0`. Past the first late
//! message real machines diverge from their patterns, so nonzero
//! predictions are approximations of the doomed run — which is all
//! [`crate::doubling`] needs to reject an infeasible congestion guess
//! without paying for the engine.

use crate::exec::StepPlan;
use crate::plan::SchedulePlan;
use crate::problem::DasProblem;
use crate::reference::ReferenceError;

/// Predicted traffic of a plan, per arc and per big-round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadPrediction {
    /// Engine rounds per big-round, copied from the plan.
    pub phase_len: u64,
    /// Total messages predicted to be injected into each arc
    /// (`arc_load[arc.index()]`), i.e. the per-direction edge load.
    pub arc_load: Vec<u64>,
    /// Largest number of messages injected into a single arc within one
    /// big-round — the quantity the paper's phase-length choice bounds.
    pub peak_big_round_arc_load: u64,
    /// Total messages predicted to be injected during each big-round
    /// (`big_round_load[b]`), up to the last big-round with any step — the
    /// per-phase load curve `plan --diff` compares side by side.
    pub big_round_load: Vec<u64>,
    /// Messages predicted to arrive in time.
    pub predicted_delivered: u64,
    /// Messages predicted to arrive after their consumer stepped. Zero
    /// here is exact: the real run is clean iff this is zero.
    pub predicted_late: u64,
    /// Predicted schedule length in engine rounds, including any drain
    /// tail past the last step (exact for clean runs).
    pub predicted_engine_rounds: u64,
    /// Predicted maximum backlog on any arc queue.
    pub predicted_max_arc_queue: usize,
}

impl LoadPrediction {
    /// Whether the plan executes without any late message — exact, not a
    /// bound (see the module docs).
    pub fn feasible(&self) -> bool {
        self.predicted_late == 0
    }

    /// The largest total load over all arcs.
    pub fn max_arc_load(&self) -> u64 {
        self.arc_load.iter().copied().max().unwrap_or(0)
    }
}

/// A content-free message in flight: who consumes it, under which tag.
struct Tag {
    algo: u32,
    round: u32,
    dst: u32,
}

/// Predicts the traffic of `plan` on `problem` by replaying the reference
/// communication patterns through the plan's step schedule.
///
/// # Errors
/// Propagates a [`ReferenceError`] if the reference runs fail.
///
/// # Panics
/// Panics if the plan is malformed for this problem.
pub fn predict(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
) -> Result<LoadPrediction, ReferenceError> {
    let g = problem.graph();
    let n = g.node_count();
    let k = problem.k();
    let refs = problem.references()?;
    let steps = StepPlan::build(g, problem.algorithms(), &plan.units);
    let phase_len = plan.phase_len.max(1);

    // Reference sends grouped per (algorithm, source): (round, arc, dst),
    // sorted by round so each step can consume them with a cursor.
    let mut sends: Vec<Vec<Vec<(u32, u32, u32)>>> = vec![vec![Vec::new(); n]; k];
    for (a, r) in refs.iter().enumerate() {
        for ta in r.pattern.timed_arcs() {
            let (src, dst) = g.arc_endpoints(ta.arc);
            sends[a][src.index()].push((ta.round, ta.arc.index() as u32, dst.0));
        }
        for per_node in &mut sends[a] {
            per_node.sort_unstable();
        }
    }
    let mut cursor = vec![vec![0usize; n]; k];

    let Some(last_step_round) = steps.last_big_round() else {
        return Ok(LoadPrediction {
            phase_len,
            arc_load: vec![0; g.arc_count()],
            peak_big_round_arc_load: 0,
            big_round_load: Vec::new(),
            predicted_delivered: 0,
            predicted_late: 0,
            predicted_engine_rounds: 0,
            predicted_max_arc_queue: 0,
        });
    };

    // Steps grouped by big-round in the executor's (a, v, r) order.
    let mut by_big_round: Vec<Vec<(u32, u32, u32)>> =
        vec![Vec::new(); last_step_round as usize + 1];
    for a in 0..k {
        for v in 0..n {
            for (r, &b) in steps
                .steps(a, das_graph::NodeId(v as u32))
                .iter()
                .enumerate()
            {
                by_big_round[b as usize].push((a as u32, v as u32, r as u32));
            }
        }
    }

    let mut steps_done = vec![vec![0u32; n]; k];
    let mut queues: Vec<std::collections::VecDeque<Tag>> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), std::collections::VecDeque::new);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut arc_load = vec![0u64; g.arc_count()];
    let mut big_round_load = vec![0u64; last_step_round as usize + 1];
    let mut round_injections = vec![0u64; g.arc_count()];
    let mut peak_big_round_arc_load = 0u64;
    let mut predicted_delivered = 0u64;
    let mut predicted_late = 0u64;
    let mut predicted_max_arc_queue = 0usize;
    let mut engine_round = 0u64;
    let mut last_activity_round = 0u64;

    let mut b: u64 = 0;
    loop {
        if let Some(step_list) = by_big_round.get(b as usize) {
            let mut touched: Vec<usize> = Vec::new();
            for &(a, v, r) in step_list {
                let (a, v) = (a as usize, v as usize);
                steps_done[a][v] = r + 1;
                let per_node = &sends[a][v];
                let c = &mut cursor[a][v];
                while *c < per_node.len() && per_node[*c].0 == r {
                    let (_, arc, dst) = per_node[*c];
                    *c += 1;
                    let q = &mut queues[arc as usize];
                    if q.is_empty() {
                        active_arcs.push(arc as usize);
                    }
                    q.push_back(Tag {
                        algo: a as u32,
                        round: r,
                        dst,
                    });
                    predicted_max_arc_queue = predicted_max_arc_queue.max(q.len());
                    arc_load[arc as usize] += 1;
                    big_round_load[b as usize] += 1;
                    if round_injections[arc as usize] == 0 {
                        touched.push(arc as usize);
                    }
                    round_injections[arc as usize] += 1;
                }
            }
            for arc in touched {
                peak_big_round_arc_load = peak_big_round_arc_load.max(round_injections[arc]);
                round_injections[arc] = 0;
            }
        }

        for _ in 0..phase_len {
            let arcs = std::mem::take(&mut active_arcs);
            for arc_idx in arcs {
                let Some(t) = queues[arc_idx].pop_front() else {
                    continue;
                };
                if !queues[arc_idx].is_empty() {
                    active_arcs.push(arc_idx);
                }
                if steps_done[t.algo as usize][t.dst as usize] >= t.round + 2 {
                    predicted_late += 1;
                } else {
                    predicted_delivered += 1;
                }
                last_activity_round = engine_round + 1;
            }
            engine_round += 1;
        }

        b += 1;
        if b > last_step_round && active_arcs.is_empty() {
            break;
        }
    }

    Ok(LoadPrediction {
        phase_len,
        arc_load,
        peak_big_round_arc_load,
        big_round_load,
        predicted_delivered,
        predicted_late,
        predicted_engine_rounds: (last_step_round + 1)
            .saturating_mul(phase_len)
            .max(last_activity_round),
        predicted_max_arc_queue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::execute_plan;
    use crate::schedulers::Scheduler;
    use crate::synthetic::RelayChain;
    use crate::{BlackBoxAlgorithm, DasProblem};
    use crate::{
        InterleaveScheduler, SequentialScheduler, TunedUniformScheduler, UniformScheduler,
    };
    use das_graph::{generators, Graph};

    fn stacked_relays(g: &Graph, k: usize, tape_seed: u64) -> DasProblem<'_> {
        let algos = (0..k)
            .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, tape_seed)
    }

    /// Measured per-arc load from the executor's departure records.
    fn measured_arc_load(g: &Graph, outcome: &crate::ScheduleOutcome) -> Vec<u64> {
        let mut load = vec![0u64; g.arc_count()];
        for map in outcome.departures.as_ref().unwrap() {
            for ta in map.keys() {
                load[ta.arc.index()] += 1;
            }
        }
        load
    }

    #[test]
    fn predicted_loads_match_execution_on_stacked_relays() {
        let g = generators::path(10);
        let p = stacked_relays(&g, 5, 23);
        for sched in [
            Box::new(SequentialScheduler) as Box<dyn Scheduler>,
            Box::new(InterleaveScheduler),
            Box::new(UniformScheduler::default()),
            Box::new(TunedUniformScheduler::default()),
        ] {
            let plan = sched.plan(&p, sched.default_sched_seed()).unwrap();
            let pred = predict(&p, &plan).unwrap();
            let outcome = execute_plan(&p, &plan).unwrap();
            assert_eq!(
                pred.arc_load,
                measured_arc_load(&g, &outcome),
                "{}",
                sched.name()
            );
            assert_eq!(
                pred.predicted_late,
                outcome.stats.late_messages,
                "{}",
                sched.name()
            );
            assert_eq!(
                pred.predicted_delivered,
                outcome.stats.delivered,
                "{}",
                sched.name()
            );
            // every injected message shows up in exactly one big-round
            assert_eq!(
                pred.big_round_load.iter().sum::<u64>(),
                pred.arc_load.iter().sum::<u64>(),
                "{}",
                sched.name()
            );
            if pred.feasible() {
                assert_eq!(
                    pred.predicted_engine_rounds,
                    outcome.stats.engine_rounds,
                    "{}",
                    sched.name()
                );
                assert_eq!(
                    pred.predicted_max_arc_queue,
                    outcome.stats.max_arc_queue,
                    "{}",
                    sched.name()
                );
            }
        }
    }

    #[test]
    fn infeasible_plan_is_predicted_infeasible() {
        // two relays with zero delay on the same path must collide
        let g = generators::path(6);
        let p = stacked_relays(&g, 2, 3);
        let plan = crate::SchedulePlan::assemble(
            "collide",
            0,
            1,
            0,
            &p,
            vec![crate::Unit::global(0, 0, 6), crate::Unit::global(1, 0, 6)],
        );
        let pred = predict(&p, &plan).unwrap();
        let outcome = execute_plan(&p, &plan).unwrap();
        assert!(outcome.stats.late_messages > 0);
        assert!(!pred.feasible());
    }

    #[test]
    fn feasibility_prediction_is_exact_over_random_graphs_and_plans() {
        // property test: over random gnp graphs and varied flood plans,
        // predicted feasibility always equals executed feasibility — the
        // doubling pre-check never rejects a guess that would have
        // succeeded (and never accepts one that would fail)
        use crate::synthetic::FloodBall;
        use das_graph::NodeId;
        let mut saw_feasible = false;
        let mut saw_infeasible = false;
        for case in 0u64..24 {
            let g = generators::gnp_connected(8 + (case % 3) as usize * 2, 0.35, 1000 + case);
            let n = g.node_count();
            let k = 2 + (case % 3) as usize;
            let same_source = case % 2 == 0;
            let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..k)
                .map(|a| {
                    let src = if same_source {
                        NodeId((case % n as u64) as u32)
                    } else {
                        NodeId(
                            (das_congest::util::seed_mix(case, 1000 + a as u64) % n as u64) as u32,
                        )
                    };
                    Box::new(FloodBall::new(a as u64, &g, src, 2)) as Box<dyn BlackBoxAlgorithm>
                })
                .collect();
            let p = DasProblem::new(&g, algos, 7 + case);
            // structured cases (same source): delay gap 0 always collides
            // on the source's arcs, gap >= 1 never does — so both sides of
            // the property are guaranteed to be exercised. Random-source
            // cases add unstructured overlap.
            let mut units = Vec::new();
            for a in 0..k {
                let delay = if same_source {
                    a as u64 * (case % 3)
                } else {
                    das_congest::util::seed_mix(case, a as u64) % 4
                };
                units.push(crate::Unit::global(a, delay, n));
            }
            let plan = crate::SchedulePlan::assemble("prop", case, 1, 0, &p, units);
            let pred = predict(&p, &plan).unwrap();
            let outcome = execute_plan(&p, &plan).unwrap();
            assert_eq!(
                pred.feasible(),
                outcome.stats.late_messages == 0,
                "case {case}: prediction must agree with execution"
            );
            saw_feasible |= pred.feasible();
            saw_infeasible |= !pred.feasible();
        }
        assert!(saw_feasible, "property test must exercise feasible plans");
        assert!(
            saw_infeasible,
            "property test must exercise infeasible plans"
        );
    }

    #[test]
    fn empty_plan_predicts_nothing() {
        let g = generators::path(4);
        let p = stacked_relays(&g, 1, 1);
        let plan = crate::SchedulePlan::assemble(
            "empty",
            0,
            1,
            0,
            &p,
            vec![crate::Unit {
                algo: 0,
                delay: vec![0; 4],
                stride: 1,
                trunc: vec![0; 4],
            }],
        );
        let pred = predict(&p, &plan).unwrap();
        assert_eq!(pred.predicted_engine_rounds, 0);
        assert_eq!(pred.max_arc_load(), 0);
    }
}
