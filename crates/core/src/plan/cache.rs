//! Guess-independent planning artifacts: reuse the expensive part of
//! [`plan()`](crate::Scheduler::plan) across doubling attempts.
//!
//! The doubling search of [`crate::doubling`] re-sizes the same scheduler
//! for a sequence of congestion guesses. Most of what `plan()` computes
//! never looks at the guess: the private scheduler's carve/share
//! pre-computation (Lemmas 4.2/4.3) and its per-cluster `Θ(log n)`-wise
//! generators live over the fixed PRG field, and the raw generator words
//! each `(layer, cluster, algorithm)` draws are the same no matter how the
//! delay law is sized. Only the *law* — and the reduction of those words
//! into concrete delays — depends on the guess. This is exactly the
//! paper's "charge the pre-computation once" argument for standard
//! doubling: the instance-level decomposition is built once, and each
//! budget guess pays only for re-sampling.
//!
//! A [`PlanArtifact`] freezes that guess-independent prefix for one
//! `(problem, sched_seed)` pair. [`crate::Scheduler::build_artifact`]
//! constructs it and [`crate::Scheduler::size_plan`] turns it into a
//! [`SchedulePlan`] for a concrete guess. The split is **provably
//! invisible**: a plan sized from the artifact is byte-identical
//! (canonical JSON) to a from-scratch `plan()` with the corresponding
//! override — `tests/plan_cache_equivalence.rs` and the CI dump-diff
//! enforce it.
//!
//! Per-scheduler contents:
//!
//! * **private** — the [`Clustering`]-derived truncations, the charged
//!   `precompute_rounds`, and the raw per-`(layer, algorithm, node)`
//!   generator word pairs (drawn over the fixed Mersenne field, so they
//!   are guess-independent); sizing only re-derives the delay law and
//!   reduces the cached pairs.
//! * **uniform** — the phase length plus the shared [`KWiseGenerator`]
//!   and per-algorithm bucket draws at the scheduler's own default range.
//!   The uniform generator's modulus is the *prime delay span itself*
//!   (footnote 6), so draws at a different guess cannot be reused without
//!   breaking byte-identity — sizing reuses the cached draws when the
//!   guess maps to the cached modulus and rebuilds the (cheap,
//!   `Θ(log n)`-coefficient) generator otherwise. The congestion /
//!   dilation measurement feeding the default sizing is cached on the
//!   [`crate::DasProblem`] either way.
//! * **tuned / sequential / interleave** — nothing in these plans depends
//!   on a guess, so the artifact is the finished [`SchedulePlan`] itself
//!   and sizing is a clone.

use crate::plan::SchedulePlan;
use das_cluster::Clustering;
use das_prg::KWiseGenerator;

/// The cached, guess-independent prefix of one scheduler's planning work
/// for a fixed `(problem, sched_seed)` pair.
///
/// Build with [`crate::Scheduler::build_artifact`]; turn into plans with
/// [`crate::Scheduler::size_plan`]. An artifact is only meaningful for
/// the scheduler value (and problem) it was built from — sizing it with a
/// different scheduler panics.
#[derive(Clone, Debug)]
pub struct PlanArtifact {
    scheduler: &'static str,
    sched_seed: u64,
    pub(crate) data: ArtifactData,
}

impl PlanArtifact {
    /// Wraps scheduler-specific artifact data (crate-internal: scheduler
    /// impls construct artifacts through `build_artifact`).
    pub(crate) fn new(scheduler: &'static str, sched_seed: u64, data: ArtifactData) -> Self {
        PlanArtifact {
            scheduler,
            sched_seed,
            data,
        }
    }

    /// An artifact holding a finished plan outright — the correct cache
    /// for schedulers with nothing guess-dependent to re-size.
    pub(crate) fn fixed(scheduler: &'static str, sched_seed: u64, plan: SchedulePlan) -> Self {
        PlanArtifact::new(scheduler, sched_seed, ArtifactData::Fixed(plan))
    }

    /// Name of the scheduler this artifact was built by.
    pub fn scheduler(&self) -> &'static str {
        self.scheduler
    }

    /// The `sched_seed` all plans sized from this artifact carry.
    pub fn sched_seed(&self) -> u64 {
        self.sched_seed
    }

    /// The pre-computation charge (in engine rounds) baked into every plan
    /// sized from this artifact — paid once no matter how many guesses are
    /// sized, which is the point of the cache.
    pub fn precompute_rounds(&self) -> u64 {
        match &self.data {
            ArtifactData::Fixed(plan) => plan.precompute_rounds,
            ArtifactData::Uniform(_) => 0,
            ArtifactData::Private(a) => a.precompute_rounds,
        }
    }

    /// Panics with a uniform message when a scheduler is handed an
    /// artifact it did not build.
    pub(crate) fn expect_scheduler(&self, name: &str) {
        assert_eq!(
            self.scheduler, name,
            "PlanArtifact built by `{}` cannot size plans for `{}`",
            self.scheduler, name
        );
    }
}

/// Scheduler-specific artifact payloads.
#[derive(Clone, Debug)]
pub(crate) enum ArtifactData {
    /// A finished plan: nothing the scheduler computes depends on a guess.
    Fixed(SchedulePlan),
    /// [`crate::UniformScheduler`] payload.
    Uniform(UniformArtifact),
    /// [`crate::PrivateScheduler`] payload.
    Private(PrivateArtifact),
}

/// Cached prefix for the shared-randomness uniform scheduler.
#[derive(Clone, Debug)]
pub(crate) struct UniformArtifact {
    /// `⌈phase_factor · ln n⌉` big-round length.
    pub(crate) phase_len: u64,
    /// The shared generator at the scheduler's *default* delay span. Its
    /// modulus is that span's prime, so draws transfer to a guess only
    /// when the guess maps to the same prime.
    pub(crate) gen: KWiseGenerator,
    /// Per-algorithm `(r1, r2)` bucket draws from [`UniformArtifact::gen`],
    /// in algorithm order.
    pub(crate) draws: Vec<(u64, u64)>,
}

/// Cached prefix for the private-randomness scheduler: everything up to
/// (and including) the raw generator draws; only the delay law and the
/// reduction of draws into delays remain per guess.
#[derive(Clone, Debug)]
pub(crate) struct PrivateArtifact {
    /// `⌈phase_factor · ln n⌉` big-round length.
    pub(crate) phase_len: u64,
    /// Carve + share rounds, charged once across all sized plans.
    pub(crate) precompute_rounds: u64,
    /// Number of clustering layers (fixes the block-decay law's shape).
    pub(crate) num_layers: usize,
    /// Per-layer contained radii — each sized unit's truncation vector.
    pub(crate) trunc: Vec<Vec<u32>>,
    /// Raw generator word pairs per layer, indexed `algo · n + node`,
    /// drawn over the fixed Mersenne field (guess-independent).
    pub(crate) draws: Vec<Vec<(u64, u64)>>,
}

/// The *seed-independent* prefix of one scheduler's planning work for a
/// fixed problem, shared across a whole **sched-seed sweep**.
///
/// Where [`PlanArtifact`] freezes the guess-independent prefix for one
/// `(problem, sched_seed)` pair, a `SweepArtifact` freezes the part of
/// planning that does not depend on the seed at all. A trial sweep builds
/// it once per `(problem, scheduler)` via
/// [`crate::Scheduler::build_sweep_artifact`] and derives every per-seed
/// plan via [`crate::Scheduler::plan_swept`]. The split is byte-invisible:
/// `plan_swept(problem, art, s)` equals `plan(problem, s)` in canonical
/// JSON for every seed `s` — `tests/plan_cache_equivalence.rs` enforces it
/// for all five schedulers.
///
/// Per-scheduler contents:
///
/// * **sequential / interleave** — the finished plan; the seed is pure
///   provenance, so re-seeding rewrites the `sched_seed` tag.
/// * **uniform / tuned** — the phase length and the delay range; the
///   `Θ(log n)`-coefficient generator and its draws are seed-dependent and
///   cheap, so each seed rebuilds them.
/// * **private** — the carved [`Clustering`] (Lemma 4.2), which draws from
///   the scheduler's *own* seed and is therefore sched-seed-independent;
///   each seed redoes only the in-cluster sharing (Lemma 4.3) and the
///   delay draws.
#[derive(Clone, Debug)]
pub struct SweepArtifact {
    scheduler: &'static str,
    pub(crate) data: SweepData,
}

impl SweepArtifact {
    /// Wraps scheduler-specific sweep data (crate-internal: scheduler
    /// impls construct sweep artifacts through `build_sweep_artifact`).
    pub(crate) fn new(scheduler: &'static str, data: SweepData) -> Self {
        SweepArtifact { scheduler, data }
    }

    /// An artifact holding a finished plan whose seed is pure provenance —
    /// re-seeding is a clone plus a `sched_seed` rewrite.
    pub(crate) fn seed_tagged(scheduler: &'static str, plan: SchedulePlan) -> Self {
        SweepArtifact::new(scheduler, SweepData::SeedTagged(plan))
    }

    /// The conservative no-cache artifact: `plan_swept` re-plans from
    /// scratch per seed, which is trivially byte-identical.
    pub(crate) fn replan(scheduler: &'static str) -> Self {
        SweepArtifact::new(scheduler, SweepData::Replan)
    }

    /// Name of the scheduler this artifact was built by.
    pub fn scheduler(&self) -> &'static str {
        self.scheduler
    }

    /// Whether the artifact actually carries shared planning work (`false`
    /// for the conservative replan form) — what a sweep harness should
    /// count as a cache hit per derived plan.
    pub fn shares_planning(&self) -> bool {
        !matches!(self.data, SweepData::Replan)
    }

    /// Panics with a uniform message when a scheduler is handed a sweep
    /// artifact it did not build.
    pub(crate) fn expect_scheduler(&self, name: &str) {
        assert_eq!(
            self.scheduler, name,
            "SweepArtifact built by `{}` cannot derive plans for `{}`",
            self.scheduler, name
        );
    }
}

/// Scheduler-specific sweep-artifact payloads.
#[derive(Clone, Debug)]
pub(crate) enum SweepData {
    /// Nothing cached: derive each seed's plan from scratch.
    Replan,
    /// A finished plan whose `sched_seed` is pure provenance.
    SeedTagged(SchedulePlan),
    /// [`crate::UniformScheduler`] / [`crate::TunedUniformScheduler`]
    /// payload: the seed-independent sizing.
    Uniform(UniformSweep),
    /// [`crate::PrivateScheduler`] payload: the carved clustering.
    Private(PrivateSweep),
}

/// Seed-independent sizing for the shared-randomness schedulers.
#[derive(Clone, Debug)]
pub(crate) struct UniformSweep {
    /// Big-round length.
    pub(crate) phase_len: u64,
    /// Requested delay range (pre-prime-rounding) in big-rounds.
    pub(crate) range: u64,
}

/// Seed-independent prefix for the private-randomness scheduler.
#[derive(Clone, Debug)]
pub(crate) struct PrivateSweep {
    /// The carved clustering (Lemma 4.2), drawn from the scheduler's own
    /// seed — identical for every plan of the sweep.
    pub(crate) clustering: Clustering,
}
