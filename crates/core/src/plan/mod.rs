//! The `SchedulePlan` intermediate representation: what a scheduler
//! *decides*, separated from the honest execution that *realizes* it.
//!
//! Every scheduler in the paper — Theorem 1.1's uniform random delays, the
//! §3 remark variant, and Theorem 4.1's private-randomness construction —
//! is really a *plan* (per-unit delays, truncations, a phase length)
//! followed by one shared execution style. This module makes that split
//! first-class:
//!
//! 1. **plan** — [`crate::Scheduler::plan`] turns a problem and a
//!    `sched_seed` into a [`SchedulePlan`]: a serializable value that can
//!    be inspected, diffed, stored, re-executed, or analyzed *without*
//!    paying for an engine run.
//! 2. **execute** — [`execute_plan`] realizes any plan on the CONGEST
//!    engine. All schedulers share this single honest executor.
//! 3. **verify** — [`crate::verify::against_references`] checks the
//!    outcome against the alone runs, as before.
//!
//! The [`analysis`] submodule composes a plan with the problem's cached
//! reference communication patterns to predict per-edge loads and late
//! messages without executing — [`crate::doubling`] uses it to reject
//! infeasible congestion guesses before paying for an engine run.

pub mod analysis;
pub mod cache;
pub mod diff;

use crate::exec::{ExecError, Executor, ExecutorConfig, ShardReport, StepPlan, Unit};
use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedule::ScheduleOutcome;
use das_obs::{ObsConfig, ObsReport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ways a [`SchedulePlan`] can be malformed for a given problem. Plans
/// produced by the in-crate schedulers are valid by construction; this
/// protects the deserialize/execute entry points (`dasched plan` round
/// trips, hand-edited JSON) from panics, hangs, and allocation blowups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// `phase_len` is zero: no engine rounds would ever drain, so the
    /// executor would loop forever.
    ZeroPhaseLen,
    /// A unit's `stride` is zero: its step plan would not be strictly
    /// increasing.
    ZeroStride {
        /// Index of the offending unit.
        unit: usize,
    },
    /// A unit references an algorithm the problem does not have.
    UnknownAlgorithm {
        /// Index of the offending unit.
        unit: usize,
        /// The referenced algorithm index.
        algo: usize,
        /// How many algorithms the problem has.
        known: usize,
    },
    /// A unit's per-node delay vector has the wrong length.
    DelayLength {
        /// Index of the offending unit.
        unit: usize,
        /// Expected length (the node count).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A unit's per-node truncation vector has the wrong length.
    TruncLength {
        /// Index of the offending unit.
        unit: usize,
        /// Expected length (the node count).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A unit schedules a step beyond the executor's engine-round budget
    /// (or past `u64` altogether): building its step table would exhaust
    /// memory before the round cap could even trigger.
    Oversized {
        /// Index of the offending unit.
        unit: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroPhaseLen => write!(f, "plan has phase_len 0"),
            PlanError::ZeroStride { unit } => write!(f, "unit {unit} has stride 0"),
            PlanError::UnknownAlgorithm { unit, algo, known } => write!(
                f,
                "unit {unit} references algorithm {algo}, but the problem has {known}"
            ),
            PlanError::DelayLength {
                unit,
                expected,
                got,
            } => write!(
                f,
                "unit {unit} delay vector has length {got}, expected {expected}"
            ),
            PlanError::TruncLength {
                unit,
                expected,
                got,
            } => write!(
                f,
                "unit {unit} truncation vector has length {got}, expected {expected}"
            ),
            PlanError::Oversized { unit } => write!(
                f,
                "unit {unit} schedules steps beyond the engine-round budget"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Any failure on the plan → execute path: a model violation in a
/// reference run, a malformed plan, or an execution that exceeded its
/// round budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// An algorithm violated the CONGEST model in its alone run.
    Reference(ReferenceError),
    /// The plan is malformed for the problem (see [`PlanError`]).
    InvalidPlan(PlanError),
    /// The execution failed (see [`ExecError`]).
    Exec(ExecError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Reference(e) => write!(f, "reference run failed: {e}"),
            SchedError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            SchedError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Reference(e) => Some(e),
            SchedError::InvalidPlan(e) => Some(e),
            SchedError::Exec(e) => Some(e),
        }
    }
}

impl From<ReferenceError> for SchedError {
    fn from(e: ReferenceError) -> Self {
        SchedError::Reference(e)
    }
}

impl From<PlanError> for SchedError {
    fn from(e: PlanError) -> Self {
        SchedError::InvalidPlan(e)
    }
}

impl From<ExecError> for SchedError {
    fn from(e: ExecError) -> Self {
        SchedError::Exec(e)
    }
}

/// A complete scheduling decision, decoupled from execution.
///
/// A plan is a pure function of `(problem, sched_seed)` for every scheduler
/// in this crate: planning twice with the same inputs yields an identical
/// (byte-identical once serialized) plan. Executing a plan with
/// [`execute_plan`] on the problem it was planned for reproduces exactly
/// the outcome of the fused [`crate::Scheduler::run`] path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// Name of the scheduler that produced the plan (provenance).
    pub scheduler: String,
    /// The scheduler-randomness seed the plan was drawn from.
    pub sched_seed: u64,
    /// Engine rounds per big-round.
    pub phase_len: u64,
    /// CONGEST rounds charged for pre-computation (clustering + randomness
    /// sharing for the private scheduler; 0 otherwise).
    pub precompute_rounds: u64,
    /// Predicted schedule length in engine rounds: the last step big-round
    /// boundary, `(last_step + 1) · phase_len`. The measured length equals
    /// this unless messages spill past the last step (see
    /// [`analysis::predict`] for the exact prediction).
    pub predicted_rounds: u64,
    /// The scheduled units: per-node delays, strides, truncations.
    pub units: Vec<Unit>,
}

impl SchedulePlan {
    /// Assembles a plan, deriving `predicted_rounds` from the merged step
    /// plan of `units` (earliest-wins deduplication included).
    ///
    /// # Panics
    /// Panics if `units` is malformed for the problem (wrong vector sizes
    /// or out-of-range algorithm indices).
    pub fn assemble(
        scheduler: &str,
        sched_seed: u64,
        phase_len: u64,
        precompute_rounds: u64,
        problem: &DasProblem<'_>,
        units: Vec<Unit>,
    ) -> Self {
        let phase_len = phase_len.max(1);
        let steps = StepPlan::build(problem.graph(), problem.algorithms(), &units);
        let predicted_rounds = steps
            .last_big_round()
            .map_or(0, |b| (b + 1).saturating_mul(phase_len));
        SchedulePlan {
            scheduler: scheduler.to_string(),
            sched_seed,
            phase_len,
            precompute_rounds,
            predicted_rounds,
            units,
        }
    }

    /// Total units in the plan.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Restricts the plan to the nodes `shard` owns (per `of_node`, the
    /// shard index of each node): non-owned nodes get `trunc = 0` (no
    /// steps) and `delay = 0` (no dead weight in the JSON), owned nodes
    /// keep their schedule byte-for-byte.
    ///
    /// This is what the networked coordinator ships each worker instead of
    /// the full plan: a worker only ever steps its own nodes, its big-round
    /// table tolerates being shorter than the global schedule, and the
    /// termination decision is coordinator-driven from the *full* plan — so
    /// executing a slice is byte-identical to executing the full plan on
    /// that shard. Slicing with a one-shard partition returns a plan whose
    /// step schedule equals the original's.
    ///
    /// # Panics
    /// Panics if a unit's vectors are shorter than `of_node` (callers slice
    /// validated plans).
    pub fn slice_for_shard(&self, of_node: &[u32], shard: u32) -> SchedulePlan {
        let mut sliced = self.clone();
        for u in &mut sliced.units {
            for (v, &owner) in of_node.iter().enumerate() {
                if owner != shard {
                    u.trunc[v] = 0;
                    u.delay[v] = 0;
                }
            }
        }
        sliced
    }

    /// The plan's canonical JSON form (pretty-printed, keys in declaration
    /// order): equal plans serialize byte-identically.
    ///
    /// # Panics
    /// Never in practice — all plan fields are JSON-representable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan is JSON-representable")
    }

    /// Parses a plan from its JSON form.
    ///
    /// JSON well-formedness is not plan well-formedness: callers that will
    /// execute the parsed plan should also run
    /// [`SchedulePlan::validate`] against the target problem (the
    /// [`execute_plan`] entry points do so automatically).
    ///
    /// # Errors
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Checks that the plan is well-formed *for this problem*: nonzero
    /// `phase_len`, and per unit a known algorithm, full-length delay and
    /// truncation vectors, nonzero stride, and a step table that fits the
    /// default engine-round budget (a deserialized delay of `2^40` would
    /// otherwise exhaust memory building the big-round table, and a zero
    /// `phase_len` or stride would hang or panic the executor).
    ///
    /// Every deserialize/execute entry point calls this; plans assembled
    /// by the in-crate schedulers pass by construction.
    ///
    /// # Errors
    /// Returns the first [`PlanError`] found.
    pub fn validate(&self, problem: &DasProblem<'_>) -> Result<(), PlanError> {
        if self.phase_len == 0 {
            return Err(PlanError::ZeroPhaseLen);
        }
        let n = problem.graph().node_count();
        let k = problem.k();
        let budget = ExecutorConfig::default().max_engine_rounds;
        for (i, u) in self.units.iter().enumerate() {
            if u.algo >= k {
                return Err(PlanError::UnknownAlgorithm {
                    unit: i,
                    algo: u.algo,
                    known: k,
                });
            }
            if u.delay.len() != n {
                return Err(PlanError::DelayLength {
                    unit: i,
                    expected: n,
                    got: u.delay.len(),
                });
            }
            if u.trunc.len() != n {
                return Err(PlanError::TruncLength {
                    unit: i,
                    expected: n,
                    got: u.trunc.len(),
                });
            }
            if u.stride == 0 {
                return Err(PlanError::ZeroStride { unit: i });
            }
            let rounds = problem.algorithms()[u.algo].rounds();
            for v in 0..n {
                let lim = rounds.min(u.trunc[v]) as u64;
                if lim == 0 {
                    continue;
                }
                // last big-round of this unit at v, then its engine-round
                // boundary — both with overflow checks
                let fits = (lim - 1)
                    .checked_mul(u.stride)
                    .and_then(|x| x.checked_add(u.delay[v]))
                    .and_then(|last| last.checked_add(1))
                    .and_then(|bigs| bigs.checked_mul(self.phase_len))
                    .is_some_and(|engine| engine <= budget);
                if !fits {
                    return Err(PlanError::Oversized { unit: i });
                }
            }
        }
        Ok(())
    }
}

/// Executes a plan on the problem's algorithms: the single shared stage 2
/// of the plan → execute → verify pipeline.
///
/// The execution is honest — per-arc FIFO queues at CONGEST bandwidth,
/// canonical machines, late messages dropped and counted — and depends
/// only on `(problem.tape_seed, plan)`: re-executing a stored plan
/// reproduces the original [`ScheduleOutcome`] exactly.
///
/// # Errors
/// Returns [`SchedError::InvalidPlan`] if the plan fails
/// [`SchedulePlan::validate`], or [`SchedError::Exec`] if the engine-round
/// cap is hit.
pub fn execute_plan(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
) -> Result<ScheduleOutcome, SchedError> {
    execute_plan_with(
        problem,
        plan,
        &ExecutorConfig::default().with_phase_len(plan.phase_len),
    )
}

/// [`execute_plan`] with an explicit executor configuration (custom round
/// budget, message size, departure recording).
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_with(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    config: &ExecutorConfig,
) -> Result<ScheduleOutcome, SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let mut outcome = Executor::run(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        config,
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok(outcome)
}

/// [`execute_plan`] with observability: records metrics, load profiles,
/// and (in full mode) trace events while executing, without perturbing the
/// outcome — the [`ScheduleOutcome`] is byte-identical to
/// [`execute_plan`]'s for every `obs` setting. The report is `None` when
/// recording is disabled.
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_observed(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    obs: &ObsConfig,
) -> Result<(ScheduleOutcome, Option<ObsReport>), SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let (mut outcome, report) = Executor::run_observed(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &ExecutorConfig::default().with_phase_len(plan.phase_len),
        obs,
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report))
}

/// [`execute_plan_observed`] with an explicit executor configuration
/// (engine selection, custom round budget). `config.phase_len` is
/// overridden by the plan's own phase length, which the plan semantics
/// require.
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_observed_with(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    obs: &ObsConfig,
    config: &ExecutorConfig,
) -> Result<(ScheduleOutcome, Option<ObsReport>), SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let (mut outcome, report) = Executor::run_observed(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &config.clone().with_phase_len(plan.phase_len),
        obs,
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report))
}

/// Executes a plan on the sharded executor with `shards` worker threads
/// (see [`Executor::run_sharded`]): the outcome is byte-identical to
/// [`execute_plan`], and the returned [`ShardReport`] carries the
/// partition-dependent measurements (per-shard wall-clock, cross-shard
/// message counts).
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_sharded(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    shards: usize,
) -> Result<(ScheduleOutcome, ShardReport), SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let (mut outcome, report) = Executor::run_sharded(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &ExecutorConfig::default()
            .with_phase_len(plan.phase_len)
            .with_shards(shards),
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report))
}

/// [`execute_plan_sharded`] with an explicit executor configuration
/// (engine selection, custom round budget); the shard count comes from
/// `config.shards` and the phase length from the plan.
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_sharded_with(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    config: &ExecutorConfig,
) -> Result<(ScheduleOutcome, ShardReport), SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let (mut outcome, report) = Executor::run_sharded(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &config.clone().with_phase_len(plan.phase_len),
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report))
}

/// [`execute_plan_sharded`] with observability: each shard records on its
/// own lane and the recordings merge into one report (see
/// [`Executor::run_sharded_observed`]). The outcome stays byte-identical
/// to [`execute_plan`] for every shard count and `obs` setting.
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_sharded_observed(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    shards: usize,
    obs: &ObsConfig,
) -> Result<(ScheduleOutcome, ShardReport, Option<ObsReport>), SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let (mut outcome, report, obs_report) = Executor::run_sharded_observed(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &ExecutorConfig::default()
            .with_phase_len(plan.phase_len)
            .with_shards(shards),
        obs,
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report, obs_report))
}

/// [`execute_plan_sharded_observed`] with an explicit executor
/// configuration (custom engine, shard count, round budget).
///
/// # Errors
/// As [`execute_plan`].
pub fn execute_plan_sharded_observed_with(
    problem: &DasProblem<'_>,
    plan: &SchedulePlan,
    obs: &ObsConfig,
    config: &ExecutorConfig,
) -> Result<(ScheduleOutcome, ShardReport, Option<ObsReport>), SchedError> {
    plan.validate(problem)?;
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let (mut outcome, report, obs_report) = Executor::run_sharded_observed(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &config.clone().with_phase_len(plan.phase_len),
        obs,
    )?;
    outcome.precompute_rounds = plan.precompute_rounds;
    Ok((outcome, report, obs_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::Scheduler;
    use crate::synthetic::{FloodBall, RelayChain};
    use crate::{
        InterleaveScheduler, PrivateScheduler, SequentialScheduler, TunedUniformScheduler,
        UniformScheduler,
    };
    use das_graph::{generators, NodeId};

    fn mixed_problem(g: &das_graph::Graph) -> DasProblem<'_> {
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = vec![
            Box::new(RelayChain::new(0, g)),
            Box::new(RelayChain::new(1, g)),
            Box::new(FloodBall::new(2, g, NodeId(0), 4)),
        ];
        DasProblem::new(g, algos, 17)
    }

    fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
        vec![
            Box::new(SequentialScheduler),
            Box::new(InterleaveScheduler),
            Box::new(UniformScheduler::default()),
            Box::new(TunedUniformScheduler::default()),
            Box::new(PrivateScheduler::default()),
        ]
    }

    #[test]
    fn plan_then_execute_matches_fused_run_for_every_scheduler() {
        let g = generators::path(10);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let fused = sched.run(&p).unwrap();
            let plan = sched.plan(&p, sched.default_sched_seed()).unwrap();
            let staged = execute_plan(&p, &plan).unwrap();
            assert_eq!(fused.outputs, staged.outputs, "{}", sched.name());
            assert_eq!(fused.stats, staged.stats, "{}", sched.name());
            assert_eq!(fused.departures, staged.departures, "{}", sched.name());
            assert_eq!(
                fused.precompute_rounds,
                staged.precompute_rounds,
                "{}",
                sched.name()
            );
        }
    }

    #[test]
    fn planning_is_deterministic_and_json_stable() {
        let g = generators::path(12);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let a = sched.plan(&p, 12345).unwrap();
            let b = sched.plan(&p, 12345).unwrap();
            assert_eq!(a, b, "{}", sched.name());
            assert_eq!(a.to_json(), b.to_json(), "{}", sched.name());
            assert_eq!(a.scheduler, sched.name());
            assert_eq!(a.sched_seed, 12345);
        }
    }

    #[test]
    fn shard_slices_are_fixed_points_and_one_shard_slice_is_the_full_plan() {
        let g = generators::path(12);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let plan = sched.plan(&p, 9).unwrap();
            // 1 shard owns every node, so the slice IS the plan — byte for
            // byte, since slicing must not disturb serialization.
            let whole = crate::shard::Partition::degree_balanced(&g, 1);
            let s1 = plan.slice_for_shard(whole.of_node(), 0);
            assert_eq!(s1, plan, "{}", sched.name());
            assert_eq!(s1.to_json(), plan.to_json(), "{}", sched.name());
            // slicing an already-sliced plan changes nothing (the worker's
            // cross-check relies on this fixed point)
            let part = crate::shard::Partition::degree_balanced(&g, 3);
            for shard in 0..3u32 {
                let slice = plan.slice_for_shard(part.of_node(), shard);
                assert_eq!(
                    slice.slice_for_shard(part.of_node(), shard),
                    slice,
                    "{}",
                    sched.name()
                );
                // non-owned nodes are fully disabled in every unit
                for u in &slice.units {
                    for (v, &owner) in part.of_node().iter().enumerate() {
                        if owner != shard {
                            assert_eq!(u.trunc[v], 0, "{}", sched.name());
                            assert_eq!(u.delay[v], 0, "{}", sched.name());
                        }
                    }
                }
                // a slice still validates against the problem
                slice.validate(&p).unwrap();
            }
        }
    }

    #[test]
    fn plan_json_roundtrips_to_the_same_outcome() {
        let g = generators::path(10);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let plan = sched.plan(&p, 7).unwrap();
            let revived = SchedulePlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(plan, revived, "{}", sched.name());
            let a = execute_plan(&p, &plan).unwrap();
            let b = execute_plan(&p, &revived).unwrap();
            assert_eq!(a.outputs, b.outputs, "{}", sched.name());
            assert_eq!(a.stats, b.stats, "{}", sched.name());
        }
    }

    #[test]
    fn predicted_rounds_matches_clean_execution_length() {
        let g = generators::path(8);
        let p = mixed_problem(&g);
        // sequential never spills: the predicted boundary is the measured
        // schedule length
        let plan = SequentialScheduler.plan(&p, 0).unwrap();
        let outcome = execute_plan(&p, &plan).unwrap();
        assert_eq!(outcome.stats.late_messages, 0);
        assert_eq!(plan.predicted_rounds, outcome.schedule_rounds());
    }

    #[test]
    fn validate_rejects_each_malformed_plan_shape() {
        let g = generators::path(6);
        let p = mixed_problem(&g);
        let good = SequentialScheduler.plan(&p, 0).unwrap();
        assert_eq!(good.validate(&p), Ok(()));

        // phase_len 0 would make the drain loop a no-op: an infinite hang
        let mut bad = good.clone();
        bad.phase_len = 0;
        assert_eq!(bad.validate(&p), Err(PlanError::ZeroPhaseLen));
        assert!(matches!(
            execute_plan(&p, &bad),
            Err(SchedError::InvalidPlan(PlanError::ZeroPhaseLen))
        ));

        // stride 0 would trip the StepPlan strictly-increasing assert
        let mut bad = good.clone();
        bad.units[1].stride = 0;
        assert_eq!(bad.validate(&p), Err(PlanError::ZeroStride { unit: 1 }));

        // unknown algorithm index
        let mut bad = good.clone();
        bad.units[2].algo = 9;
        assert_eq!(
            bad.validate(&p),
            Err(PlanError::UnknownAlgorithm {
                unit: 2,
                algo: 9,
                known: 3
            })
        );

        // missized delay / truncation vectors
        let mut bad = good.clone();
        bad.units[0].delay.pop();
        assert_eq!(
            bad.validate(&p),
            Err(PlanError::DelayLength {
                unit: 0,
                expected: 6,
                got: 5
            })
        );
        let mut bad = good.clone();
        bad.units[0].trunc.push(1);
        assert_eq!(
            bad.validate(&p),
            Err(PlanError::TruncLength {
                unit: 0,
                expected: 6,
                got: 7
            })
        );

        // a 2^40 delay from hand-edited JSON: building the big-round table
        // would exhaust memory, so validate must reject it up front
        let mut bad = good.clone();
        bad.units[0].delay[3] = 1 << 40;
        assert_eq!(bad.validate(&p), Err(PlanError::Oversized { unit: 0 }));
        // ... and near-u64 values must not overflow the check itself
        let mut bad = good.clone();
        bad.units[0].delay[0] = u64::MAX - 1;
        bad.units[0].stride = u64::MAX / 2;
        assert_eq!(bad.validate(&p), Err(PlanError::Oversized { unit: 0 }));
    }

    #[test]
    fn malformed_json_plan_is_rejected_before_execution() {
        let g = generators::path(6);
        let p = mixed_problem(&g);
        let mut plan = UniformScheduler::default().plan(&p, 3).unwrap();
        plan.units[0].delay[2] = 1 << 50;
        let revived = SchedulePlan::from_json(&plan.to_json()).unwrap();
        let err = execute_plan(&p, &revived).unwrap_err();
        assert!(matches!(
            err,
            SchedError::InvalidPlan(PlanError::Oversized { unit: 0 })
        ));
        assert!(err.to_string().contains("invalid plan"));
    }

    #[test]
    fn sharded_execution_matches_staged_for_every_scheduler() {
        let g = generators::grid(3, 4);
        // snake route: consecutive hops are grid edges
        let route: Vec<NodeId> = (0..3u32)
            .flat_map(|row| {
                let cols: Vec<u32> = if row.is_multiple_of(2) {
                    (0..4).collect()
                } else {
                    (0..4).rev().collect()
                };
                cols.into_iter().map(move |c| NodeId(row * 4 + c))
            })
            .collect();
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = vec![
            Box::new(RelayChain::along(0, &g, route.clone())),
            Box::new(RelayChain::along(1, &g, route)),
            Box::new(FloodBall::new(2, &g, NodeId(0), 4)),
        ];
        let p = DasProblem::new(&g, algos, 17);
        for sched in all_schedulers() {
            let plan = sched.plan(&p, 11).unwrap();
            let fused = execute_plan(&p, &plan).unwrap();
            for shards in [1, 2, 5] {
                let (sharded, report) = execute_plan_sharded(&p, &plan, shards).unwrap();
                assert_eq!(
                    format!("{fused:?}"),
                    format!("{sharded:?}"),
                    "{} with {shards} shards",
                    sched.name()
                );
                assert_eq!(report.shards, shards.min(g.node_count()));
            }
        }
    }

    #[test]
    fn round_cap_surfaces_through_execute_plan_with() {
        let g = generators::path(8);
        let p = mixed_problem(&g);
        let plan = SequentialScheduler.plan(&p, 0).unwrap();
        let config = ExecutorConfig {
            max_engine_rounds: 2,
            ..ExecutorConfig::default()
        }
        .with_phase_len(plan.phase_len);
        let err = execute_plan_with(&p, &plan, &config).unwrap_err();
        assert!(matches!(
            err,
            SchedError::Exec(ExecError::RoundCapExceeded { cap: 2, .. })
        ));
    }

    #[test]
    fn different_sched_seeds_change_the_plan_but_not_the_references() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 5);
        let sched = UniformScheduler::default();
        let a = sched.plan(&p, 1).unwrap();
        let b = sched.plan(&p, 2).unwrap();
        assert_ne!(a.units, b.units, "sched_seed drives the delays");
        assert_eq!(
            p.reference_runs_computed(),
            6,
            "replanning reuses the cached reference runs"
        );
    }
}
