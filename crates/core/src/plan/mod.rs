//! The `SchedulePlan` intermediate representation: what a scheduler
//! *decides*, separated from the honest execution that *realizes* it.
//!
//! Every scheduler in the paper — Theorem 1.1's uniform random delays, the
//! §3 remark variant, and Theorem 4.1's private-randomness construction —
//! is really a *plan* (per-unit delays, truncations, a phase length)
//! followed by one shared execution style. This module makes that split
//! first-class:
//!
//! 1. **plan** — [`crate::Scheduler::plan`] turns a problem and a
//!    `sched_seed` into a [`SchedulePlan`]: a serializable value that can
//!    be inspected, diffed, stored, re-executed, or analyzed *without*
//!    paying for an engine run.
//! 2. **execute** — [`execute_plan`] realizes any plan on the CONGEST
//!    engine. All schedulers share this single honest executor.
//! 3. **verify** — [`crate::verify::against_references`] checks the
//!    outcome against the alone runs, as before.
//!
//! The [`analysis`] submodule composes a plan with the problem's cached
//! reference communication patterns to predict per-edge loads and late
//! messages without executing — [`crate::doubling`] uses it to reject
//! infeasible congestion guesses before paying for an engine run.

pub mod analysis;

use crate::exec::{Executor, ExecutorConfig, StepPlan, Unit};
use crate::problem::DasProblem;
use crate::schedule::ScheduleOutcome;
use serde::{Deserialize, Serialize};

/// A complete scheduling decision, decoupled from execution.
///
/// A plan is a pure function of `(problem, sched_seed)` for every scheduler
/// in this crate: planning twice with the same inputs yields an identical
/// (byte-identical once serialized) plan. Executing a plan with
/// [`execute_plan`] on the problem it was planned for reproduces exactly
/// the outcome of the fused [`crate::Scheduler::run`] path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// Name of the scheduler that produced the plan (provenance).
    pub scheduler: String,
    /// The scheduler-randomness seed the plan was drawn from.
    pub sched_seed: u64,
    /// Engine rounds per big-round.
    pub phase_len: u64,
    /// CONGEST rounds charged for pre-computation (clustering + randomness
    /// sharing for the private scheduler; 0 otherwise).
    pub precompute_rounds: u64,
    /// Predicted schedule length in engine rounds: the last step big-round
    /// boundary, `(last_step + 1) · phase_len`. The measured length equals
    /// this unless messages spill past the last step (see
    /// [`analysis::predict`] for the exact prediction).
    pub predicted_rounds: u64,
    /// The scheduled units: per-node delays, strides, truncations.
    pub units: Vec<Unit>,
}

impl SchedulePlan {
    /// Assembles a plan, deriving `predicted_rounds` from the merged step
    /// plan of `units` (earliest-wins deduplication included).
    ///
    /// # Panics
    /// Panics if `units` is malformed for the problem (wrong vector sizes
    /// or out-of-range algorithm indices).
    pub fn assemble(
        scheduler: &str,
        sched_seed: u64,
        phase_len: u64,
        precompute_rounds: u64,
        problem: &DasProblem<'_>,
        units: Vec<Unit>,
    ) -> Self {
        let phase_len = phase_len.max(1);
        let steps = StepPlan::build(problem.graph(), problem.algorithms(), &units);
        let predicted_rounds = steps
            .last_big_round()
            .map_or(0, |b| (b + 1).saturating_mul(phase_len));
        SchedulePlan {
            scheduler: scheduler.to_string(),
            sched_seed,
            phase_len,
            precompute_rounds,
            predicted_rounds,
            units,
        }
    }

    /// Total units in the plan.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The plan's canonical JSON form (pretty-printed, keys in declaration
    /// order): equal plans serialize byte-identically.
    ///
    /// # Panics
    /// Never in practice — all plan fields are JSON-representable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan is JSON-representable")
    }

    /// Parses a plan from its JSON form.
    ///
    /// # Errors
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Executes a plan on the problem's algorithms: the single shared stage 2
/// of the plan → execute → verify pipeline.
///
/// The execution is honest — per-arc FIFO queues at CONGEST bandwidth,
/// canonical machines, late messages dropped and counted — and depends
/// only on `(problem.tape_seed, plan)`: re-executing a stored plan
/// reproduces the original [`ScheduleOutcome`] exactly.
///
/// # Panics
/// Panics if the plan is malformed for this problem (missized delay or
/// truncation vectors, out-of-range algorithm indices) or if the
/// engine-round cap is hit.
pub fn execute_plan(problem: &DasProblem<'_>, plan: &SchedulePlan) -> ScheduleOutcome {
    let seeds: Vec<u64> = (0..problem.k()).map(|i| problem.algo_seed(i)).collect();
    let mut outcome = Executor::run(
        problem.graph(),
        problem.algorithms(),
        &seeds,
        &plan.units,
        &ExecutorConfig::default().with_phase_len(plan.phase_len),
    );
    outcome.precompute_rounds = plan.precompute_rounds;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::Scheduler;
    use crate::synthetic::{FloodBall, RelayChain};
    use crate::{
        InterleaveScheduler, PrivateScheduler, SequentialScheduler, TunedUniformScheduler,
        UniformScheduler,
    };
    use das_graph::{generators, NodeId};

    fn mixed_problem(g: &das_graph::Graph) -> DasProblem<'_> {
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = vec![
            Box::new(RelayChain::new(0, g)),
            Box::new(RelayChain::new(1, g)),
            Box::new(FloodBall::new(2, g, NodeId(0), 4)),
        ];
        DasProblem::new(g, algos, 17)
    }

    fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
        vec![
            Box::new(SequentialScheduler),
            Box::new(InterleaveScheduler),
            Box::new(UniformScheduler::default()),
            Box::new(TunedUniformScheduler::default()),
            Box::new(PrivateScheduler::default()),
        ]
    }

    #[test]
    fn plan_then_execute_matches_fused_run_for_every_scheduler() {
        let g = generators::path(10);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let fused = sched.run(&p).unwrap();
            let plan = sched.plan(&p, sched.default_sched_seed()).unwrap();
            let staged = execute_plan(&p, &plan);
            assert_eq!(fused.outputs, staged.outputs, "{}", sched.name());
            assert_eq!(fused.stats, staged.stats, "{}", sched.name());
            assert_eq!(fused.departures, staged.departures, "{}", sched.name());
            assert_eq!(
                fused.precompute_rounds,
                staged.precompute_rounds,
                "{}",
                sched.name()
            );
        }
    }

    #[test]
    fn planning_is_deterministic_and_json_stable() {
        let g = generators::path(12);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let a = sched.plan(&p, 12345).unwrap();
            let b = sched.plan(&p, 12345).unwrap();
            assert_eq!(a, b, "{}", sched.name());
            assert_eq!(a.to_json(), b.to_json(), "{}", sched.name());
            assert_eq!(a.scheduler, sched.name());
            assert_eq!(a.sched_seed, 12345);
        }
    }

    #[test]
    fn plan_json_roundtrips_to_the_same_outcome() {
        let g = generators::path(10);
        let p = mixed_problem(&g);
        for sched in all_schedulers() {
            let plan = sched.plan(&p, 7).unwrap();
            let revived = SchedulePlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(plan, revived, "{}", sched.name());
            let a = execute_plan(&p, &plan);
            let b = execute_plan(&p, &revived);
            assert_eq!(a.outputs, b.outputs, "{}", sched.name());
            assert_eq!(a.stats, b.stats, "{}", sched.name());
        }
    }

    #[test]
    fn predicted_rounds_matches_clean_execution_length() {
        let g = generators::path(8);
        let p = mixed_problem(&g);
        // sequential never spills: the predicted boundary is the measured
        // schedule length
        let plan = SequentialScheduler.plan(&p, 0).unwrap();
        let outcome = execute_plan(&p, &plan);
        assert_eq!(outcome.stats.late_messages, 0);
        assert_eq!(plan.predicted_rounds, outcome.schedule_rounds());
    }

    #[test]
    fn different_sched_seeds_change_the_plan_but_not_the_references() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 5);
        let sched = UniformScheduler::default();
        let a = sched.plan(&p, 1).unwrap();
        let b = sched.plan(&p, 2).unwrap();
        assert_ne!(a.units, b.units, "sched_seed drives the delays");
        assert_eq!(
            p.reference_runs_computed(),
            6,
            "replanning reuses the cached reference runs"
        );
    }
}
