//! Structural diff of two [`SchedulePlan`]s with a predicted-load
//! comparison: the ROADMAP's plan-diffing tool.
//!
//! The diff answers "what did the scheduler decide differently, and what
//! does that do to the load" without executing either plan: unit-by-unit
//! delay/truncation deltas come from the plans themselves, and the
//! per-phase load comparison reuses [`analysis::predict`]'s content-free
//! replay, so the whole diff costs two predictions.

use crate::plan::analysis::{self, LoadPrediction};
use crate::plan::{SchedError, SchedulePlan};
use crate::problem::DasProblem;
use std::fmt::Write as _;

/// How one unit differs between the two plans (units are compared by
/// position; plans from the same scheduler family emit units in a stable
/// order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitDiff {
    /// Unit index in both plans.
    pub unit: usize,
    /// Algorithm the unit runs in plan A / plan B (usually equal; a
    /// mismatch means the plans schedule different work at this slot).
    pub algo: (usize, usize),
    /// Nodes whose start delay differs.
    pub delay_changed: usize,
    /// Largest per-node delay shift in big-rounds, `max |delay_a - delay_b|`.
    pub max_delay_shift: u64,
    /// Nodes whose truncation differs.
    pub trunc_changed: usize,
    /// Whether the stride differs.
    pub stride_changed: bool,
}

/// A full diff of two plans for the same problem: headline scheduling
/// parameters, per-unit delay/truncation deltas, and both predicted load
/// profiles.
#[derive(Clone, Debug)]
pub struct PlanDiff {
    /// Scheduler names `(A, B)`.
    pub scheduler: (String, String),
    /// Scheduler seeds `(A, B)`.
    pub sched_seed: (u64, u64),
    /// Phase lengths `(A, B)`.
    pub phase_len: (u64, u64),
    /// Pre-computation rounds `(A, B)`.
    pub precompute_rounds: (u64, u64),
    /// Predicted schedule lengths from the plans `(A, B)`.
    pub predicted_rounds: (u64, u64),
    /// Unit counts `(A, B)`.
    pub units: (usize, usize),
    /// Units (over the common index range) that differ, in index order.
    pub unit_diffs: Vec<UnitDiff>,
    /// Predicted load of plan A (see [`analysis::predict`]).
    pub load_a: LoadPrediction,
    /// Predicted load of plan B.
    pub load_b: LoadPrediction,
}

/// Rows shown in the per-phase load table before eliding; the render says
/// how many rows were elided, so nothing is truncated silently.
const MAX_TABLE_ROWS: usize = 40;

impl PlanDiff {
    /// Diffs two plans against the same problem, predicting both loads.
    ///
    /// # Errors
    /// Returns [`SchedError::InvalidPlan`] if either plan is malformed for
    /// the problem, or [`SchedError::Reference`] if the reference runs the
    /// prediction replays fail.
    pub fn between(
        problem: &DasProblem<'_>,
        a: &SchedulePlan,
        b: &SchedulePlan,
    ) -> Result<PlanDiff, SchedError> {
        a.validate(problem)?;
        b.validate(problem)?;
        let load_a = analysis::predict(problem, a)?;
        let load_b = analysis::predict(problem, b)?;
        let mut unit_diffs = Vec::new();
        for (i, (ua, ub)) in a.units.iter().zip(&b.units).enumerate() {
            let delay_changed = ua
                .delay
                .iter()
                .zip(&ub.delay)
                .filter(|(x, y)| x != y)
                .count();
            let max_delay_shift = ua
                .delay
                .iter()
                .zip(&ub.delay)
                .map(|(&x, &y)| x.abs_diff(y))
                .max()
                .unwrap_or(0);
            let trunc_changed = ua
                .trunc
                .iter()
                .zip(&ub.trunc)
                .filter(|(x, y)| x != y)
                .count();
            let d = UnitDiff {
                unit: i,
                algo: (ua.algo, ub.algo),
                delay_changed,
                max_delay_shift,
                trunc_changed,
                stride_changed: ua.stride != ub.stride,
            };
            if d.algo.0 != d.algo.1
                || d.delay_changed > 0
                || d.trunc_changed > 0
                || d.stride_changed
            {
                unit_diffs.push(d);
            }
        }
        Ok(PlanDiff {
            scheduler: (a.scheduler.clone(), b.scheduler.clone()),
            sched_seed: (a.sched_seed, b.sched_seed),
            phase_len: (a.phase_len, b.phase_len),
            precompute_rounds: (a.precompute_rounds, b.precompute_rounds),
            predicted_rounds: (a.predicted_rounds, b.predicted_rounds),
            units: (a.unit_count(), b.unit_count()),
            unit_diffs,
            load_a,
            load_b,
        })
    }

    /// Whether the plans schedule identically (same parameters and units;
    /// provenance fields like the scheduler name may still differ).
    pub fn schedules_identically(&self) -> bool {
        self.unit_diffs.is_empty()
            && self.units.0 == self.units.1
            && self.phase_len.0 == self.phase_len.1
            && self.precompute_rounds.0 == self.precompute_rounds.1
    }

    /// Renders the diff as the plain-text report `dasched plan --diff`
    /// prints.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan diff: A = {} (seed {}) vs B = {} (seed {})",
            self.scheduler.0, self.sched_seed.0, self.scheduler.1, self.sched_seed.1
        );
        let pair = |(x, y): (u64, u64)| {
            if x == y {
                format!("{x} (unchanged)")
            } else {
                format!("{x} -> {y}")
            }
        };
        let _ = writeln!(s, "  phase_len:         {}", pair(self.phase_len));
        let _ = writeln!(s, "  precompute rounds: {}", pair(self.precompute_rounds));
        let _ = writeln!(s, "  predicted rounds:  {}", pair(self.predicted_rounds));
        let compared = self.units.0.min(self.units.1);
        let _ = writeln!(
            s,
            "  units: {} vs {} ({} compared, {} only in A, {} only in B)",
            self.units.0,
            self.units.1,
            compared,
            self.units.0 - compared,
            self.units.1 - compared,
        );
        if self.schedules_identically() {
            let _ = writeln!(s, "  the plans schedule identically");
        }
        if !self.unit_diffs.is_empty() {
            let _ = writeln!(s, "  changed units: {}", self.unit_diffs.len());
            for d in self.unit_diffs.iter().take(MAX_TABLE_ROWS) {
                let algo = if d.algo.0 == d.algo.1 {
                    format!("algo {}", d.algo.0)
                } else {
                    format!("algo {} -> {}", d.algo.0, d.algo.1)
                };
                let stride = if d.stride_changed {
                    ", stride differs"
                } else {
                    ""
                };
                let _ = writeln!(
                    s,
                    "    unit {:>4} ({algo}): {} delays differ (max shift {}), \
                     {} truncations differ{stride}",
                    d.unit, d.delay_changed, d.max_delay_shift, d.trunc_changed,
                );
            }
            if self.unit_diffs.len() > MAX_TABLE_ROWS {
                let _ = writeln!(
                    s,
                    "    ({} more changed units)",
                    self.unit_diffs.len() - MAX_TABLE_ROWS
                );
            }
        }
        let _ = writeln!(s, "  predicted load:");
        let _ = writeln!(
            s,
            "    feasible: A {} / B {}; predicted late: {} -> {}",
            if self.load_a.feasible() { "yes" } else { "no" },
            if self.load_b.feasible() { "yes" } else { "no" },
            self.load_a.predicted_late,
            self.load_b.predicted_late,
        );
        let _ = writeln!(
            s,
            "    max arc load: {} -> {}; peak big-round arc load: {} -> {}",
            self.load_a.max_arc_load(),
            self.load_b.max_arc_load(),
            self.load_a.peak_big_round_arc_load,
            self.load_b.peak_big_round_arc_load,
        );
        let rows = self
            .load_a
            .big_round_load
            .len()
            .max(self.load_b.big_round_load.len());
        if rows > 0 {
            let _ = writeln!(
                s,
                "    per-phase predicted load (messages injected per big-round):"
            );
            let _ = writeln!(
                s,
                "      {:>9} {:>8} {:>8} {:>8}",
                "big-round", "A", "B", "delta"
            );
            for b in 0..rows.min(MAX_TABLE_ROWS) {
                let la = self.load_a.big_round_load.get(b).copied().unwrap_or(0);
                let lb = self.load_b.big_round_load.get(b).copied().unwrap_or(0);
                let _ = writeln!(
                    s,
                    "      {b:>9} {la:>8} {lb:>8} {:>+8}",
                    lb as i64 - la as i64
                );
            }
            if rows > MAX_TABLE_ROWS {
                let _ = writeln!(s, "      ({} more big-rounds)", rows - MAX_TABLE_ROWS);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::Scheduler;
    use crate::synthetic::RelayChain;
    use crate::{BlackBoxAlgorithm, UniformScheduler};
    use das_graph::generators;

    fn problem(g: &das_graph::Graph, k: usize) -> DasProblem<'_> {
        let algos = (0..k)
            .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, 11)
    }

    #[test]
    fn identical_plans_diff_empty() {
        let g = generators::path(8);
        let p = problem(&g, 3);
        let sched = UniformScheduler::default();
        let plan = sched.plan(&p, 5).unwrap();
        let d = PlanDiff::between(&p, &plan, &plan).unwrap();
        assert!(d.schedules_identically());
        assert!(d.unit_diffs.is_empty());
        assert_eq!(d.load_a, d.load_b);
        assert!(d.render().contains("the plans schedule identically"));
    }

    #[test]
    fn different_seeds_show_delay_shifts_and_load_table() {
        let g = generators::path(10);
        let p = problem(&g, 4);
        let sched = UniformScheduler::default();
        let a = sched.plan(&p, 1).unwrap();
        let b = sched.plan(&p, 2).unwrap();
        let d = PlanDiff::between(&p, &a, &b).unwrap();
        assert_eq!(d.units, (4, 4));
        assert!(
            !d.unit_diffs.is_empty(),
            "different seeds should draw different delays"
        );
        for ud in &d.unit_diffs {
            assert_eq!(ud.algo.0, ud.algo.1);
            assert!(ud.max_delay_shift > 0);
        }
        let text = d.render();
        assert!(text.contains("changed units:"));
        assert!(text.contains("per-phase predicted load"));
        assert!(text.contains("big-round"));
    }

    #[test]
    fn unit_count_mismatch_is_reported_not_fatal() {
        let g = generators::path(6);
        let p = problem(&g, 2);
        let sched = UniformScheduler::default();
        let a = sched.plan(&p, 1).unwrap();
        let mut b = a.clone();
        b.units.pop();
        let d = PlanDiff::between(&p, &a, &b).unwrap();
        assert_eq!(d.units, (2, 1));
        assert!(!d.schedules_identically());
        assert!(d.render().contains("1 only in A"));
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let g = generators::path(6);
        let p = problem(&g, 2);
        let sched = UniformScheduler::default();
        let a = sched.plan(&p, 1).unwrap();
        let mut bad = a.clone();
        bad.phase_len = 0;
        assert!(matches!(
            PlanDiff::between(&p, &a, &bad),
            Err(SchedError::InvalidPlan(_))
        ));
    }
}
