//! Synthetic black-box algorithms with controllable communication
//! patterns, used by tests, benchmarks, and the lower-bound instances.
//!
//! All of them propagate state through their messages, so that *any*
//! scheduling mistake (a dropped, late, or mis-ordered causal dependency)
//! changes some node's output and is caught by
//! [`crate::verify::against_references`].

use crate::algorithm::{
    Aid, AlgoNode, AlgoSend, AlgoSlab, BatchedSends, BlackBoxAlgorithm, NodeBatch,
};
use das_graph::{Graph, NodeId};
use std::sync::Arc;

fn mix(a: u64, b: u64) -> u64 {
    das_congest::util::seed_mix(a, b)
}

fn token_of(payload: &[u8]) -> u64 {
    u64::from_le_bytes(payload[..8].try_into().expect("8-byte token"))
}

/// A token relayed along a fixed route, one hop per round; every visited
/// node folds the token into its state and re-stamps it. Dilation = route
/// length − 1, and each route edge is loaded exactly once.
#[derive(Clone, Debug)]
pub struct RelayChain {
    aid: Aid,
    /// Shared with every per-node machine: routes are immutable and `n`
    /// machines are created per run, so cloning the backing storage per
    /// machine would dominate machine-creation cost on long routes.
    route: Arc<[NodeId]>,
}

impl RelayChain {
    /// A relay along nodes `0, 1, …, n−1`; requires consecutive ids to be
    /// adjacent (e.g. on [`das_graph::generators::path`] graphs).
    ///
    /// # Panics
    /// Panics if consecutive ids are not adjacent.
    pub fn new(aid: u64, g: &Graph) -> Self {
        let route: Vec<NodeId> = g.nodes().collect();
        Self::along(aid, g, route)
    }

    /// A relay along an explicit route of adjacent nodes.
    ///
    /// # Panics
    /// Panics if the route is empty or has non-adjacent consecutive nodes.
    pub fn along(aid: u64, g: &Graph, route: Vec<NodeId>) -> Self {
        assert!(!route.is_empty(), "route must be non-empty");
        for w in route.windows(2) {
            assert!(
                g.has_edge(w[0], w[1]),
                "route hop {}-{} missing",
                w[0],
                w[1]
            );
        }
        RelayChain {
            aid: Aid(aid),
            route: route.into(),
        }
    }

    /// The route.
    pub fn route(&self) -> &[NodeId] {
        &self.route
    }
}

struct RelayNode {
    aid: u64,
    /// Positions of this node on the route (a route may revisit a node).
    positions: Vec<usize>,
    route: Arc<[NodeId]>,
    round: usize,
    state: u64,
}

impl BlackBoxAlgorithm for RelayChain {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        (self.route.len() - 1) as u32
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        let positions = self
            .route
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == v)
            .map(|(i, _)| i)
            .collect();
        Box::new(RelayNode {
            aid: self.aid.0,
            positions,
            route: Arc::clone(&self.route),
            round: 0,
            state: mix(seed, v.0 as u64),
        })
    }

    fn create_nodes(&self, nodes: &[NodeId], n: usize, seeds: &[u64]) -> NodeBatch {
        assert_eq!(nodes.len(), seeds.len(), "one seed per node");
        // Slab index of each graph node (`u32::MAX` = not in this batch),
        // then one CSR pass over the route: O(route + nodes) total, where
        // the per-node constructor pays O(route) *per machine*.
        let mut slab_of = vec![u32::MAX; n];
        for (i, &v) in nodes.iter().enumerate() {
            slab_of[v.index()] = i as u32;
        }
        let mut pos_off = vec![0u32; nodes.len() + 1];
        for &rv in self.route.iter() {
            let slab = slab_of[rv.index()];
            if slab != u32::MAX {
                pos_off[slab as usize + 1] += 1;
            }
        }
        for i in 1..pos_off.len() {
            pos_off[i] += pos_off[i - 1];
        }
        let mut cursor = pos_off.clone();
        let mut pos = vec![0u32; *pos_off.last().unwrap() as usize];
        // filled in route order, so each machine's positions are ascending
        // — the same order `create_node`'s enumerate-filter produces
        for (p, &rv) in self.route.iter().enumerate() {
            let slab = slab_of[rv.index()];
            if slab != u32::MAX {
                pos[cursor[slab as usize] as usize] = p as u32;
                cursor[slab as usize] += 1;
            }
        }
        let states = seeds
            .iter()
            .zip(nodes)
            .map(|(&s, &v)| mix(s, u64::from(v.0)))
            .collect();
        let len = nodes.len();
        NodeBatch::new(
            Box::new(RelaySlab {
                aid: self.aid.0,
                route: Arc::clone(&self.route),
                pos_off,
                pos,
                states,
                rounds: vec![0u32; len],
            }),
            len,
        )
    }
}

/// Node-contiguous relay machines: per-machine state in flat vectors and
/// route positions in one CSR table, behaviorally identical to
/// [`RelayNode`] machine-for-machine.
struct RelaySlab {
    aid: u64,
    route: Arc<[NodeId]>,
    /// CSR offsets into `pos`: machine `i`'s route positions are
    /// `pos[pos_off[i]..pos_off[i + 1]]`, ascending.
    pos_off: Vec<u32>,
    pos: Vec<u32>,
    states: Vec<u64>,
    rounds: Vec<u32>,
}

impl AlgoSlab for RelaySlab {
    fn step_into(&mut self, i: usize, inbox: &[(NodeId, Vec<u8>)], out: &mut BatchedSends) {
        let mut state = self.states[i];
        for (_, payload) in inbox {
            state = mix(state, token_of(payload));
        }
        let round = self.rounds[i];
        for &p in &self.pos[self.pos_off[i] as usize..self.pos_off[i + 1] as usize] {
            let p = p as usize;
            if p as u32 == round && p + 1 < self.route.len() {
                out.push(self.route[p + 1], &mix(state, self.aid).to_le_bytes());
            }
        }
        self.states[i] = state;
        self.rounds[i] = round + 1;
        out.end_segment();
    }

    fn output(&self, i: usize) -> Option<Vec<u8>> {
        Some(self.states[i].to_le_bytes().to_vec())
    }
}

impl AlgoNode for RelayNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (_, payload) in inbox {
            self.state = mix(self.state, token_of(payload));
        }
        // The node at route position r forwards the (folded) token in
        // round r; position 0 injects it in round 0.
        let mut sends = Vec::new();
        for &pos in &self.positions {
            if pos == self.round && pos + 1 < self.route.len() {
                sends.push(AlgoSend {
                    to: self.route[pos + 1],
                    payload: mix(self.state, self.aid).to_le_bytes().to_vec(),
                });
            }
        }
        self.round += 1;
        sends
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.state.to_le_bytes().to_vec())
    }
}

/// A fixed, prescribed communication pattern: send on `(round, from, to)`
/// triples. Every node folds everything it receives into a running state
/// and stamps that state into everything it sends, so causal chains are
/// fully output-sensitive. The pattern itself is input-independent (the
/// packet-routing-like case).
#[derive(Clone, Debug)]
pub struct Prescribed {
    aid: Aid,
    rounds: u32,
    /// sends[r] = list of (from, to); shared with every per-node machine
    /// (the pattern is immutable once built).
    sends: Arc<Vec<Vec<(NodeId, NodeId)>>>,
}

impl Prescribed {
    /// Creates a prescribed-pattern algorithm from `(round, from, to)`
    /// triples. Duplicate triples are collapsed (a communication pattern
    /// is a set).
    ///
    /// # Panics
    /// Panics if any pair is not an edge of `g`.
    pub fn new(aid: u64, g: &Graph, triples: &[(u32, NodeId, NodeId)]) -> Self {
        let mut triples = triples.to_vec();
        triples.sort_unstable();
        triples.dedup();
        // +2: one round to send the last message, one to absorb it
        let rounds = triples.iter().map(|&(r, _, _)| r + 2).max().unwrap_or(1);
        let mut sends = vec![Vec::new(); rounds as usize];
        for &(r, from, to) in &triples {
            assert!(g.has_edge(from, to), "({from},{to}) is not an edge");
            sends[r as usize].push((from, to));
        }
        Prescribed {
            aid: Aid(aid),
            rounds,
            sends: Arc::new(sends),
        }
    }

    /// Total number of messages in the pattern.
    pub fn message_count(&self) -> usize {
        self.sends.iter().map(|s| s.len()).sum()
    }
}

struct PrescribedNode {
    me: NodeId,
    round: usize,
    sends: Arc<Vec<Vec<(NodeId, NodeId)>>>,
    state: u64,
}

impl BlackBoxAlgorithm for Prescribed {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        Box::new(PrescribedNode {
            me: v,
            round: 0,
            sends: Arc::clone(&self.sends),
            state: mix(seed, v.0 as u64),
        })
    }

    fn create_nodes(&self, nodes: &[NodeId], _n: usize, seeds: &[u64]) -> NodeBatch {
        assert_eq!(nodes.len(), seeds.len(), "one seed per node");
        let states = seeds
            .iter()
            .zip(nodes)
            .map(|(&s, &v)| mix(s, u64::from(v.0)))
            .collect();
        let len = nodes.len();
        NodeBatch::new(
            Box::new(PrescribedSlab {
                me: nodes.to_vec(),
                sends: Arc::clone(&self.sends),
                states,
                rounds: vec![0u32; len],
            }),
            len,
        )
    }
}

/// Node-contiguous prescribed-pattern machines. Each round's `(from, to)`
/// list is sorted ascending (built from sorted, deduplicated triples), so
/// one machine's sends are a contiguous range found by binary search —
/// in the same ascending-`to` order [`PrescribedNode`]'s linear filter
/// produces.
struct PrescribedSlab {
    me: Vec<NodeId>,
    sends: Arc<Vec<Vec<(NodeId, NodeId)>>>,
    states: Vec<u64>,
    rounds: Vec<u32>,
}

impl AlgoSlab for PrescribedSlab {
    fn step_into(&mut self, i: usize, inbox: &[(NodeId, Vec<u8>)], out: &mut BatchedSends) {
        let mut state = self.states[i];
        for (from, payload) in inbox {
            state = mix(state, mix(token_of(payload), u64::from(from.0)));
        }
        let round = self.rounds[i];
        if let Some(list) = self.sends.get(round as usize) {
            let me = self.me[i];
            let lo = list.partition_point(|&(f, _)| f < me);
            let hi = lo + list[lo..].partition_point(|&(f, _)| f == me);
            for &(_, to) in &list[lo..hi] {
                out.push(to, &mix(state, u64::from(round)).to_le_bytes());
            }
        }
        self.states[i] = state;
        self.rounds[i] = round + 1;
        out.end_segment();
    }

    fn output(&self, i: usize) -> Option<Vec<u8>> {
        Some(self.states[i].to_le_bytes().to_vec())
    }
}

impl AlgoNode for PrescribedNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (from, payload) in inbox {
            self.state = mix(self.state, mix(token_of(payload), from.0 as u64));
        }
        let mut out = Vec::new();
        if let Some(list) = self.sends.get(self.round) {
            for &(from, to) in list {
                if from == self.me {
                    out.push(AlgoSend {
                        to,
                        payload: mix(self.state, self.round as u64).to_le_bytes().to_vec(),
                    });
                }
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.state.to_le_bytes().to_vec())
    }
}

/// A BFS-style flood from a source up to a given depth: the communication
/// pattern is *data-dependent* — a node cannot know in advance when or
/// from whom its first token arrives (the paper's motivating example for
/// why patterns are not known a priori). Each node outputs the round it
/// first heard the token, i.e. its BFS distance when scheduled correctly.
#[derive(Clone, Debug)]
pub struct FloodBall {
    aid: Aid,
    source: NodeId,
    depth: u32,
    /// Per-node neighbor lists (nodes know their neighbors in CONGEST);
    /// shared with every per-node machine, which indexes its own row.
    neighbors: Arc<Vec<Vec<NodeId>>>,
}

impl FloodBall {
    /// Creates a flood of the given depth from `source` on `g`.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(aid: u64, g: &Graph, source: NodeId, depth: u32) -> Self {
        assert!(depth > 0, "flood needs at least one round");
        let neighbors = g
            .nodes()
            .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
            .collect();
        FloodBall {
            aid: Aid(aid),
            source,
            depth,
            neighbors: Arc::new(neighbors),
        }
    }
}

struct FloodNode {
    /// Whole-graph adjacency, shared; this machine reads row `me`.
    neighbors: Arc<Vec<Vec<NodeId>>>,
    me: usize,
    depth: u32,
    round: u32,
    heard_at: Option<u32>,
    token: u64,
    pending: bool,
}

impl BlackBoxAlgorithm for FloodBall {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        // one extra round so that nodes at distance exactly `depth` get to
        // absorb the tokens sent in round `depth - 1`
        self.depth + 1
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        let is_source = v == self.source;
        Box::new(FloodNode {
            neighbors: Arc::clone(&self.neighbors),
            me: v.index(),
            depth: self.depth,
            round: 0,
            heard_at: if is_source { Some(0) } else { None },
            token: mix(seed, self.aid.0),
            pending: is_source,
        })
    }

    fn create_nodes(&self, nodes: &[NodeId], _n: usize, seeds: &[u64]) -> NodeBatch {
        assert_eq!(nodes.len(), seeds.len(), "one seed per node");
        let len = nodes.len();
        NodeBatch::new(
            Box::new(FloodSlab {
                neighbors: Arc::clone(&self.neighbors),
                me: nodes.iter().map(|v| v.index() as u32).collect(),
                depth: self.depth,
                rounds: vec![0u32; len],
                heard_at: nodes
                    .iter()
                    .map(|&v| if v == self.source { 0 } else { u32::MAX })
                    .collect(),
                tokens: seeds.iter().map(|&s| mix(s, self.aid.0)).collect(),
                pending: nodes.iter().map(|&v| v == self.source).collect(),
            }),
            len,
        )
    }
}

/// Node-contiguous flood machines in struct-of-arrays layout
/// (`heard_at == u32::MAX` encodes "not heard yet"), behaviorally
/// identical to [`FloodNode`] machine-for-machine.
struct FloodSlab {
    neighbors: Arc<Vec<Vec<NodeId>>>,
    me: Vec<u32>,
    depth: u32,
    rounds: Vec<u32>,
    heard_at: Vec<u32>,
    tokens: Vec<u64>,
    pending: Vec<bool>,
}

impl AlgoSlab for FloodSlab {
    fn step_into(&mut self, i: usize, inbox: &[(NodeId, Vec<u8>)], out: &mut BatchedSends) {
        for (_, payload) in inbox {
            if self.heard_at[i] == u32::MAX {
                self.heard_at[i] = self.rounds[i];
                self.tokens[i] = mix(token_of(payload), 1);
                self.pending[i] = true;
            }
        }
        if self.pending[i] && self.rounds[i] < self.depth {
            self.pending[i] = false;
            let payload = self.tokens[i].to_le_bytes();
            for &u in &self.neighbors[self.me[i] as usize] {
                out.push(u, &payload);
            }
        }
        self.rounds[i] += 1;
        out.end_segment();
    }

    fn output(&self, i: usize) -> Option<Vec<u8>> {
        Some(if self.heard_at[i] == u32::MAX {
            vec![0u8]
        } else {
            let mut v = vec![1u8];
            v.extend_from_slice(&self.heard_at[i].to_le_bytes());
            v.extend_from_slice(&self.tokens[i].to_le_bytes());
            v
        })
    }
}

impl AlgoNode for FloodNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (_, payload) in inbox {
            if self.heard_at.is_none() {
                self.heard_at = Some(self.round);
                self.token = mix(token_of(payload), 1);
                self.pending = true;
            }
        }
        let mut out = Vec::new();
        if self.pending && self.round < self.depth {
            self.pending = false;
            for &u in &self.neighbors[self.me] {
                out.push(AlgoSend {
                    to: u,
                    payload: self.token.to_le_bytes().to_vec(),
                });
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(match self.heard_at {
            Some(r) => {
                let mut v = vec![1u8];
                v.extend_from_slice(&r.to_le_bytes());
                v.extend_from_slice(&self.token.to_le_bytes());
                v
            }
            None => vec![0u8],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_alone;
    use das_graph::generators;

    #[test]
    fn relay_pattern_and_determinism() {
        let g = generators::path(8);
        let algo = RelayChain::new(3, &g);
        let a = run_alone(&g, &algo, 5).unwrap();
        let b = run_alone(&g, &algo, 5).unwrap();
        assert_eq!(a.outputs, b.outputs, "deterministic");
        let c = run_alone(&g, &algo, 6).unwrap();
        assert_ne!(a.outputs, c.outputs, "seed-sensitive");
        assert_eq!(a.pattern.message_count(), 7);
        assert_eq!(a.pattern.rounds(), 7);
    }

    #[test]
    fn relay_along_custom_route() {
        let g = generators::cycle(6);
        let route = vec![NodeId(2), NodeId(3), NodeId(4)];
        let algo = RelayChain::along(9, &g, route);
        assert_eq!(algo.rounds(), 2);
        let r = run_alone(&g, &algo, 0).unwrap();
        assert_eq!(r.pattern.message_count(), 2);
    }

    #[test]
    #[should_panic]
    fn relay_rejects_broken_route() {
        let g = generators::path(5);
        RelayChain::along(0, &g, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn prescribed_pattern_matches_spec() {
        let g = generators::grid(3, 3);
        let triples = [
            (0u32, NodeId(0), NodeId(1)),
            (1, NodeId(1), NodeId(2)),
            (1, NodeId(3), NodeId(0)),
            (4, NodeId(4), NodeId(5)),
        ];
        let algo = Prescribed::new(0, &g, &triples);
        assert_eq!(algo.rounds(), 6);
        assert_eq!(algo.message_count(), 4);
        let r = run_alone(&g, &algo, 1).unwrap();
        assert_eq!(r.pattern.message_count(), 4);
        assert_eq!(r.pattern.rounds(), 5); // sends end at round 4
    }

    #[test]
    fn prescribed_state_chains_are_causal() {
        // 0 -> 1 -> 2 with state folding: node 2's output must differ if we
        // drop the first hop (sensitivity check, done by re-running with a
        // pattern that omits it).
        let g = generators::path(3);
        let full = Prescribed::new(
            0,
            &g,
            &[(0, NodeId(0), NodeId(1)), (1, NodeId(1), NodeId(2))],
        );
        let cut = Prescribed::new(0, &g, &[(1, NodeId(1), NodeId(2))]);
        let rf = run_alone(&g, &full, 2).unwrap();
        let rc = run_alone(&g, &cut, 2).unwrap();
        assert_ne!(rf.outputs[2], rc.outputs[2]);
    }

    #[test]
    fn flood_outputs_bfs_distances() {
        let g = generators::grid(4, 4);
        let algo = FloodBall::new(1, &g, NodeId(0), 6);
        let r = run_alone(&g, &algo, 2).unwrap();
        let dist = das_graph::traversal::bfs_distances(&g, NodeId(0));
        for v in g.nodes() {
            let out = r.outputs[v.index()].as_ref().unwrap();
            assert_eq!(out[0], 1, "{v} heard the flood");
            let heard = u32::from_le_bytes(out[1..5].try_into().unwrap());
            assert_eq!(heard, dist[v.index()].unwrap(), "node {v}");
        }
    }

    #[test]
    fn flood_depth_limits_reach() {
        let g = generators::path(10);
        let algo = FloodBall::new(1, &g, NodeId(0), 3);
        let r = run_alone(&g, &algo, 2).unwrap();
        assert_eq!(r.outputs[3].as_ref().unwrap()[0], 1);
        assert_eq!(r.outputs[4].as_ref().unwrap()[0], 0, "beyond depth");
    }
}
