//! Verification of schedules against the alone-run ground truth.
//!
//! The DAS requirement (§2) is that *"for each algorithm, each node outputs
//! the same value as if that algorithm was run alone"*. This module checks
//! exactly that, node by node.

use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedule::ScheduleOutcome;

/// Per-algorithm verification result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// `mismatches[a]` = nodes whose output for algorithm `a` differs from
    /// the alone run.
    pub mismatches: Vec<usize>,
    /// Number of nodes.
    pub nodes: usize,
}

impl VerifyReport {
    /// Whether every node's output matches for every algorithm.
    pub fn all_correct(&self) -> bool {
        self.mismatches.iter().all(|&m| m == 0)
    }

    /// Total mismatching (algorithm, node) pairs.
    pub fn total_mismatches(&self) -> usize {
        self.mismatches.iter().sum()
    }

    /// Fraction of correct (algorithm, node) pairs.
    pub fn correctness_rate(&self) -> f64 {
        let total = self.mismatches.len() * self.nodes;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.total_mismatches() as f64 / total as f64
    }
}

/// Compares a schedule's outputs with the problem's reference runs.
///
/// # Errors
/// Propagates a [`ReferenceError`] from computing the references.
pub fn against_references(
    problem: &DasProblem<'_>,
    outcome: &ScheduleOutcome,
) -> Result<VerifyReport, ReferenceError> {
    let refs = problem.references()?;
    assert_eq!(
        outcome.outputs.len(),
        refs.len(),
        "outcome covers a different number of algorithms"
    );
    let nodes = problem.graph().node_count();
    let mismatches = refs
        .iter()
        .zip(&outcome.outputs)
        .map(|(r, got)| {
            r.outputs
                .iter()
                .zip(got)
                .filter(|(want, have)| want != have)
                .count()
        })
        .collect();
    Ok(VerifyReport { mismatches, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, ExecutorConfig, Unit};
    use crate::synthetic::RelayChain;
    use das_graph::generators;

    #[test]
    fn clean_schedule_verifies() {
        let g = generators::path(6);
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::new(0, &g)),
                Box::new(RelayChain::new(1, &g)),
            ],
            9,
        );
        let units = vec![Unit::global(0, 0, 6), Unit::global(1, 2, 6)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0), p.algo_seed(1)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        let report = against_references(&p, &outcome).unwrap();
        assert!(report.all_correct());
        assert_eq!(report.correctness_rate(), 1.0);
    }

    #[test]
    fn colliding_schedule_fails_verification() {
        let g = generators::path(6);
        let p = DasProblem::new(
            &g,
            vec![
                Box::new(RelayChain::new(0, &g)),
                Box::new(RelayChain::new(1, &g)),
            ],
            9,
        );
        let units = vec![Unit::global(0, 0, 6), Unit::global(1, 0, 6)];
        let outcome = Executor::run(
            &g,
            p.algorithms(),
            &[p.algo_seed(0), p.algo_seed(1)],
            &units,
            &ExecutorConfig::default(),
        )
        .unwrap();
        let report = against_references(&p, &outcome).unwrap();
        assert!(!report.all_correct());
        assert!(report.total_mismatches() > 0);
        assert!(report.correctness_rate() < 1.0);
    }
}
