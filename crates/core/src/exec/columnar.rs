//! The columnar hot path: the default engine behind [`super::Executor`].
//!
//! Semantics are identical to the row engine in `exec.rs` — same big-round
//! clock, same per-arc FIFO order, same lateness rule — but the data layout
//! is columnar and deliveries are batched:
//!
//! * **Per-arc arena queues** ([`ColFifo`]): message metadata and payload
//!   bytes live in two flat, cache-line-aligned arenas per arc instead of a
//!   `Vec<Flight>` of heap payloads. Pushes are appends; pops advance a
//!   head index; arenas are recycled when the queue drains.
//! * **Batched per-arc delivery**: the row engine touches every active arc
//!   once per *engine* round; this engine touches it once per *big* round
//!   and delivers `min(phase_len, queue_len)` messages as one contiguous
//!   slice. Message `j` of the batch departs at engine round
//!   `phase_start + j` — exactly the round the row engine would assign it,
//!   because an arc delivers at most one message per engine round and
//!   `steps_done` never changes during a drain (steps happen only in the
//!   step phase). The deterministic clock is therefore preserved.
//! * **Bitset tag windows** ([`ColWindow`]): per-(algorithm, node) arrival
//!   buffers keep the row engine's live-tag ring discipline but store
//!   arrivals columnar (from/len metadata plus a byte arena) and track
//!   bucket occupancy in u64 bitset words, so the common "nothing buffered
//!   for this tag" check is a single word test that never touches bucket
//!   memory.
//! * **Deferred departure recording**: the row engine pays a `BTreeMap`
//!   insert per delivered message inside the hot loop; this engine appends
//!   flat `(algo, round, arc, engine_round)` tuples and bulk-inserts them
//!   after the run. Keys are unique (one canonical machine per (algorithm,
//!   node), deduplicated sends), so insertion order cannot matter.
//!
//! Outcome equivalence with the row engine is enforced property-style by
//! `tests/shard_equivalence.rs` and `tests/obs_neutrality.rs`, and
//! end-to-end by the `columnar-equivalence` CI job.

use super::{
    barrier_wait, ExecError, ExecStats, ExecutorConfig, ShardCtx, ShardOutput, ShardStats, Unit,
};
use crate::algorithm::{BatchedSends, BlackBoxAlgorithm, BlockStep, NodeBatch};
use crate::schedule::ScheduleOutcome;
use das_graph::{Graph, NodeId};
use das_obs::ExecObs;
use das_pattern::{SimulationMap, TimedArc};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Metadata for one queued message; its payload occupies the next `len`
/// bytes of the owning queue's byte arena.
#[derive(Clone, Copy)]
struct ColMsg {
    algo: u32,
    round: u32,
    len: u32,
}

/// Per-arc columnar FIFO: metadata and payload bytes in two flat arenas,
/// aligned to a cache line so the per-round scan over active arcs never
/// splits a queue header across lines.
#[derive(Default)]
#[repr(align(64))]
struct ColFifo {
    /// Message metadata in arrival order; `meta[head..]` is live.
    meta: Vec<ColMsg>,
    head: usize,
    /// Concatenated payloads in arrival order; `bytes[bytes_head..]` is
    /// live.
    bytes: Vec<u8>,
    bytes_head: usize,
}

impl ColFifo {
    #[inline]
    fn len(&self) -> usize {
        self.meta.len() - self.head
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.meta.len()
    }

    #[inline]
    fn push(&mut self, algo: u32, round: u32, payload: &[u8]) {
        self.meta.push(ColMsg {
            algo,
            round,
            len: payload.len() as u32,
        });
        self.bytes.extend_from_slice(payload);
    }

    /// Reclaims consumed prefixes: a cheap reset once fully drained, a
    /// compaction when the dead prefix dominates a long-lived backlog, so
    /// arena growth stays proportional to the live queue.
    #[inline]
    fn reclaim(&mut self) {
        if self.head == self.meta.len() {
            self.meta.clear();
            self.bytes.clear();
            self.head = 0;
            self.bytes_head = 0;
        } else if self.head > 64 && self.head * 2 > self.meta.len() {
            let live = self.meta.len() - self.head;
            self.meta.copy_within(self.head.., 0);
            self.meta.truncate(live);
            self.head = 0;
            let live_bytes = self.bytes.len() - self.bytes_head;
            self.bytes.copy_within(self.bytes_head.., 0);
            self.bytes.truncate(live_bytes);
            self.bytes_head = 0;
        }
    }
}

/// One tag bucket of a [`ColWindow`]: arrivals stored columnar.
#[derive(Default)]
struct ColBucket {
    /// `(sender node, payload length)` per arrival, in arrival order.
    meta: Vec<(u32, u32)>,
    /// Concatenated payload bytes, in arrival order.
    bytes: Vec<u8>,
}

/// Columnar arrival window for one (algorithm, node) machine: the same
/// live-tag ring discipline as the row engine's `TagWindow` (tags are
/// consumed strictly in order; the window starts at the consumer's next
/// tag), with bucket occupancy mirrored into u64 bitset words.
#[derive(Default)]
struct ColWindow {
    /// Smallest tag the window can currently hold.
    base: u32,
    /// Ring position of `base`'s bucket.
    head: usize,
    /// One occupancy bit per ring slot; a zero word clears 64 tags at once.
    occupied: Vec<u64>,
    /// Power-of-two ring of buckets (empty until the first push).
    buckets: Vec<ColBucket>,
}

impl ColWindow {
    /// Re-bases an **empty** window at `base`. The columnar engine skips a
    /// window entirely (neither `take` nor bucket access) while its
    /// buffered-arrival count is zero, which lets `base` go stale; the
    /// first push after such a skip re-enters the ring discipline here,
    /// using the consumer's next tag as the new base. The late-drop check
    /// guarantees every accepted arrival's tag is `>=` that next tag.
    #[inline]
    fn reset_to(&mut self, base: u32) {
        debug_assert!(self.occupied.iter().all(|w| *w == 0), "window not empty");
        self.base = base;
        self.head = 0;
    }

    /// Files one arrival under `tag`. Requires `tag >= base`, which the
    /// executor's late-drop check guarantees.
    fn push(&mut self, tag: u32, from: u32, payload: &[u8]) {
        debug_assert!(tag >= self.base, "arrival below the live window");
        let offset = (tag - self.base) as usize;
        if offset >= self.buckets.len() {
            self.grow(offset + 1);
        }
        let pos = (self.head + offset) & (self.buckets.len() - 1);
        self.occupied[pos >> 6] |= 1u64 << (pos & 63);
        let bucket = &mut self.buckets[pos];
        bucket.meta.push((from, payload.len() as u32));
        bucket.bytes.extend_from_slice(payload);
    }

    /// Moves the bucket for `tag` into `into` in canonical (sender-sorted)
    /// order and advances the window past `tag`. Payload allocations are
    /// drawn from and returned to `pool`; `scratch` is reusable sort
    /// space. The occupancy word is consulted first, so an empty tag never
    /// touches bucket memory.
    ///
    /// Sorting happens here on `(sender, offset, len)` integer triples —
    /// senders are unique per tag (a machine sends at most one message per
    /// round to a given target), so this is exactly the canonical
    /// `(NodeId, payload)` order without ever comparing payload bytes.
    fn take(
        &mut self,
        tag: u32,
        into: &mut Vec<(NodeId, Vec<u8>)>,
        pool: &mut Vec<Vec<u8>>,
        scratch: &mut Vec<(u32, u32, u32)>,
    ) {
        if !into.is_empty() {
            recycle(into, pool);
        }
        debug_assert!(tag >= self.base, "tags are consumed in order");
        if self.buckets.is_empty() {
            self.base = tag + 1;
            return;
        }
        let len = self.buckets.len();
        let offset = (tag - self.base) as usize;
        if offset >= len {
            // the window never stretched to this tag: nothing is stored
            debug_assert!(self.occupied.iter().all(|w| *w == 0));
            self.base = tag + 1;
            self.head = 0;
            return;
        }
        let mask = len - 1;
        for i in 0..offset {
            debug_assert!(
                self.buckets[(self.head + i) & mask].meta.is_empty(),
                "skipped a live tag"
            );
        }
        let pos = (self.head + offset) & mask;
        if self.occupied[pos >> 6] & (1u64 << (pos & 63)) != 0 {
            self.occupied[pos >> 6] &= !(1u64 << (pos & 63));
            let bucket = &mut self.buckets[pos];
            scratch.clear();
            let mut off = 0u32;
            for &(from, plen) in &bucket.meta {
                scratch.push((from, off, plen));
                off += plen;
            }
            scratch.sort_unstable();
            for &(from, off, plen) in scratch.iter() {
                let mut buf = pool.pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(&bucket.bytes[off as usize..(off + plen) as usize]);
                into.push((NodeId(from), buf));
            }
            bucket.meta.clear();
            bucket.bytes.clear();
        }
        self.head = (self.head + offset + 1) & mask;
        self.base = tag + 1;
    }

    fn grow(&mut self, min_len: usize) {
        let new_len = min_len.next_power_of_two().max(4);
        let mut new_buckets: Vec<ColBucket> = Vec::with_capacity(new_len);
        new_buckets.resize_with(new_len, ColBucket::default);
        let old_len = self.buckets.len();
        for (i, slot) in new_buckets.iter_mut().enumerate().take(old_len) {
            *slot = std::mem::take(&mut self.buckets[(self.head + i) & (old_len - 1)]);
        }
        self.buckets = new_buckets;
        self.head = 0;
        self.occupied = vec![0u64; new_len.div_ceil(64)];
        for (i, b) in self.buckets.iter().enumerate() {
            if !b.meta.is_empty() {
                self.occupied[i >> 6] |= 1u64 << (i & 63);
            }
        }
    }
}

/// Returns an inbox's payload allocations to the pool instead of dropping
/// them — the columnar engine's replacement for `inbox.clear()`.
#[inline]
fn recycle(inbox: &mut Vec<(NodeId, Vec<u8>)>, pool: &mut Vec<Vec<u8>>) {
    for (_, buf) in inbox.drain(..) {
        pool.push(buf);
    }
}

/// The flat step table: `(algo, node, round)` triples grouped by big-round
/// through a counting sort over two flat arrays — the columnar replacement
/// for [`super::StepPlan::build`] plus the per-engine `by_big_round`
/// regroup, whose nested `Vec<Vec<Vec<..>>>` structure costs more
/// allocations than the entire drain loop on step-dense plans.
///
/// Semantics are identical to the row builder: round `r` of algorithm `a`
/// at node `v` executes at the earliest big-round over all eligible units,
/// only the contiguous prefix of scheduled rounds is kept, the same
/// malformed-plan panics fire, and triples within a big-round appear in
/// the same ascending `(a, v, r)` order (the counting sort is stable).
struct FlatSteps {
    /// All step triples, grouped by big-round.
    steps: Vec<(u32, u32, u32)>,
    /// `steps[offsets[b]..offsets[b + 1]]` holds big-round `b`'s triples.
    offsets: Vec<usize>,
    /// The last big-round with any step (0 for an empty plan).
    last_step_round: u64,
}

impl FlatSteps {
    fn build(n: usize, algos: &[Box<dyn BlackBoxAlgorithm>], units: &[Unit]) -> Self {
        let k = algos.len();
        let mut unit_of = vec![usize::MAX; k];
        let mut single = true;
        for (i, u) in units.iter().enumerate() {
            assert!(u.algo < k, "unit for unknown algorithm");
            assert_eq!(u.delay.len(), n, "delay vector missized");
            assert_eq!(u.trunc.len(), n, "truncation vector missized");
            assert!(u.stride >= 1, "stride must be at least 1");
            if unit_of[u.algo] != usize::MAX {
                single = false;
            }
            unit_of[u.algo] = i;
        }
        if single {
            // Fast path for the dominant case (every scheduler here emits
            // at most one unit per algorithm): `earliest` is just
            // `delay[v] + r * stride`, always strictly increasing, with a
            // hole-free prefix of length `min(rounds, trunc[v])` — no
            // per-(a, v, r) scratch array needed.
            return Self::build_single_unit(n, algos, units, &unit_of);
        }
        // earliest[algo_off[a] + v * rounds_a + r] = earliest big-round
        let mut algo_off = vec![0usize; k + 1];
        for a in 0..k {
            algo_off[a + 1] = algo_off[a] + n * algos[a].rounds() as usize;
        }
        let mut earliest = vec![u64::MAX; algo_off[k]];
        for u in units {
            let rounds = algos[u.algo].rounds() as usize;
            let base = algo_off[u.algo];
            for v in 0..n {
                let lim = (rounds as u32).min(u.trunc[v]) as usize;
                let row = &mut earliest[base + v * rounds..][..rounds];
                for (r, slot) in row.iter_mut().take(lim).enumerate() {
                    let b = u.delay[v] + r as u64 * u.stride;
                    if b < *slot {
                        *slot = b;
                    }
                }
            }
        }
        // Contiguous-prefix scan per (a, v): length, monotonicity, extent.
        let mut prefix_len = vec![0u32; k * n];
        let mut last_step_round = 0u64;
        let mut total = 0usize;
        for a in 0..k {
            let rounds = algos[a].rounds() as usize;
            let base = algo_off[a];
            for v in 0..n {
                let row = &earliest[base + v * rounds..][..rounds];
                let mut prev = 0u64;
                let mut len = 0usize;
                for (r, &b) in row.iter().enumerate() {
                    if b == u64::MAX {
                        break;
                    }
                    assert!(r == 0 || b > prev, "step plan must be strictly increasing");
                    prev = b;
                    len = r + 1;
                }
                prefix_len[a * n + v] = len as u32;
                if len > 0 {
                    last_step_round = last_step_round.max(prev);
                    total += len;
                }
            }
        }
        // Counting sort by big-round, stable in (a, v, r) order.
        let mut offsets = vec![0usize; last_step_round as usize + 2];
        for a in 0..k {
            let rounds = algos[a].rounds() as usize;
            let base = algo_off[a];
            for v in 0..n {
                for r in 0..prefix_len[a * n + v] as usize {
                    offsets[earliest[base + v * rounds + r] as usize + 1] += 1;
                }
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut steps = vec![(0u32, 0u32, 0u32); total];
        for a in 0..k {
            let rounds = algos[a].rounds() as usize;
            let base = algo_off[a];
            for v in 0..n {
                for r in 0..prefix_len[a * n + v] as usize {
                    let b = earliest[base + v * rounds + r] as usize;
                    steps[cursor[b]] = (a as u32, v as u32, r as u32);
                    cursor[b] += 1;
                }
            }
        }
        FlatSteps {
            steps,
            offsets,
            last_step_round,
        }
    }

    /// The one-unit-per-algorithm case of [`FlatSteps::build`]: identical
    /// output (same triples, same stable order, same extent), computed
    /// straight from each unit's `(delay, stride, trunc)` arithmetic.
    fn build_single_unit(
        n: usize,
        algos: &[Box<dyn BlackBoxAlgorithm>],
        units: &[Unit],
        unit_of: &[usize],
    ) -> Self {
        let k = algos.len();
        let mut last_step_round = 0u64;
        let mut total = 0usize;
        for a in 0..k {
            if unit_of[a] == usize::MAX {
                continue;
            }
            let u = &units[unit_of[a]];
            let rounds = algos[a].rounds();
            for v in 0..n {
                let len = rounds.min(u.trunc[v]) as u64;
                if len > 0 {
                    last_step_round = last_step_round.max(u.delay[v] + (len - 1) * u.stride);
                    total += len as usize;
                }
            }
        }
        let mut offsets = vec![0usize; last_step_round as usize + 2];
        if units.iter().all(|u| u.stride == 1) {
            // Stride-1 counting via a difference array: each (a, v)
            // contributes one step to every big-round in the contiguous
            // range [delay[v], delay[v] + len), so per-round counts are the
            // running sum of O(k·n) range endpoints instead of `total`
            // individual increments.
            let mut diff = vec![0i64; last_step_round as usize + 2];
            for a in 0..k {
                if unit_of[a] == usize::MAX {
                    continue;
                }
                let u = &units[unit_of[a]];
                let rounds = algos[a].rounds();
                for v in 0..n {
                    let len = rounds.min(u.trunc[v]) as u64;
                    if len > 0 {
                        diff[u.delay[v] as usize] += 1;
                        diff[(u.delay[v] + len) as usize] -= 1;
                    }
                }
            }
            let mut run = 0i64;
            for b in 0..=last_step_round as usize {
                run += diff[b];
                offsets[b + 1] = offsets[b] + run as usize;
            }
        } else {
            for a in 0..k {
                if unit_of[a] == usize::MAX {
                    continue;
                }
                let u = &units[unit_of[a]];
                let rounds = algos[a].rounds();
                for v in 0..n {
                    let len = rounds.min(u.trunc[v]) as u64;
                    for r in 0..len {
                        offsets[(u.delay[v] + r * u.stride) as usize + 1] += 1;
                    }
                }
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
        }
        let mut cursor = offsets.clone();
        let mut steps = vec![(0u32, 0u32, 0u32); total];
        for a in 0..k {
            if unit_of[a] == usize::MAX {
                continue;
            }
            let u = &units[unit_of[a]];
            let rounds = algos[a].rounds();
            for v in 0..n {
                let len = rounds.min(u.trunc[v]) as u64;
                for r in 0..len {
                    let b = (u.delay[v] + r * u.stride) as usize;
                    steps[cursor[b]] = (a as u32, v as u32, r as u32);
                    cursor[b] += 1;
                }
            }
        }
        FlatSteps {
            steps,
            offsets,
            last_step_round,
        }
    }

    /// Big-round `b`'s step triples (empty past the last step round).
    #[inline]
    fn at(&self, b: u64) -> &[(u32, u32, u32)] {
        let b = b as usize;
        if b + 1 >= self.offsets.len() {
            &[]
        } else {
            &self.steps[self.offsets[b]..self.offsets[b + 1]]
        }
    }
}

/// Bulk-builds the per-algorithm departure maps from the deferred flat
/// tuples. `BTreeMap`'s `FromIterator` sorts the pairs once and
/// bulk-builds each tree bottom-up — far cheaper than the row engine's
/// per-message tree insert, and exact because departure keys are unique
/// (one canonical machine per (algorithm, node), deduplicated sends).
fn build_departures(k: usize, deferred: &[(u32, u32, u32, u32)]) -> Vec<SimulationMap> {
    let mut per_algo: Vec<Vec<(TimedArc, u32)>> = vec![Vec::new(); k];
    for &(a, round, arc, eng) in deferred {
        per_algo[a as usize].push((
            TimedArc {
                round,
                arc: das_graph::Arc::from_index(arc as usize),
            },
            eng,
        ));
    }
    per_algo
        .into_iter()
        .map(|pairs| pairs.into_iter().collect())
        .collect()
}

/// Flat `(src, dst)` node indices per arc, precomputed once so the drain
/// loop never consults the graph.
fn arc_endpoint_table(g: &Graph) -> (Vec<u32>, Vec<u32>) {
    let arcs = g.arc_count();
    let mut src = vec![0u32; arcs];
    let mut dst = vec![0u32; arcs];
    for i in 0..arcs {
        let (s, d) = g.arc_endpoints(das_graph::Arc::from_index(i));
        src[i] = s.index() as u32;
        dst[i] = d.index() as u32;
    }
    (src, dst)
}

/// The columnar fused executor loop; mirrors the row engine's `run_with`
/// byte-for-byte in observable outcome.
pub(super) fn run_fused(
    g: &Graph,
    algos: &[Box<dyn BlackBoxAlgorithm>],
    seeds: &[u64],
    units: &[Unit],
    config: &ExecutorConfig,
    obs: &mut ExecObs,
) -> Result<ScheduleOutcome, ExecError> {
    let n = g.node_count();
    let k = algos.len();
    assert_eq!(seeds.len(), k, "one seed per algorithm");
    let flat = FlatSteps::build(n, algos, units);

    // All hot-loop per-machine state is flat and indexed `a * n + v`: one
    // contiguous machine array, one steps-done array, one buffered-arrival
    // counter per window so machines with nothing buffered never touch
    // window memory at all.
    let mut machines: Vec<Box<dyn crate::algorithm::AlgoNode>> = Vec::with_capacity(k * n);
    for (a, algo) in algos.iter().enumerate() {
        for v in 0..n {
            machines.push(algo.create_node(
                NodeId(v as u32),
                n,
                das_congest::util::seed_mix(seeds[a], v as u64),
            ));
        }
    }
    let mut steps_done = vec![0u32; k * n];
    let mut windows: Vec<ColWindow> = Vec::with_capacity(k * n);
    windows.resize_with(k * n, ColWindow::default);
    let mut buffered = vec![0u32; k * n];
    let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut sort_scratch: Vec<(u32, u32, u32)> = Vec::new();
    // Duplicate-send detection via generation stamps: O(1) per send where
    // the row engine scans its sent-to list, which is quadratic in the
    // fan-out of a broadcast step.
    let mut sent_gen = vec![0u64; n];
    let mut gen: u64 = 0;

    let last_step_round = flat.last_step_round;

    let (arc_src, arc_dst) = arc_endpoint_table(g);
    let mut queues: Vec<ColFifo> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), ColFifo::default);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut scratch_arcs: Vec<usize> = Vec::new();
    obs.init(g.arc_count(), config.phase_len);
    let mut stats = ExecStats {
        phase_len: config.phase_len,
        ..ExecStats::default()
    };
    // Departures deferred as flat tuples; bulk-inserted after the run.
    let mut deferred: Vec<(u32, u32, u32, u32)> = Vec::new();
    let mut engine_round: u64 = 0;
    let mut last_activity_round: u64 = 0;

    let mut b: u64 = 0;
    loop {
        // 1. Execute the steps scheduled at big-round b (identical to the
        // row engine, with pooled inbox payloads). A machine with zero
        // buffered arrivals skips its window entirely — `reset_to` on the
        // next push restores the ring discipline.
        for &(a, v, r) in flat.at(b) {
            let idx = a as usize * n + v as usize;
            debug_assert_eq!(steps_done[idx], r, "steps execute in order");
            if r > 0 && buffered[idx] > 0 {
                // take() materializes the inbox already in canonical
                // sender-sorted order
                windows[idx].take(r - 1, &mut inbox, &mut pool, &mut sort_scratch);
                buffered[idx] -= inbox.len() as u32;
            } else if !inbox.is_empty() {
                recycle(&mut inbox, &mut pool);
            }
            obs.on_step(inbox.len());
            let sends = machines[idx].step(&inbox);
            steps_done[idx] = r + 1;
            let me = NodeId(v);
            gen += 1;
            for s in sends {
                let Some(edge) = g.find_edge(me, s.to) else {
                    stats.invalid_sends += 1;
                    obs.on_invalid_send();
                    continue;
                };
                if s.payload.len() > config.message_bytes || sent_gen[s.to.index()] == gen {
                    stats.invalid_sends += 1;
                    obs.on_invalid_send();
                    continue;
                }
                sent_gen[s.to.index()] = gen;
                let arc = g.arc_from(edge, me).index();
                let q = &mut queues[arc];
                if q.is_empty() {
                    active_arcs.push(arc);
                }
                q.push(a, r, &s.payload);
                stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                obs.on_inject(arc, q.len());
            }
        }

        // 2. Columnar drain: each active arc is visited once per big-round
        // and delivers up to phase_len queued messages as one contiguous
        // batch; message j of the batch departs at engine round
        // `phase_start + j`, exactly the round the row engine assigns it.
        let phase_start = engine_round;
        std::mem::swap(&mut active_arcs, &mut scratch_arcs);
        for &arc_idx in &scratch_arcs {
            let q = &mut queues[arc_idx];
            let cnt = (q.len() as u64).min(config.phase_len) as usize;
            if cnt == 0 {
                continue;
            }
            let from = arc_src[arc_idx];
            let dst = arc_dst[arc_idx] as usize;
            let mut off = q.bytes_head;
            for j in 0..cnt {
                let m = q.meta[q.head + j];
                let payload = &q.bytes[off..off + m.len as usize];
                off += m.len as usize;
                let eng = phase_start + j as u64;
                let a = m.algo as usize;
                if config.record_departures {
                    deferred.push((m.algo, m.round, arc_idx as u32, eng as u32));
                }
                let idx = a * n + dst;
                let late = steps_done[idx] >= m.round + 2;
                if late {
                    stats.late_messages += 1;
                } else {
                    if buffered[idx] == 0 {
                        // first arrival since the window went idle: re-base
                        // at the consumer's next tag (late-drop guarantees
                        // m.round >= that tag)
                        windows[idx].reset_to(steps_done[idx].max(1) - 1);
                    }
                    windows[idx].push(m.round, from, payload);
                    buffered[idx] += 1;
                    stats.delivered += 1;
                }
                obs.on_deliver(eng, late);
            }
            q.head += cnt;
            q.bytes_head = off;
            q.reclaim();
            if !q.is_empty() {
                active_arcs.push(arc_idx);
            }
            last_activity_round = last_activity_round.max(phase_start + cnt as u64);
        }
        scratch_arcs.clear();
        engine_round += config.phase_len;
        if engine_round > config.max_engine_rounds {
            return Err(ExecError::RoundCapExceeded {
                cap: config.max_engine_rounds,
                big_round: b,
            });
        }

        obs.end_big_round(b);
        b += 1;
        if b > last_step_round && active_arcs.is_empty() {
            break;
        }
    }

    stats.big_rounds = b;
    stats.engine_rounds = (last_step_round + 1)
        .saturating_mul(config.phase_len)
        .max(last_activity_round);

    let departures = build_departures(k, &deferred);

    let outputs = (0..k)
        .map(|a| {
            machines[a * n..(a + 1) * n]
                .iter()
                .map(|m| m.output())
                .collect()
        })
        .collect();
    Ok(ScheduleOutcome {
        outputs,
        stats,
        departures: config.record_departures.then_some(departures),
        precompute_rounds: 0,
    })
}

/// Builds one [`NodeBatch`] slab per algorithm over `nodes`, deriving each
/// machine's seed with the same per-(algorithm, node) mix every engine
/// uses — machine state is therefore independent of the engine and of the
/// partition.
fn build_batches(
    algos: &[Box<dyn BlackBoxAlgorithm>],
    seeds: &[u64],
    nodes: &[NodeId],
    n: usize,
) -> Vec<NodeBatch> {
    let mut node_seeds = vec![0u64; nodes.len()];
    algos
        .iter()
        .zip(seeds)
        .map(|(algo, &seed)| {
            for (slot, v) in node_seeds.iter_mut().zip(nodes) {
                *slot = das_congest::util::seed_mix(seed, u64::from(v.0));
            }
            algo.create_nodes(nodes, n, &node_seeds)
        })
        .collect()
}

/// The batched fused executor loop ([`super::EngineKind::ColumnarBatched`]):
/// the columnar engine with the black-box batched tier on top. Machines
/// live in one [`NodeBatch`] slab per algorithm, each big-round's step
/// triples are grouped into maximal same-algorithm runs (triples are in
/// ascending `(a, v, r)` order, so runs are contiguous and every machine
/// appears at most once per run — the step plan is strictly increasing),
/// and each run executes as **one** virtual [`NodeBatch::step_block`] call.
///
/// Byte-identity with the per-step engines holds by construction: inboxes
/// are only filled during drain phases, so taking a whole run's inboxes
/// before executing any of its steps cannot change their contents; sends
/// are validated and enqueued segment-by-segment in the run's step order,
/// which is exactly the columnar per-step order; and the drain phase is
/// the columnar drain verbatim.
pub(super) fn run_fused_batched(
    g: &Graph,
    algos: &[Box<dyn BlackBoxAlgorithm>],
    seeds: &[u64],
    units: &[Unit],
    config: &ExecutorConfig,
    obs: &mut ExecObs,
) -> Result<ScheduleOutcome, ExecError> {
    let n = g.node_count();
    let k = algos.len();
    assert_eq!(seeds.len(), k, "one seed per algorithm");
    let flat = FlatSteps::build(n, algos, units);

    // One slab per algorithm over all nodes in id order, so the slab-local
    // machine index of node v is exactly v.
    let nodes: Vec<NodeId> = (0..n).map(|v| NodeId(v as u32)).collect();
    let mut batches = build_batches(algos, seeds, &nodes, n);
    let mut steps_done = vec![0u32; k * n];
    let mut windows: Vec<ColWindow> = Vec::with_capacity(k * n);
    windows.resize_with(k * n, ColWindow::default);
    let mut buffered = vec![0u32; k * n];
    let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut sort_scratch: Vec<(u32, u32, u32)> = Vec::new();
    let mut sent_gen = vec![0u64; n];
    let mut gen: u64 = 0;
    // Per-run scratch: the concatenated inboxes of the run's steps, their
    // [`BlockStep`] descriptors, and the flat send arena.
    let mut run_inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut run_steps: Vec<BlockStep> = Vec::new();
    let mut sends_buf = BatchedSends::new();

    let last_step_round = flat.last_step_round;

    let (arc_src, arc_dst) = arc_endpoint_table(g);
    let mut queues: Vec<ColFifo> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), ColFifo::default);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut scratch_arcs: Vec<usize> = Vec::new();
    obs.init(g.arc_count(), config.phase_len);
    let mut stats = ExecStats {
        phase_len: config.phase_len,
        ..ExecStats::default()
    };
    let mut deferred: Vec<(u32, u32, u32, u32)> = Vec::new();
    let mut engine_round: u64 = 0;
    let mut last_activity_round: u64 = 0;

    let mut b: u64 = 0;
    loop {
        // 1. Step phase, one batched dispatch per same-algorithm run.
        let steps_b = flat.at(b);
        let mut i = 0usize;
        while i < steps_b.len() {
            let a = steps_b[i].0;
            let mut j = i + 1;
            while j < steps_b.len() && steps_b[j].0 == a {
                j += 1;
            }
            // Materialize the run's inboxes up front. This is safe because
            // no send of this big-round can reach an inbox before the next
            // drain phase — window contents are frozen during step phases.
            run_steps.clear();
            debug_assert!(run_inbox.is_empty());
            for &(_, v, r) in &steps_b[i..j] {
                let idx = a as usize * n + v as usize;
                debug_assert_eq!(steps_done[idx], r, "steps execute in order");
                let start = run_inbox.len() as u32;
                if r > 0 && buffered[idx] > 0 {
                    // take() materializes the inbox already in canonical
                    // sender-sorted order
                    windows[idx].take(r - 1, &mut inbox, &mut pool, &mut sort_scratch);
                    buffered[idx] -= inbox.len() as u32;
                    run_inbox.append(&mut inbox);
                }
                let len = run_inbox.len() as u32 - start;
                obs.on_step(len as usize);
                steps_done[idx] = r + 1;
                run_steps.push(BlockStep {
                    node: v,
                    round: r,
                    inbox_start: start,
                    inbox_len: len,
                });
            }
            sends_buf.clear();
            batches[a as usize].step_block(&run_steps, &run_inbox, &mut sends_buf);
            debug_assert_eq!(
                sends_buf.segments(),
                run_steps.len(),
                "one send segment per executed step"
            );
            // Validate and enqueue segment-by-segment, in the run's step
            // order — exactly the columnar per-step order. Send-free
            // segments are skipped outright: `gen` is consulted only by the
            // duplicate-send check, so it need only be distinct per
            // *non-empty* segment, and the plans here are send-sparse.
            for (si, bs) in run_steps.iter().enumerate() {
                if sends_buf.segment_is_empty(si) {
                    continue;
                }
                let me = NodeId(bs.node);
                gen += 1;
                for (to, payload) in sends_buf.segment(si) {
                    let Some(edge) = g.find_edge(me, to) else {
                        stats.invalid_sends += 1;
                        obs.on_invalid_send();
                        continue;
                    };
                    if payload.len() > config.message_bytes || sent_gen[to.index()] == gen {
                        stats.invalid_sends += 1;
                        obs.on_invalid_send();
                        continue;
                    }
                    sent_gen[to.index()] = gen;
                    let arc = g.arc_from(edge, me).index();
                    let q = &mut queues[arc];
                    if q.is_empty() {
                        active_arcs.push(arc);
                    }
                    q.push(a, bs.round, payload);
                    stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                    obs.on_inject(arc, q.len());
                }
            }
            recycle(&mut run_inbox, &mut pool);
            i = j;
        }

        // 2. Columnar drain, verbatim.
        let phase_start = engine_round;
        std::mem::swap(&mut active_arcs, &mut scratch_arcs);
        for &arc_idx in &scratch_arcs {
            let q = &mut queues[arc_idx];
            let cnt = (q.len() as u64).min(config.phase_len) as usize;
            if cnt == 0 {
                continue;
            }
            let from = arc_src[arc_idx];
            let dst = arc_dst[arc_idx] as usize;
            let mut off = q.bytes_head;
            for j in 0..cnt {
                let m = q.meta[q.head + j];
                let payload = &q.bytes[off..off + m.len as usize];
                off += m.len as usize;
                let eng = phase_start + j as u64;
                let a = m.algo as usize;
                if config.record_departures {
                    deferred.push((m.algo, m.round, arc_idx as u32, eng as u32));
                }
                let idx = a * n + dst;
                let late = steps_done[idx] >= m.round + 2;
                if late {
                    stats.late_messages += 1;
                } else {
                    if buffered[idx] == 0 {
                        windows[idx].reset_to(steps_done[idx].max(1) - 1);
                    }
                    windows[idx].push(m.round, from, payload);
                    buffered[idx] += 1;
                    stats.delivered += 1;
                }
                obs.on_deliver(eng, late);
            }
            q.head += cnt;
            q.bytes_head = off;
            q.reclaim();
            if !q.is_empty() {
                active_arcs.push(arc_idx);
            }
            last_activity_round = last_activity_round.max(phase_start + cnt as u64);
        }
        scratch_arcs.clear();
        engine_round += config.phase_len;
        if engine_round > config.max_engine_rounds {
            return Err(ExecError::RoundCapExceeded {
                cap: config.max_engine_rounds,
                big_round: b,
            });
        }

        obs.end_big_round(b);
        b += 1;
        if b > last_step_round && active_arcs.is_empty() {
            break;
        }
    }

    stats.big_rounds = b;
    stats.engine_rounds = (last_step_round + 1)
        .saturating_mul(config.phase_len)
        .max(last_activity_round);

    let departures = build_departures(k, &deferred);

    let outputs = batches
        .iter()
        .map(|batch| (0..n).map(|v| batch.output(v)).collect())
        .collect();
    Ok(ScheduleOutcome {
        outputs,
        stats,
        departures: config.record_departures.then_some(departures),
        precompute_rounds: 0,
    })
}

/// The columnar shard worker: the row `shard_worker` with columnar queues,
/// windows, and batched drains. Protocol (three barriers per big-round) and
/// every deterministic output are identical.
pub(super) fn shard_worker(me: usize, ctx: &ShardCtx<'_>) -> Result<ShardOutput, ExecError> {
    let g = ctx.g;
    let config = ctx.config;
    let n = g.node_count();
    let k = ctx.algos.len();
    let s = ctx.part.shards();
    let own: Vec<usize> = (0..n)
        .filter(|&v| ctx.part.of_node()[v] == me as u32)
        .collect();
    let own_n = own.len();
    let mut local_of = vec![usize::MAX; n];
    for (li, &v) in own.iter().enumerate() {
        local_of[v] = li;
    }
    // Flat per-machine state indexed `a * own_n + li`, mirroring the fused
    // engine's layout on this shard's local node indices.
    let mut machines: Vec<Box<dyn crate::algorithm::AlgoNode>> = Vec::with_capacity(k * own_n);
    for (a, algo) in ctx.algos.iter().enumerate() {
        for &v in &own {
            machines.push(algo.create_node(
                NodeId(v as u32),
                n,
                das_congest::util::seed_mix(ctx.seeds[a], v as u64),
            ));
        }
    }
    let mut steps_done = vec![0u32; k * own_n];
    let mut windows: Vec<ColWindow> = Vec::with_capacity(k * own_n);
    windows.resize_with(k * own_n, ColWindow::default);
    let mut buffered = vec![0u32; k * own_n];
    let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut sort_scratch: Vec<(u32, u32, u32)> = Vec::new();
    let mut sent_gen = vec![0u64; n];
    let mut gen: u64 = 0;
    let (arc_src, arc_dst) = arc_endpoint_table(g);
    // Full-width arc array for global indexing; this worker only ever
    // touches the arcs it owns.
    let mut queues: Vec<ColFifo> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), ColFifo::default);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut scratch_arcs: Vec<usize> = Vec::new();
    let mut obs = ExecObs::new(ctx.obs, me as u32);
    obs.attach_live(config.live.clone());
    obs.init(g.arc_count(), config.phase_len);
    let mut stats = ExecStats {
        phase_len: config.phase_len,
        ..ExecStats::default()
    };
    let mut deferred: Vec<(u32, u32, u32, u32)> = Vec::new();
    let mut shard = ShardStats {
        shard: me,
        nodes: own_n,
        degree: own.iter().map(|&v| g.degree(NodeId(v as u32))).sum(),
        ..ShardStats::default()
    };
    let mut engine_round: u64 = 0;
    let mut last_activity_round: u64 = 0;
    let mut b: u64 = 0;
    loop {
        // 1. Step phase: this shard's share of big-round b's steps, in the
        // same (algorithm, node, round) order the sequential executor uses.
        let t_step = Instant::now();
        if let Some(steps) = ctx.by_big_round.get(b as usize) {
            for &(a, v, r) in steps {
                let li = local_of[v as usize];
                if li == usize::MAX {
                    continue;
                }
                let idx = a as usize * own_n + li;
                debug_assert_eq!(steps_done[idx], r, "steps execute in order");
                if r > 0 && buffered[idx] > 0 {
                    // take() materializes the inbox already in canonical
                    // sender-sorted order
                    windows[idx].take(r - 1, &mut inbox, &mut pool, &mut sort_scratch);
                    buffered[idx] -= inbox.len() as u32;
                } else if !inbox.is_empty() {
                    recycle(&mut inbox, &mut pool);
                }
                obs.on_step(inbox.len());
                let sends = machines[idx].step(&inbox);
                steps_done[idx] = r + 1;
                shard.steps += 1;
                let me_node = NodeId(v);
                gen += 1;
                for snd in sends {
                    let Some(edge) = g.find_edge(me_node, snd.to) else {
                        stats.invalid_sends += 1;
                        obs.on_invalid_send();
                        continue;
                    };
                    if snd.payload.len() > config.message_bytes || sent_gen[snd.to.index()] == gen {
                        stats.invalid_sends += 1;
                        obs.on_invalid_send();
                        continue;
                    }
                    sent_gen[snd.to.index()] = gen;
                    let idx = g.arc_from(edge, me_node).index();
                    let owner = ctx.arc_owner[idx] as usize;
                    if owner == me {
                        let q = &mut queues[idx];
                        if q.is_empty() {
                            active_arcs.push(idx);
                        }
                        q.push(a, r, &snd.payload);
                        stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                        obs.on_inject(idx, q.len());
                    } else {
                        shard.cross_sent += 1;
                        obs.on_cross_send();
                        ctx.outboxes[me * s + owner]
                            .lock()
                            .expect("outbox lock")
                            .push((
                                idx,
                                super::Flight {
                                    dst: snd.to,
                                    algo: a,
                                    round: r,
                                    from: me_node,
                                    payload: snd.payload,
                                },
                            ));
                    }
                }
            }
        }
        shard.step_nanos += t_step.elapsed().as_nanos() as u64;

        // All outboxes for big-round b are complete.
        barrier_wait(ctx.barrier, &mut obs);

        let t_drain = Instant::now();
        // 2. Merge cross-shard arrivals into the owned queues, in source-
        // shard order — per-arc order equals the sequential one because
        // each arc's source node lives on exactly one shard.
        for src in 0..s {
            if src == me {
                continue;
            }
            let incoming =
                std::mem::take(&mut *ctx.outboxes[src * s + me].lock().expect("outbox lock"));
            for (idx, flight) in incoming {
                let q = &mut queues[idx];
                if q.is_empty() {
                    active_arcs.push(idx);
                }
                q.push(flight.algo, flight.round, &flight.payload);
                stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                obs.on_inject(idx, q.len());
            }
        }

        // 3. Columnar drain of the owned queues: one batched visit per
        // active arc, up to phase_len messages at engine rounds
        // `phase_start + j` — the rounds the row engine assigns.
        let phase_start = engine_round;
        std::mem::swap(&mut active_arcs, &mut scratch_arcs);
        for &arc_idx in &scratch_arcs {
            let q = &mut queues[arc_idx];
            let cnt = (q.len() as u64).min(config.phase_len) as usize;
            if cnt == 0 {
                continue;
            }
            let from = arc_src[arc_idx];
            let li = local_of[arc_dst[arc_idx] as usize];
            debug_assert_ne!(li, usize::MAX, "arc delivered to a foreign shard");
            let mut off = q.bytes_head;
            for j in 0..cnt {
                let m = q.meta[q.head + j];
                let payload = &q.bytes[off..off + m.len as usize];
                off += m.len as usize;
                let eng = phase_start + j as u64;
                let a = m.algo as usize;
                if config.record_departures {
                    deferred.push((m.algo, m.round, arc_idx as u32, eng as u32));
                }
                let idx = a * own_n + li;
                let late = steps_done[idx] >= m.round + 2;
                if late {
                    stats.late_messages += 1;
                } else {
                    if buffered[idx] == 0 {
                        windows[idx].reset_to(steps_done[idx].max(1) - 1);
                    }
                    windows[idx].push(m.round, from, payload);
                    buffered[idx] += 1;
                    stats.delivered += 1;
                }
                obs.on_deliver(eng, late);
            }
            q.head += cnt;
            q.bytes_head = off;
            q.reclaim();
            if !q.is_empty() {
                active_arcs.push(arc_idx);
            }
            last_activity_round = last_activity_round.max(phase_start + cnt as u64);
        }
        scratch_arcs.clear();
        engine_round += config.phase_len;
        if engine_round > config.max_engine_rounds {
            // every worker's engine-round counter is identical, so all
            // workers take this branch in lockstep — nobody is left
            // waiting at a barrier
            return Err(ExecError::RoundCapExceeded {
                cap: config.max_engine_rounds,
                big_round: b,
            });
        }
        shard.drain_nanos += t_drain.elapsed().as_nanos() as u64;
        obs.end_big_round(b);

        // 4. Termination: post activity, agree on it, and let worker 0
        // reset the counter strictly after everyone has read it (barrier)
        // and strictly before anyone can post again.
        if !active_arcs.is_empty() {
            ctx.active_workers.fetch_add(1, Ordering::SeqCst);
        }
        barrier_wait(ctx.barrier, &mut obs);
        let any_active = ctx.active_workers.load(Ordering::SeqCst) > 0;
        b += 1;
        let done = b > ctx.last_step_round && !any_active;
        barrier_wait(ctx.barrier, &mut obs);
        if me == 0 {
            ctx.active_workers.store(0, Ordering::SeqCst);
        }
        if done {
            break;
        }
    }

    shard.delivered = stats.delivered;
    let departures = build_departures(k, &deferred);
    let outputs = (0..k)
        .map(|a| {
            machines[a * own_n..(a + 1) * own_n]
                .iter()
                .map(|m| m.output())
                .collect()
        })
        .collect();
    Ok(ShardOutput {
        own,
        outputs,
        departures,
        stats,
        last_activity_round,
        big_rounds: b,
        shard,
        obs: obs.finish(),
    })
}

/// The batched shard worker: [`run_fused_batched`]'s step phase restricted
/// to one shard's nodes, on the columnar worker's protocol (three barriers
/// per big-round). Runs still span the *global* step table — triples of
/// one algorithm are contiguous whether or not this shard owns their nodes
/// — so a run here is the owned subset of a fused run, stepped in the same
/// relative order.
pub(super) fn shard_worker_batched(
    me: usize,
    ctx: &ShardCtx<'_>,
) -> Result<ShardOutput, ExecError> {
    let g = ctx.g;
    let config = ctx.config;
    let n = g.node_count();
    let k = ctx.algos.len();
    let s = ctx.part.shards();
    let own: Vec<usize> = (0..n)
        .filter(|&v| ctx.part.of_node()[v] == me as u32)
        .collect();
    let own_n = own.len();
    let mut local_of = vec![usize::MAX; n];
    for (li, &v) in own.iter().enumerate() {
        local_of[v] = li;
    }
    // One slab per algorithm over the owned nodes in id order: slab-local
    // machine index == local node index `li`. Seeds mix exactly as in the
    // fused engines, so machine state is partition-independent.
    let own_nodes: Vec<NodeId> = own.iter().map(|&v| NodeId(v as u32)).collect();
    let mut batches = build_batches(ctx.algos, ctx.seeds, &own_nodes, n);
    let mut steps_done = vec![0u32; k * own_n];
    let mut windows: Vec<ColWindow> = Vec::with_capacity(k * own_n);
    windows.resize_with(k * own_n, ColWindow::default);
    let mut buffered = vec![0u32; k * own_n];
    let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut sort_scratch: Vec<(u32, u32, u32)> = Vec::new();
    let mut sent_gen = vec![0u64; n];
    let mut gen: u64 = 0;
    let mut run_inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
    let mut run_steps: Vec<BlockStep> = Vec::new();
    let mut sends_buf = BatchedSends::new();
    let (arc_src, arc_dst) = arc_endpoint_table(g);
    // Full-width arc array for global indexing; this worker only ever
    // touches the arcs it owns.
    let mut queues: Vec<ColFifo> = Vec::with_capacity(g.arc_count());
    queues.resize_with(g.arc_count(), ColFifo::default);
    let mut active_arcs: Vec<usize> = Vec::new();
    let mut scratch_arcs: Vec<usize> = Vec::new();
    let mut obs = ExecObs::new(ctx.obs, me as u32);
    obs.attach_live(config.live.clone());
    obs.init(g.arc_count(), config.phase_len);
    let mut stats = ExecStats {
        phase_len: config.phase_len,
        ..ExecStats::default()
    };
    let mut deferred: Vec<(u32, u32, u32, u32)> = Vec::new();
    let mut shard = ShardStats {
        shard: me,
        nodes: own_n,
        degree: own.iter().map(|&v| g.degree(NodeId(v as u32))).sum(),
        ..ShardStats::default()
    };
    let mut engine_round: u64 = 0;
    let mut last_activity_round: u64 = 0;
    let mut b: u64 = 0;
    loop {
        // 1. Step phase: this shard's share of each same-algorithm run, in
        // the same (algorithm, node, round) order the fused engines use.
        let t_step = Instant::now();
        if let Some(steps) = ctx.by_big_round.get(b as usize) {
            let mut i = 0usize;
            while i < steps.len() {
                let a = steps[i].0;
                let mut j = i + 1;
                while j < steps.len() && steps[j].0 == a {
                    j += 1;
                }
                run_steps.clear();
                debug_assert!(run_inbox.is_empty());
                for &(_, v, r) in &steps[i..j] {
                    let li = local_of[v as usize];
                    if li == usize::MAX {
                        continue;
                    }
                    let idx = a as usize * own_n + li;
                    debug_assert_eq!(steps_done[idx], r, "steps execute in order");
                    let start = run_inbox.len() as u32;
                    if r > 0 && buffered[idx] > 0 {
                        // take() materializes the inbox already in
                        // canonical sender-sorted order
                        windows[idx].take(r - 1, &mut inbox, &mut pool, &mut sort_scratch);
                        buffered[idx] -= inbox.len() as u32;
                        run_inbox.append(&mut inbox);
                    }
                    let len = run_inbox.len() as u32 - start;
                    obs.on_step(len as usize);
                    steps_done[idx] = r + 1;
                    shard.steps += 1;
                    run_steps.push(BlockStep {
                        node: li as u32,
                        round: r,
                        inbox_start: start,
                        inbox_len: len,
                    });
                }
                if !run_steps.is_empty() {
                    sends_buf.clear();
                    batches[a as usize].step_block(&run_steps, &run_inbox, &mut sends_buf);
                    debug_assert_eq!(
                        sends_buf.segments(),
                        run_steps.len(),
                        "one send segment per executed step"
                    );
                    for (si, bs) in run_steps.iter().enumerate() {
                        if sends_buf.segment_is_empty(si) {
                            continue;
                        }
                        let me_node = NodeId(own[bs.node as usize] as u32);
                        gen += 1;
                        for (to, payload) in sends_buf.segment(si) {
                            let Some(edge) = g.find_edge(me_node, to) else {
                                stats.invalid_sends += 1;
                                obs.on_invalid_send();
                                continue;
                            };
                            if payload.len() > config.message_bytes || sent_gen[to.index()] == gen {
                                stats.invalid_sends += 1;
                                obs.on_invalid_send();
                                continue;
                            }
                            sent_gen[to.index()] = gen;
                            let idx = g.arc_from(edge, me_node).index();
                            let owner = ctx.arc_owner[idx] as usize;
                            if owner == me {
                                let q = &mut queues[idx];
                                if q.is_empty() {
                                    active_arcs.push(idx);
                                }
                                q.push(a, bs.round, payload);
                                stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                                obs.on_inject(idx, q.len());
                            } else {
                                shard.cross_sent += 1;
                                obs.on_cross_send();
                                ctx.outboxes[me * s + owner]
                                    .lock()
                                    .expect("outbox lock")
                                    .push((
                                        idx,
                                        super::Flight {
                                            dst: to,
                                            algo: a,
                                            round: bs.round,
                                            from: me_node,
                                            payload: payload.to_vec(),
                                        },
                                    ));
                            }
                        }
                    }
                    recycle(&mut run_inbox, &mut pool);
                }
                i = j;
            }
        }
        shard.step_nanos += t_step.elapsed().as_nanos() as u64;

        // All outboxes for big-round b are complete.
        barrier_wait(ctx.barrier, &mut obs);

        let t_drain = Instant::now();
        // 2. Merge cross-shard arrivals into the owned queues, in source-
        // shard order — per-arc order equals the sequential one because
        // each arc's source node lives on exactly one shard.
        for src in 0..s {
            if src == me {
                continue;
            }
            let incoming =
                std::mem::take(&mut *ctx.outboxes[src * s + me].lock().expect("outbox lock"));
            for (idx, flight) in incoming {
                let q = &mut queues[idx];
                if q.is_empty() {
                    active_arcs.push(idx);
                }
                q.push(flight.algo, flight.round, &flight.payload);
                stats.max_arc_queue = stats.max_arc_queue.max(q.len());
                obs.on_inject(idx, q.len());
            }
        }

        // 3. Columnar drain of the owned queues, verbatim.
        let phase_start = engine_round;
        std::mem::swap(&mut active_arcs, &mut scratch_arcs);
        for &arc_idx in &scratch_arcs {
            let q = &mut queues[arc_idx];
            let cnt = (q.len() as u64).min(config.phase_len) as usize;
            if cnt == 0 {
                continue;
            }
            let from = arc_src[arc_idx];
            let li = local_of[arc_dst[arc_idx] as usize];
            debug_assert_ne!(li, usize::MAX, "arc delivered to a foreign shard");
            let mut off = q.bytes_head;
            for j in 0..cnt {
                let m = q.meta[q.head + j];
                let payload = &q.bytes[off..off + m.len as usize];
                off += m.len as usize;
                let eng = phase_start + j as u64;
                let a = m.algo as usize;
                if config.record_departures {
                    deferred.push((m.algo, m.round, arc_idx as u32, eng as u32));
                }
                let idx = a * own_n + li;
                let late = steps_done[idx] >= m.round + 2;
                if late {
                    stats.late_messages += 1;
                } else {
                    if buffered[idx] == 0 {
                        windows[idx].reset_to(steps_done[idx].max(1) - 1);
                    }
                    windows[idx].push(m.round, from, payload);
                    buffered[idx] += 1;
                    stats.delivered += 1;
                }
                obs.on_deliver(eng, late);
            }
            q.head += cnt;
            q.bytes_head = off;
            q.reclaim();
            if !q.is_empty() {
                active_arcs.push(arc_idx);
            }
            last_activity_round = last_activity_round.max(phase_start + cnt as u64);
        }
        scratch_arcs.clear();
        engine_round += config.phase_len;
        if engine_round > config.max_engine_rounds {
            // every worker's engine-round counter is identical, so all
            // workers take this branch in lockstep — nobody is left
            // waiting at a barrier
            return Err(ExecError::RoundCapExceeded {
                cap: config.max_engine_rounds,
                big_round: b,
            });
        }
        shard.drain_nanos += t_drain.elapsed().as_nanos() as u64;
        obs.end_big_round(b);

        // 4. Termination: post activity, agree on it, and let worker 0
        // reset the counter strictly after everyone has read it (barrier)
        // and strictly before anyone can post again.
        if !active_arcs.is_empty() {
            ctx.active_workers.fetch_add(1, Ordering::SeqCst);
        }
        barrier_wait(ctx.barrier, &mut obs);
        let any_active = ctx.active_workers.load(Ordering::SeqCst) > 0;
        b += 1;
        let done = b > ctx.last_step_round && !any_active;
        barrier_wait(ctx.barrier, &mut obs);
        if me == 0 {
            ctx.active_workers.store(0, Ordering::SeqCst);
        }
        if done {
            break;
        }
    }

    shard.delivered = stats.delivered;
    let departures = build_departures(k, &deferred);
    let outputs = batches
        .iter()
        .map(|batch| (0..own_n).map(|li| batch.output(li)).collect())
        .collect();
    Ok(ShardOutput {
        own,
        outputs,
        departures,
        stats,
        last_activity_round,
        big_rounds: b,
        shard,
        obs: obs.finish(),
    })
}
