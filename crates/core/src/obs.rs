//! Observed plan → execute → verify pipeline: one traced run end to end.
//!
//! [`run_traced`] plans, executes (fused or sharded), and verifies a
//! problem while assembling a single [`ObsReport`]: a `Plan`-stage span
//! carrying the prediction, the executor's per-shard recordings on the
//! `Execute` tracks, and a `Verify`-stage marker with the mismatch counts.
//! All of it is clocked on the deterministic big-round clock, so the trace
//! is a pure function of `(problem, scheduler, sched_seed)` — shard count
//! changes only which `Execute` lane an event lands on. Wall-clock stage
//! durations are added as `wall_us` args only when
//! [`ObsConfig::wall_clock`] is set.

use crate::exec::ExecutorConfig;
use crate::plan::{self, analysis, SchedError, SchedulePlan};
use crate::problem::DasProblem;
use crate::schedule::ScheduleOutcome;
use crate::schedulers::Scheduler;
use crate::verify::{self, VerifyReport};
use crate::{EngineKind, ShardReport};
use das_obs::{LiveHub, ObsConfig, ObsReport, Stage, TraceEvent};
use std::sync::Arc;
use std::time::Instant;

/// Everything a traced pipeline run produced.
#[derive(Debug)]
pub struct TracedRun {
    /// The plan that was executed.
    pub plan: SchedulePlan,
    /// The execution outcome (byte-identical to an untraced run).
    pub outcome: ScheduleOutcome,
    /// Partition-dependent measurements when `shards > 1`.
    pub shard_report: Option<ShardReport>,
    /// Output verification against the reference runs.
    pub verify: VerifyReport,
    /// The assembled observability report (empty when recording is off).
    pub report: ObsReport,
}

/// Runs the full pipeline — plan, predict, execute (`shards > 1` uses the
/// sharded executor), verify — recording one [`ObsReport`] across all
/// three stages at the level `obs` asks for.
///
/// # Errors
/// Returns [`SchedError::Reference`] if planning/prediction/verification
/// reference runs fail, [`SchedError::InvalidPlan`] for a malformed plan,
/// or [`SchedError::Exec`] if execution exceeds its round budget.
pub fn run_traced(
    problem: &DasProblem<'_>,
    scheduler: &dyn Scheduler,
    sched_seed: u64,
    shards: usize,
    obs: &ObsConfig,
) -> Result<TracedRun, SchedError> {
    run_traced_live(problem, scheduler, sched_seed, shards, obs, None)
}

/// [`run_traced`] with an optional live hub attached: the executor probes
/// publish per-shard snapshots into `live` at big-round boundaries, phase
/// transitions (`plan` → `execute` → `verify` → `done`) are mirrored into
/// it, and the final merged report replaces the incremental view at the
/// end. Serving the hub over HTTP (`das_obs::ObsServer`) while this runs
/// never changes the outcome — publication is write-only and clocked on
/// big-round barriers (`tests/obs_neutrality.rs` polls a live server
/// mid-run and asserts byte-identical outcomes).
///
/// # Errors
/// Exactly as [`run_traced`].
pub fn run_traced_live(
    problem: &DasProblem<'_>,
    scheduler: &dyn Scheduler,
    sched_seed: u64,
    shards: usize,
    obs: &ObsConfig,
    live: Option<Arc<LiveHub>>,
) -> Result<TracedRun, SchedError> {
    if let Some(hub) = &live {
        let engine = match ExecutorConfig::default().engine {
            EngineKind::Row => "row",
            EngineKind::Columnar => "columnar",
            EngineKind::ColumnarBatched => "batched",
        };
        hub.set_run_info(engine, shards.max(1));
        hub.set_phase("plan");
    }
    let t_plan = Instant::now();
    let plan = scheduler.plan(problem, sched_seed)?;
    let prediction = obs
        .enabled()
        .then(|| analysis::predict(problem, &plan))
        .transpose()?;
    let plan_wall_us = t_plan.elapsed().as_micros() as u64;

    let mut report = ObsReport::new();
    if let Some(pred) = &prediction {
        report.metrics.inc("plan.units", plan.unit_count() as u64);
        report.metrics.inc("plan.phase_len", plan.phase_len);
        report
            .metrics
            .inc("plan.precompute_rounds", plan.precompute_rounds);
        report
            .metrics
            .inc("plan.predicted_rounds", plan.predicted_rounds);
        report.metrics.inc("predict.late", pred.predicted_late);
        report
            .metrics
            .inc("predict.max_arc_load", pred.max_arc_load());
        report.metrics.inc(
            "predict.peak_big_round_arc_load",
            pred.peak_big_round_arc_load,
        );
        if obs.events_enabled() {
            // The plan span covers the pre-computation charge the schedule
            // pays before its first big-round.
            let mut e =
                TraceEvent::span(Stage::Plan, 0, scheduler.name(), 0, plan.precompute_rounds)
                    .arg("units", plan.unit_count() as u64)
                    .arg("phase_len", plan.phase_len)
                    .arg("predicted_rounds", plan.predicted_rounds)
                    .arg("predicted_late", pred.predicted_late);
            if obs.wall_clock {
                e = e.arg("wall_us", plan_wall_us);
            }
            report.push_event(e);
        }
    }

    if let Some(hub) = &live {
        hub.set_phase("execute");
    }
    let t_exec = Instant::now();
    let (outcome, shard_report, exec_report) = if shards > 1 {
        let config = ExecutorConfig::default()
            .with_shards(shards)
            .with_live(live.clone());
        let (outcome, sr, er) =
            plan::execute_plan_sharded_observed_with(problem, &plan, obs, &config)?;
        (outcome, Some(sr), er)
    } else {
        let config = ExecutorConfig::default().with_live(live.clone());
        let (outcome, er) = plan::execute_plan_observed_with(problem, &plan, obs, &config)?;
        (outcome, None, er)
    };
    let exec_wall_us = t_exec.elapsed().as_micros() as u64;
    if let Some(er) = &exec_report {
        report.merge(er);
    }

    if let Some(hub) = &live {
        hub.set_phase("verify");
    }
    let t_verify = Instant::now();
    let verify = verify::against_references(problem, &outcome)?;
    let verify_wall_us = t_verify.elapsed().as_micros() as u64;
    if obs.enabled() {
        report
            .metrics
            .inc("verify.mismatches", verify.total_mismatches() as u64);
        report.metrics.inc("verify.nodes", verify.nodes as u64);
        if obs.wall_clock {
            report.metrics.inc("wall.plan_us", plan_wall_us);
            report.metrics.inc("wall.execute_us", exec_wall_us);
            report.metrics.inc("wall.verify_us", verify_wall_us);
        }
        if obs.events_enabled() {
            let mut e = TraceEvent::instant(
                Stage::Verify,
                0,
                if verify.all_correct() {
                    "all outputs correct"
                } else {
                    "output mismatches"
                },
                outcome.stats.engine_rounds,
            )
            .arg("mismatches", verify.total_mismatches() as u64)
            .arg("nodes", verify.nodes as u64);
            if obs.wall_clock {
                e = e.arg("wall_us", verify_wall_us);
            }
            report.push_event(e);
        }
    }

    if let Some(hub) = &live {
        // the merged report is authoritative; this also flips to `done`
        hub.publish_final(&report);
    }
    Ok(TracedRun {
        plan,
        outcome,
        shard_report,
        verify,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use crate::{BlackBoxAlgorithm, UniformScheduler};
    use das_graph::generators;

    fn problem(g: &das_graph::Graph) -> DasProblem<'_> {
        let algos = (0..3)
            .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, 9)
    }

    #[test]
    fn traced_run_covers_all_three_stages() {
        let g = generators::path(10);
        let p = problem(&g);
        let sched = UniformScheduler::default();
        let traced = run_traced(&p, &sched, 3, 1, &ObsConfig::full()).unwrap();
        assert!(traced.verify.all_correct());
        let m = &traced.report.metrics;
        assert_eq!(m.counter("plan.units"), 3);
        assert_eq!(m.counter("exec.delivered"), traced.outcome.stats.delivered);
        assert_eq!(m.counter("verify.mismatches"), 0);
        // one plan span, per-big-round execute events, one verify instant.
        let stages: Vec<Stage> = traced.report.events.iter().map(|e| e.stage).collect();
        assert!(stages.contains(&Stage::Plan));
        assert!(stages.contains(&Stage::Execute));
        assert!(stages.contains(&Stage::Verify));
        // no wall-clock leaks into the deterministic trace by default.
        assert!(m.counters.keys().all(|k| !k.starts_with("wall.")));
        assert!(traced
            .report
            .events
            .iter()
            .all(|e| e.args.iter().all(|(k, _)| k != "wall_us")));
    }

    #[test]
    fn traced_run_is_deterministic_and_shard_invariant() {
        let g = generators::path(12);
        let p = problem(&g);
        let sched = UniformScheduler::default();
        let fused = run_traced(&p, &sched, 7, 1, &ObsConfig::full()).unwrap();
        let again = run_traced(&p, &sched, 7, 1, &ObsConfig::full()).unwrap();
        assert_eq!(fused.report.events, again.report.events);
        assert_eq!(fused.report.metrics, again.report.metrics);
        let sharded = run_traced(&p, &sched, 7, 3, &ObsConfig::full()).unwrap();
        assert!(sharded.shard_report.is_some());
        assert_eq!(
            format!("{:?}", fused.outcome),
            format!("{:?}", sharded.outcome),
            "outcome must not depend on shard count"
        );
        // the load profile (summed over lanes) is shard-invariant too.
        assert_eq!(fused.report.profile, sharded.report.profile);
    }

    #[test]
    fn obs_off_records_nothing() {
        let g = generators::path(8);
        let p = problem(&g);
        let sched = UniformScheduler::default();
        let traced = run_traced(&p, &sched, 3, 1, &ObsConfig::off()).unwrap();
        assert!(traced.report.events.is_empty());
        assert!(traced.report.metrics.counters.is_empty());
        assert!(traced.verify.all_correct());
    }
}
