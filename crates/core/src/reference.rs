//! Alone runs: the ground truth every schedule is verified against.

use crate::algorithm::BlackBoxAlgorithm;
use das_graph::{Graph, NodeId};
use das_pattern::{CommPattern, TimedArc};
use std::error::Error;
use std::fmt;

/// Ways an algorithm can violate the CONGEST model in its alone run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReferenceError {
    /// A machine addressed a non-neighbor.
    NotNeighbor {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Algorithm round.
        round: u32,
    },
    /// A machine sent two messages to the same neighbor in one round.
    DuplicateSend {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Algorithm round.
        round: u32,
    },
}

impl fmt::Display for ReferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReferenceError::NotNeighbor { from, to, round } => {
                write!(f, "round {round}: {from} sent to non-neighbor {to}")
            }
            ReferenceError::DuplicateSend { from, to, round } => {
                write!(f, "round {round}: {from} sent twice to {to}")
            }
        }
    }
}

impl Error for ReferenceError {}

/// The result of running one algorithm alone: per-node outputs and the
/// communication pattern (which yields its congestion/dilation
/// contributions).
#[derive(Clone, Debug)]
pub struct ReferenceRun {
    /// Per-node outputs.
    pub outputs: Vec<Option<Vec<u8>>>,
    /// The algorithm's communication pattern.
    pub pattern: CommPattern,
}

/// Runs `algo` alone on `g` with per-node seeds derived from `seed`,
/// producing the reference outputs and communication pattern.
///
/// # Errors
/// Returns a [`ReferenceError`] if the algorithm violates the CONGEST
/// model (sends to a non-neighbor, or twice to the same neighbor in one
/// round).
pub fn run_alone(
    g: &Graph,
    algo: &dyn BlackBoxAlgorithm,
    seed: u64,
) -> Result<ReferenceRun, ReferenceError> {
    let n = g.node_count();
    let mut machines: Vec<_> = (0..n)
        .map(|v| {
            algo.create_node(
                NodeId(v as u32),
                n,
                das_congest::util::seed_mix(seed, v as u64),
            )
        })
        .collect();
    let mut inboxes: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
    let mut timed_arcs = Vec::new();

    for round in 0..algo.rounds() {
        let mut next: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
        for v in 0..n {
            let me = NodeId(v as u32);
            let mut inbox = std::mem::take(&mut inboxes[v]);
            // canonical inbox order (the scheduled executor sorts the same
            // way, so machines see identical inboxes in both runs)
            inbox.sort();
            let sends = machines[v].step(&inbox);
            let mut sent_to: Vec<NodeId> = Vec::with_capacity(sends.len());
            for s in sends {
                let edge = match g.find_edge(me, s.to) {
                    Some(e) => e,
                    None => {
                        return Err(ReferenceError::NotNeighbor {
                            from: me,
                            to: s.to,
                            round,
                        })
                    }
                };
                if sent_to.contains(&s.to) {
                    return Err(ReferenceError::DuplicateSend {
                        from: me,
                        to: s.to,
                        round,
                    });
                }
                sent_to.push(s.to);
                timed_arcs.push(TimedArc {
                    round,
                    arc: g.arc_from(edge, me),
                });
                next[s.to.index()].push((me, s.payload));
            }
        }
        inboxes = next;
    }

    Ok(ReferenceRun {
        outputs: machines.iter().map(|m| m.output()).collect(),
        pattern: CommPattern::from_timed_arcs(g.edge_count(), timed_arcs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use das_graph::generators;

    #[test]
    fn relay_reference_run() {
        let g = generators::path(6);
        let algo = RelayChain::new(0, &g);
        let r = run_alone(&g, &algo, 1).unwrap();
        // the token visits every edge once, left to right
        assert_eq!(r.pattern.message_count(), 5);
        assert_eq!(r.pattern.rounds(), 5);
        assert_eq!(r.pattern.edge_loads(), vec![1; 5]);
        // last node outputs the token
        assert!(r.outputs[5].is_some());
    }

    #[test]
    fn model_violations_detected() {
        use crate::algorithm::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};

        struct Bad(u8);
        struct BadNode(u8, NodeId);
        impl BlackBoxAlgorithm for Bad {
            fn aid(&self) -> Aid {
                Aid(0)
            }
            fn rounds(&self) -> u32 {
                1
            }
            fn create_node(&self, v: NodeId, _n: usize, _s: u64) -> Box<dyn AlgoNode> {
                Box::new(BadNode(self.0, v))
            }
        }
        impl AlgoNode for BadNode {
            fn step(&mut self, _inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
                if self.1 != NodeId(0) {
                    return vec![];
                }
                match self.0 {
                    0 => vec![AlgoSend {
                        to: NodeId(2),
                        payload: vec![],
                    }],
                    _ => vec![
                        AlgoSend {
                            to: NodeId(1),
                            payload: vec![],
                        },
                        AlgoSend {
                            to: NodeId(1),
                            payload: vec![],
                        },
                    ],
                }
            }
            fn output(&self) -> Option<Vec<u8>> {
                None
            }
        }

        let g = generators::path(3);
        assert!(matches!(
            run_alone(&g, &Bad(0), 0),
            Err(ReferenceError::NotNeighbor { .. })
        ));
        assert!(matches!(
            run_alone(&g, &Bad(1), 0),
            Err(ReferenceError::DuplicateSend { .. })
        ));
    }
}
