//! Alone runs: the ground truth every schedule is verified against.

use crate::algorithm::{BatchedSends, BlackBoxAlgorithm};
use das_graph::{Graph, NodeId};
use das_pattern::{CommPattern, TimedArc};
use std::error::Error;
use std::fmt;

/// Ways an algorithm can violate the CONGEST model in its alone run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReferenceError {
    /// A machine addressed a non-neighbor.
    NotNeighbor {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Algorithm round.
        round: u32,
    },
    /// A machine sent two messages to the same neighbor in one round.
    DuplicateSend {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Algorithm round.
        round: u32,
    },
}

impl fmt::Display for ReferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReferenceError::NotNeighbor { from, to, round } => {
                write!(f, "round {round}: {from} sent to non-neighbor {to}")
            }
            ReferenceError::DuplicateSend { from, to, round } => {
                write!(f, "round {round}: {from} sent twice to {to}")
            }
        }
    }
}

impl Error for ReferenceError {}

/// The result of running one algorithm alone: per-node outputs and the
/// communication pattern (which yields its congestion/dilation
/// contributions).
#[derive(Clone, Debug)]
pub struct ReferenceRun {
    /// Per-node outputs.
    pub outputs: Vec<Option<Vec<u8>>>,
    /// The algorithm's communication pattern.
    pub pattern: CommPattern,
}

/// Runs `algo` alone on `g` with per-node seeds derived from `seed`,
/// producing the reference outputs and communication pattern.
///
/// # Errors
/// Returns a [`ReferenceError`] if the algorithm violates the CONGEST
/// model (sends to a non-neighbor, or twice to the same neighbor in one
/// round).
pub fn run_alone(
    g: &Graph,
    algo: &dyn BlackBoxAlgorithm,
    seed: u64,
) -> Result<ReferenceRun, ReferenceError> {
    let n = g.node_count();
    let nodes: Vec<NodeId> = (0..n).map(|v| NodeId(v as u32)).collect();
    let seeds: Vec<u64> = (0..n)
        .map(|v| das_congest::util::seed_mix(seed, v as u64))
        .collect();
    // batched construction: synthetic families share route/topology state
    // across the whole slab instead of cloning it per machine
    let mut batch = algo.create_nodes(&nodes, n, &seeds);
    let mut inboxes: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
    let mut sends = BatchedSends::new();
    let mut timed_arcs = Vec::new();

    for round in 0..algo.rounds() {
        let mut next: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
        for (v, slot) in inboxes.iter_mut().enumerate() {
            let me = NodeId(v as u32);
            let mut inbox = std::mem::take(slot);
            // canonical inbox order (the scheduled executor sorts the same
            // way, so machines see identical inboxes in both runs)
            inbox.sort();
            sends.clear();
            batch.step_into(v, &inbox, &mut sends);
            let mut sent_to: Vec<NodeId> = Vec::with_capacity(sends.total_sends());
            for (to, payload) in sends.segment(0) {
                let edge = match g.find_edge(me, to) {
                    Some(e) => e,
                    None => {
                        return Err(ReferenceError::NotNeighbor {
                            from: me,
                            to,
                            round,
                        })
                    }
                };
                if sent_to.contains(&to) {
                    return Err(ReferenceError::DuplicateSend {
                        from: me,
                        to,
                        round,
                    });
                }
                sent_to.push(to);
                timed_arcs.push(TimedArc {
                    round,
                    arc: g.arc_from(edge, me),
                });
                next[to.index()].push((me, payload.to_vec()));
            }
        }
        inboxes = next;
    }

    Ok(ReferenceRun {
        outputs: (0..n).map(|v| batch.output(v)).collect(),
        pattern: CommPattern::from_timed_arcs(g.edge_count(), timed_arcs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{FloodBall, Prescribed, RelayChain};
    use das_graph::generators;

    /// The pre-slab reference loop: per-node boxed machines stepped through
    /// the specification tier. Kept as the oracle the batched construction
    /// path is pinned against.
    fn run_alone_boxed(g: &Graph, algo: &dyn BlackBoxAlgorithm, seed: u64) -> ReferenceRun {
        let n = g.node_count();
        let mut machines: Vec<_> = (0..n)
            .map(|v| {
                algo.create_node(
                    NodeId(v as u32),
                    n,
                    das_congest::util::seed_mix(seed, v as u64),
                )
            })
            .collect();
        let mut inboxes: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
        let mut timed_arcs = Vec::new();
        for round in 0..algo.rounds() {
            let mut next: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); n];
            for v in 0..n {
                let me = NodeId(v as u32);
                let mut inbox = std::mem::take(&mut inboxes[v]);
                inbox.sort();
                for s in machines[v].step(&inbox) {
                    let edge = g.find_edge(me, s.to).expect("synthetic sends are valid");
                    timed_arcs.push(TimedArc {
                        round,
                        arc: g.arc_from(edge, me),
                    });
                    next[s.to.index()].push((me, s.payload));
                }
            }
            inboxes = next;
        }
        ReferenceRun {
            outputs: machines.iter().map(|m| m.output()).collect(),
            pattern: CommPattern::from_timed_arcs(g.edge_count(), timed_arcs),
        }
    }

    #[test]
    fn slab_reference_matches_boxed_reference_for_every_family() {
        let g = generators::path(9);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = vec![
            Box::new(RelayChain::new(0, &g)),
            Box::new(FloodBall::new(1, &g, NodeId(4), 3)),
            Box::new(Prescribed::new(
                2,
                &g,
                &[
                    (0, NodeId(0), NodeId(1)),
                    (0, NodeId(3), NodeId(2)),
                    (1, NodeId(1), NodeId(2)),
                    (2, NodeId(2), NodeId(3)),
                ],
            )),
        ];
        for (i, algo) in algos.iter().enumerate() {
            let slab = run_alone(&g, algo.as_ref(), 77 + i as u64).unwrap();
            let boxed = run_alone_boxed(&g, algo.as_ref(), 77 + i as u64);
            assert_eq!(slab.outputs, boxed.outputs, "algo {i} outputs diverge");
            assert_eq!(
                format!("{:?}", slab.pattern),
                format!("{:?}", boxed.pattern),
                "algo {i} patterns diverge"
            );
        }
    }

    #[test]
    fn reference_cache_counter_unchanged_by_batched_construction() {
        use crate::{DasProblem, Scheduler, SequentialScheduler};
        let g = generators::path(8);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..3)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 5);
        assert_eq!(p.reference_runs_computed(), 0, "references are lazy");
        for _ in 0..2 {
            let outcome = SequentialScheduler.run(&p).unwrap();
            let report = crate::verify::against_references(&p, &outcome).unwrap();
            assert!(report.all_correct());
        }
        assert_eq!(
            p.reference_runs_computed(),
            3,
            "one alone run per algorithm, cached across verifications"
        );
    }

    #[test]
    fn relay_reference_run() {
        let g = generators::path(6);
        let algo = RelayChain::new(0, &g);
        let r = run_alone(&g, &algo, 1).unwrap();
        // the token visits every edge once, left to right
        assert_eq!(r.pattern.message_count(), 5);
        assert_eq!(r.pattern.rounds(), 5);
        assert_eq!(r.pattern.edge_loads(), vec![1; 5]);
        // last node outputs the token
        assert!(r.outputs[5].is_some());
    }

    #[test]
    fn model_violations_detected() {
        use crate::algorithm::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};

        struct Bad(u8);
        struct BadNode(u8, NodeId);
        impl BlackBoxAlgorithm for Bad {
            fn aid(&self) -> Aid {
                Aid(0)
            }
            fn rounds(&self) -> u32 {
                1
            }
            fn create_node(&self, v: NodeId, _n: usize, _s: u64) -> Box<dyn AlgoNode> {
                Box::new(BadNode(self.0, v))
            }
        }
        impl AlgoNode for BadNode {
            fn step(&mut self, _inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
                if self.1 != NodeId(0) {
                    return vec![];
                }
                match self.0 {
                    0 => vec![AlgoSend {
                        to: NodeId(2),
                        payload: vec![],
                    }],
                    _ => vec![
                        AlgoSend {
                            to: NodeId(1),
                            payload: vec![],
                        },
                        AlgoSend {
                            to: NodeId(1),
                            payload: vec![],
                        },
                    ],
                }
            }
            fn output(&self) -> Option<Vec<u8>> {
                None
            }
        }

        let g = generators::path(3);
        assert!(matches!(
            run_alone(&g, &Bad(0), 0),
            Err(ReferenceError::NotNeighbor { .. })
        ));
        assert!(matches!(
            run_alone(&g, &Bad(1), 0),
            Err(ReferenceError::DuplicateSend { .. })
        ));
    }
}
