//! Removing the known-parameters assumption by doubling.
//!
//! The paper assumes nodes know constant-factor approximations of
//! `congestion` and `dilation` and defers the removal of that assumption
//! to "standard doubling techniques". This module implements the standard
//! technique: guess a congestion budget, size a schedule plan for the
//! guess, check whether it succeeds (no message arrives late — in a real
//! deployment this is an `O(D)` convergecast of a success flag, which we
//! charge), and double the guess otherwise. The total cost is dominated by
//! the last, successful attempt, so the asymptotics are unchanged.
//!
//! The guess is applied as an exact **integer delay range in big-rounds**
//! ([`UniformScheduler::delay_range`] / [`PrivateScheduler::block_override`]),
//! not as a float multiplier of the true congestion: the float route
//! rounded consecutive guesses to the same range on small instances (and
//! leaked the true congestion into the sizing, which the doubling search
//! is not supposed to know), so attempts were silently repeated instead of
//! widened. Every attempt now strictly widens the delay span — see
//! [`DoublingOutcome::attempted_ranges`].
//!
//! Failed guesses are detected by [`crate::plan::analysis::predict`] on
//! the *plan*, without running the engine: the prediction of "no late
//! messages" is exact (see the analysis module docs), so the pre-check
//! never rejects a guess that would have succeeded and the engine executes
//! exactly once — on the final, successful plan. The charged round costs
//! are unchanged: every rejected guess still pays its predicted schedule
//! length plus the detection convergecast.
//!
//! Planning work is **not** repeated per guess: both searches build the
//! guess-independent [`PlanArtifact`] once ([`crate::Scheduler::build_artifact`])
//! and re-size it per attempt ([`crate::Scheduler::size_plan`]), which is
//! provably invisible — sized plans are byte-identical to from-scratch
//! ones — and turns each failed attempt's planning cost from a full
//! carve/share/draw pass into a cheap re-sampling.
//! [`DoublingOutcome::cache`] and the `doubling.replan_cache_hits` /
//! `doubling.artifact_builds` counters record the reuse;
//! [`DoublingConfig::reuse_artifact`] turns it off for A/B neutrality
//! checks.

use crate::exec::ExecutorConfig;
use crate::plan::cache::PlanArtifact;
use crate::plan::{analysis, execute_plan_observed_with, SchedError};
use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedule::ScheduleOutcome;
use crate::schedulers::Scheduler;
use crate::{InterleaveScheduler, PrivateScheduler, UniformScheduler};
use das_obs::{LiveHub, ObsConfig, ObsReport, Stage, TraceEvent};
use std::sync::Arc;
use std::time::Instant;

/// The outcome of a doubling search.
#[derive(Debug)]
pub struct DoublingOutcome {
    /// The final schedule (the fallback baseline's when
    /// [`DoublingOutcome::fell_back`] is set).
    pub outcome: ScheduleOutcome,
    /// The congestion guess of the last attempt, scaled back to engine
    /// rounds — comparable to the true congestion the search does not
    /// know. On the fallback path this is the guess that *failed* and
    /// tripped the give-up cap, not a successful budget; check
    /// [`DoublingOutcome::fell_back`] before reading it as one.
    pub final_guess: u64,
    /// Number of attempts (including the successful one).
    pub attempts: u32,
    /// Attempts rejected by the plan-level load prediction, without an
    /// engine run. Every failed attempt is rejected this way, so this is
    /// `attempts − 1` unless the search fell back to the baseline.
    pub rejected_by_precheck: u32,
    /// Rounds burnt across all failed attempts (also charged into
    /// `outcome.precompute_rounds`).
    pub wasted_rounds: u64,
    /// The full span (in big-rounds) of the delay law each attempt
    /// actually drew from: the uniform law's prime range, or the private
    /// law's total span (all decaying blocks). Strictly increasing — the
    /// doubling regression guard.
    pub attempted_ranges: Vec<u64>,
    /// Whether the search gave up and fell back to the always-correct
    /// interleave baseline. Mirrored by the `doubling.fallback` obs
    /// counter, but available to [`ObsConfig::off`] callers and bench
    /// records too.
    pub fell_back: bool,
    /// How much planning work the artifact cache saved.
    pub cache: PlanCacheStats,
}

/// Knobs for the doubling searches — everything defaults to the production
/// configuration.
#[derive(Clone, Debug)]
pub struct DoublingConfig {
    /// Build the guess-independent [`PlanArtifact`] once and re-size it
    /// per attempt (default). Off replans every attempt from scratch —
    /// the outcome is byte-identical either way (CI diffs the two), only
    /// slower.
    pub reuse_artifact: bool,
    /// Overrides the give-up cap (default `k · dilation · max-degree`, a
    /// trivial congestion upper bound). Tests and experiments use a tiny
    /// cap to force the fallback path deterministically.
    pub cap_override: Option<u64>,
    /// Optional live hub: every attempt's verdict is published into it as
    /// a [`das_obs::DoublingAttempt`] (and the fallback, if taken), and
    /// the final execution streams per-shard snapshots. Publication is
    /// write-only, so the search outcome is byte-identical with or
    /// without a hub attached.
    pub live: Option<Arc<LiveHub>>,
}

impl Default for DoublingConfig {
    fn default() -> Self {
        DoublingConfig {
            reuse_artifact: true,
            cap_override: None,
            live: None,
        }
    }
}

impl DoublingConfig {
    /// Returns the configuration with the live hub set (builder style).
    #[must_use]
    pub fn with_live(mut self, live: Option<Arc<LiveHub>>) -> Self {
        self.live = live;
        self
    }
}

/// Planning-work accounting for one doubling search: how often the
/// guess-independent artifact was built vs re-sized, and the wall time
/// each side took. The counters are deterministic; the `*_nanos` fields
/// are wall clocks (reported only through the opt-in `wall.*` metrics and
/// never persisted into deterministic artifacts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Guess-independent artifact builds (1 with the cache on, 0 off).
    pub artifact_builds: u64,
    /// Attempts planned by re-sizing an already-built artifact —
    /// `attempts − 1` with the cache on, 0 off.
    pub replan_cache_hits: u64,
    /// Wall nanoseconds building artifacts (with the cache off: running
    /// the full `plan()` per attempt).
    pub build_nanos: u64,
    /// Wall nanoseconds sizing plans from the artifact.
    pub size_nanos: u64,
}

/// First delay span tried, in big-rounds. Starting at 2 (not 1) keeps the
/// prime-range steps strictly increasing from the very first doubling
/// (`next_prime(1) = next_prime(2) = 2`), and matches the old float
/// sizing's first attempt exactly.
const INITIAL_RANGE: u64 = 2;

/// Plans one doubling attempt: re-sizes the cached artifact (building it
/// on first use), or — with the cache disabled — replans from scratch
/// through `set_override`. Returns the plan and whether an existing
/// artifact was reused.
fn plan_attempt<S: Scheduler + Clone>(
    problem: &DasProblem<'_>,
    base: &S,
    set_override: impl Fn(&mut S, u64),
    guess_span: u64,
    cfg: &DoublingConfig,
    artifact: &mut Option<PlanArtifact>,
    cache: &mut PlanCacheStats,
) -> Result<(crate::SchedulePlan, bool), ReferenceError> {
    if cfg.reuse_artifact {
        let reused = artifact.is_some();
        if reused {
            cache.replan_cache_hits += 1;
        } else {
            let t = Instant::now();
            *artifact = Some(base.build_artifact(problem, base.default_sched_seed())?);
            cache.build_nanos += t.elapsed().as_nanos() as u64;
            cache.artifact_builds += 1;
        }
        let art = artifact.as_ref().expect("built above");
        let t = Instant::now();
        let plan = base.size_plan(problem, art, Some(guess_span))?;
        cache.size_nanos += t.elapsed().as_nanos() as u64;
        Ok((plan, reused))
    } else {
        let t = Instant::now();
        let mut sched = base.clone();
        set_override(&mut sched, guess_span);
        let plan = sched.plan(problem, sched.default_sched_seed())?;
        cache.build_nanos += t.elapsed().as_nanos() as u64;
        Ok((plan, false))
    }
}

/// One attempt's facts for the observability report.
struct AttemptRecord<'a> {
    attempt: u32,
    /// The full span of the delay law the attempt drew from — the same
    /// convention for both searches (prime range / total block span).
    delay_span: u64,
    guess: u64,
    prediction: &'a analysis::LoadPrediction,
    wasted_before: u64,
    /// The planning (pre-computation) charge of the attempt's plan — the
    /// accepted attempt's span duration.
    planning_rounds: u64,
    reused_artifact: bool,
}

/// Records one doubling attempt into the report: accept/reject counters
/// with the reason, plus (in full mode) a `Plan`-track span whose
/// deterministic timestamp is the rounds already burnt by earlier failed
/// attempts. A *rejected* attempt's span lasts its charged (predicted)
/// cost; an *accepted* attempt's span covers only the planning charge —
/// its engine rounds land on the `Execute` tracks when the final plan
/// runs, so they appear exactly once on the timeline.
fn record_attempt(report: &mut Option<ObsReport>, obs: &ObsConfig, rec: AttemptRecord<'_>) {
    let Some(r) = report.as_mut() else { return };
    r.metrics.inc("doubling.attempts", 1);
    let (name, dur) = if rec.prediction.feasible() {
        r.metrics.inc("doubling.accepted", 1);
        ("attempt accepted", rec.planning_rounds)
    } else {
        r.metrics.inc("doubling.rejected_precheck", 1);
        (
            "attempt rejected: predicted late",
            rec.prediction.predicted_engine_rounds,
        )
    };
    if obs.events_enabled() {
        r.push_event(
            TraceEvent::span(Stage::Plan, 0, name, rec.wasted_before, dur)
                .arg("attempt", u64::from(rec.attempt))
                .arg("delay_span", rec.delay_span)
                .arg("congestion_guess", rec.guess)
                .arg("predicted_late", rec.prediction.predicted_late)
                .arg("reused_artifact", u64::from(rec.reused_artifact)),
        );
    }
}

/// Folds the final execution's recording, the search totals, and the
/// plan-cache accounting into the report once the search terminates.
fn finish_report(
    report: &mut Option<ObsReport>,
    obs: &ObsConfig,
    exec_report: Option<ObsReport>,
    wasted: u64,
    fell_back: bool,
    cache: &PlanCacheStats,
) {
    let Some(r) = report.as_mut() else { return };
    if let Some(er) = exec_report {
        r.merge(&er);
    }
    r.metrics.inc("doubling.wasted_rounds", wasted);
    r.metrics
        .inc("doubling.artifact_builds", cache.artifact_builds);
    r.metrics
        .inc("doubling.replan_cache_hits", cache.replan_cache_hits);
    if fell_back {
        r.metrics.inc("doubling.fallback", 1);
    }
    if obs.wall_clock {
        // Wall clocks stay quarantined behind the explicit opt-in, like
        // the pipeline's other wall.* counters.
        r.metrics
            .inc("wall.artifact_build_us", cache.build_nanos / 1_000);
        r.metrics.inc("wall.plan_size_us", cache.size_nanos / 1_000);
    }
}

/// Runs the Theorem 1.1 scheduler without knowing `congestion`: doubles an
/// integer delay range until the planned schedule has no (predicted, hence
/// actual) late messages. Gives up (falling back to the always-correct
/// interleave baseline) once the implied congestion guess exceeds
/// `k · dilation · max-degree` — a trivial congestion upper bound.
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn uniform_with_doubling(
    problem: &DasProblem<'_>,
    base: &UniformScheduler,
) -> Result<DoublingOutcome, SchedError> {
    uniform_with_doubling_observed(problem, base, &ObsConfig::off()).map(|(o, _)| o)
}

/// [`uniform_with_doubling`] with observability: additionally returns an
/// [`ObsReport`] (when recording is enabled) carrying
/// `doubling.*` accept/reject counters, one `Plan`-track span per attempt
/// clocked on the cumulative charged rounds, and the final execution's
/// recording.
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn uniform_with_doubling_observed(
    problem: &DasProblem<'_>,
    base: &UniformScheduler,
    obs: &ObsConfig,
) -> Result<(DoublingOutcome, Option<ObsReport>), SchedError> {
    uniform_with_doubling_configured(problem, base, obs, &DoublingConfig::default())
}

/// [`uniform_with_doubling_observed`] with explicit [`DoublingConfig`]
/// knobs (artifact reuse, cap override).
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn uniform_with_doubling_configured(
    problem: &DasProblem<'_>,
    base: &UniformScheduler,
    obs: &ObsConfig,
    cfg: &DoublingConfig,
) -> Result<(DoublingOutcome, Option<ObsReport>), SchedError> {
    let k = problem.k() as u64;
    let dilation = problem.dilation() as u64;
    let cap = cfg
        .cap_override
        .unwrap_or_else(|| (k * dilation * problem.graph().max_degree().max(1) as u64).max(1));
    let ln_n = (problem.graph().node_count().max(2) as f64).ln();
    let mut range = INITIAL_RANGE;
    let mut attempts = 0u32;
    let mut rejected = 0u32;
    let mut wasted = 0u64;
    let mut attempted_ranges = Vec::new();
    let mut artifact: Option<PlanArtifact> = None;
    let mut cache = PlanCacheStats::default();
    let mut report = obs.enabled().then(ObsReport::new);
    loop {
        attempts += 1;
        // Sizing the scheduler for the guess: the delay range (in
        // big-rounds) is what a congestion budget controls — range · ln n
        // engine rounds of spread for a budget of that many messages.
        let span = das_prg::primes::next_prime(range);
        attempted_ranges.push(span);
        // The law draws from the *prime* span, which next_prime rounds up
        // from the requested range — the reported guess and the give-up
        // check must use the span actually in force, or both under-report
        // the real delay budget.
        let guess = implied_congestion(span, ln_n);
        let (plan, reused) = plan_attempt(
            problem,
            base,
            |s, g| s.delay_range = Some(g),
            range,
            cfg,
            &mut artifact,
            &mut cache,
        )?;
        let prediction = analysis::predict(problem, &plan)?;
        record_attempt(
            &mut report,
            obs,
            AttemptRecord {
                attempt: attempts,
                delay_span: span,
                guess,
                prediction: &prediction,
                wasted_before: wasted,
                planning_rounds: plan.precompute_rounds,
                reused_artifact: reused,
            },
        );
        if let Some(hub) = &cfg.live {
            hub.publish_doubling_attempt(
                guess,
                prediction.predicted_engine_rounds,
                prediction.feasible(),
            );
        }
        if prediction.feasible() {
            let exec_cfg = ExecutorConfig::default().with_live(cfg.live.clone());
            let (mut outcome, exec_report) =
                execute_plan_observed_with(problem, &plan, obs, &exec_cfg)?;
            debug_assert_eq!(outcome.stats.late_messages, 0, "prediction is exact");
            outcome.precompute_rounds += wasted;
            finish_report(&mut report, obs, exec_report, wasted, false, &cache);
            return Ok((
                DoublingOutcome {
                    outcome,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                    fell_back: false,
                    cache,
                },
                report,
            ));
        }
        // rejected on the plan alone; charge what the failed attempt
        // would have cost
        rejected += 1;
        wasted += prediction.predicted_engine_rounds + detection_cost(problem);
        if guess > cap {
            if let Some(hub) = &cfg.live {
                hub.publish_doubling_fallback();
            }
            let fallback = InterleaveScheduler;
            let plan = fallback.plan(problem, fallback.default_sched_seed())?;
            let exec_cfg = ExecutorConfig::default().with_live(cfg.live.clone());
            let (mut outcome, exec_report) =
                execute_plan_observed_with(problem, &plan, obs, &exec_cfg)?;
            outcome.precompute_rounds += wasted;
            finish_report(&mut report, obs, exec_report, wasted, true, &cache);
            return Ok((
                DoublingOutcome {
                    outcome,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                    fell_back: true,
                    cache,
                },
                report,
            ));
        }
        range *= 2;
    }
}

/// Runs the Theorem 4.1 private scheduler without knowing `congestion`,
/// by the same doubling discipline. The clustering and sharing
/// pre-computation depend only on `dilation` (which nodes can read off
/// their own algorithms), so only the *execution* attempts repeat; the
/// pre-computation is charged once — and, through the plan artifact,
/// *computed* once too.
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn private_with_doubling(
    problem: &DasProblem<'_>,
    base: &PrivateScheduler,
) -> Result<DoublingOutcome, SchedError> {
    private_with_doubling_observed(problem, base, &ObsConfig::off()).map(|(o, _)| o)
}

/// [`private_with_doubling`] with observability — same recording contract
/// as [`uniform_with_doubling_observed`].
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn private_with_doubling_observed(
    problem: &DasProblem<'_>,
    base: &PrivateScheduler,
    obs: &ObsConfig,
) -> Result<(DoublingOutcome, Option<ObsReport>), SchedError> {
    private_with_doubling_configured(problem, base, obs, &DoublingConfig::default())
}

/// [`private_with_doubling_observed`] with explicit [`DoublingConfig`]
/// knobs (artifact reuse, cap override).
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn private_with_doubling_configured(
    problem: &DasProblem<'_>,
    base: &PrivateScheduler,
    obs: &ObsConfig,
    cfg: &DoublingConfig,
) -> Result<(DoublingOutcome, Option<ObsReport>), SchedError> {
    let k = problem.k() as u64;
    let dilation = problem.dilation() as u64;
    let cap = cfg
        .cap_override
        .unwrap_or_else(|| (k * dilation * problem.graph().max_degree().max(1) as u64).max(1));
    let ln_n = (problem.graph().node_count().max(2) as f64).ln();
    let mut block = INITIAL_RANGE;
    let mut attempts = 0u32;
    let mut rejected = 0u32;
    let mut wasted = 0u64;
    let mut attempted_ranges = Vec::new();
    let mut precompute_once: Option<u64> = None;
    let mut artifact: Option<PlanArtifact> = None;
    let mut cache = PlanCacheStats::default();
    let mut report = obs.enabled().then(ObsReport::new);
    loop {
        attempts += 1;
        let (plan, reused) = plan_attempt(
            problem,
            base,
            |s, g| s.block_override = Some(g),
            block,
            cfg,
            &mut artifact,
            &mut cache,
        )?;
        let num_layers = (plan.unit_count() / problem.k()).max(1);
        // Report the full span of the sized law (all decaying blocks) —
        // the same delay_span convention as the uniform search's prime
        // range. The congestion guess itself stays on the first block:
        // only first-scheduled copies pay bandwidth (Lemma 4.4), so the
        // first block is what a congestion budget controls.
        let span = base.doubling_delay_span(block, num_layers);
        attempted_ranges.push(span);
        let guess = implied_congestion(block, ln_n);
        // pre-computation is independent of the congestion guess: charge it
        // once across attempts
        let pre = *precompute_once.get_or_insert(plan.precompute_rounds);
        let prediction = analysis::predict(problem, &plan)?;
        record_attempt(
            &mut report,
            obs,
            AttemptRecord {
                attempt: attempts,
                delay_span: span,
                guess,
                prediction: &prediction,
                wasted_before: wasted,
                planning_rounds: pre,
                reused_artifact: reused,
            },
        );
        if let Some(hub) = &cfg.live {
            hub.publish_doubling_attempt(
                guess,
                prediction.predicted_engine_rounds,
                prediction.feasible(),
            );
        }
        if prediction.feasible() {
            let exec_cfg = ExecutorConfig::default().with_live(cfg.live.clone());
            let (mut outcome, exec_report) =
                execute_plan_observed_with(problem, &plan, obs, &exec_cfg)?;
            debug_assert_eq!(outcome.stats.late_messages, 0, "prediction is exact");
            outcome.precompute_rounds = pre + wasted;
            finish_report(&mut report, obs, exec_report, wasted, false, &cache);
            return Ok((
                DoublingOutcome {
                    outcome,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                    fell_back: false,
                    cache,
                },
                report,
            ));
        }
        rejected += 1;
        wasted += prediction.predicted_engine_rounds + detection_cost(problem);
        if guess > cap {
            if let Some(hub) = &cfg.live {
                hub.publish_doubling_fallback();
            }
            let fb = InterleaveScheduler;
            let plan = fb.plan(problem, fb.default_sched_seed())?;
            let exec_cfg = ExecutorConfig::default().with_live(cfg.live.clone());
            let (mut fallback, exec_report) =
                execute_plan_observed_with(problem, &plan, obs, &exec_cfg)?;
            fallback.precompute_rounds = pre + wasted;
            finish_report(&mut report, obs, exec_report, wasted, true, &cache);
            return Ok((
                DoublingOutcome {
                    outcome: fallback,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                    fell_back: true,
                    cache,
                },
                report,
            ));
        }
        block *= 2;
    }
}

/// The congestion a delay span of `range` big-rounds budgets for:
/// `range · ln n` messages per edge spread over `range` big-rounds of
/// `Θ(ln n)` rounds each. Used for the give-up cap and reporting only —
/// the sizing itself is exact-integer.
fn implied_congestion(range: u64, ln_n: f64) -> u64 {
    range.saturating_mul(ln_n.ceil().max(1.0) as u64)
}

/// The charged cost of detecting a failed attempt: an `O(diameter)`
/// convergecast + broadcast of a success flag.
fn detection_cost(problem: &DasProblem<'_>) -> u64 {
    2 * das_graph::traversal::diameter_estimate(problem.graph(), das_graph::NodeId(0))
        .map(|(lb, _)| lb as u64)
        .unwrap_or(problem.graph().node_count() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use crate::verify;
    use das_graph::generators;

    /// A path instance congested enough to force several doubling
    /// attempts (16 relays stacked on 11 edges).
    fn congested_problem(g: &das_graph::Graph) -> DasProblem<'_> {
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..16)
            .map(|i| Box::new(RelayChain::new(i, g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, 3)
    }

    #[test]
    fn doubling_finds_a_working_guess() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..8)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());
        assert!(result.attempts >= 1);
        assert!(!result.fell_back, "a working guess exists");
        // wasted rounds are charged
        assert_eq!(
            result.outcome.total_rounds(),
            result.outcome.schedule_rounds() + result.wasted_rounds
        );
    }

    #[test]
    fn precheck_rejects_every_failed_guess_without_an_engine_run() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..8)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        // the successful attempt is the only one that executed: everything
        // before it was rejected on the plan alone, and the final outcome
        // is clean (the pre-check accepted it, exactly)
        assert_eq!(result.rejected_by_precheck, result.attempts - 1);
        assert_eq!(result.outcome.stats.late_messages, 0);
        // failed attempts still charge rounds
        if result.attempts > 1 {
            assert!(result.wasted_rounds > 0);
        }
    }

    #[test]
    fn private_doubling_finds_a_working_guess() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 8);
        let result = private_with_doubling(&p, &crate::PrivateScheduler::default()).unwrap();
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());
        assert!(result.outcome.precompute_rounds > 0);
        assert_eq!(result.rejected_by_precheck, result.attempts - 1);
        assert!(!result.fell_back);
    }

    #[test]
    fn doubling_cost_dominated_by_final_attempt() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..10)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        // geometric series: wasted <= O(final attempt + attempts * detection)
        let final_len = result.outcome.schedule_rounds();
        assert!(
            result.wasted_rounds <= 3 * final_len + 30 * result.attempts as u64,
            "wasted {} vs final {final_len}",
            result.wasted_rounds
        );
    }

    #[test]
    fn observed_doubling_matches_and_records_attempts() {
        let g = generators::path(12);
        let p = congested_problem(&g);
        let plain = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        let (observed, report) =
            uniform_with_doubling_observed(&p, &UniformScheduler::default(), &ObsConfig::full())
                .unwrap();
        assert_eq!(
            format!("{:?}", plain.outcome),
            format!("{:?}", observed.outcome),
            "recording must not perturb the doubling search"
        );
        let Some(r) = report else {
            return; // recording compiled out
        };
        assert_eq!(
            r.metrics.counter("doubling.attempts"),
            u64::from(observed.attempts)
        );
        assert_eq!(
            r.metrics.counter("doubling.rejected_precheck"),
            u64::from(observed.rejected_by_precheck)
        );
        assert_eq!(r.metrics.counter("doubling.accepted"), 1);
        assert_eq!(r.metrics.counter("doubling.fallback"), 0);
        assert_eq!(
            r.metrics.counter("doubling.wasted_rounds"),
            observed.wasted_rounds
        );
        // the cache counters mirror DoublingOutcome.cache
        assert_eq!(
            r.metrics.counter("doubling.artifact_builds"),
            observed.cache.artifact_builds
        );
        assert_eq!(
            r.metrics.counter("doubling.replan_cache_hits"),
            observed.cache.replan_cache_hits
        );
        // wall clocks stay out of the deterministic report by default
        assert!(r.metrics.counters.keys().all(|k| !k.starts_with("wall.")));
        // one Plan-track span per attempt, plus the engine's execute events
        let plan_spans = r
            .events
            .iter()
            .filter(|e| e.stage == das_obs::Stage::Plan)
            .count();
        assert_eq!(plan_spans, observed.attempts as usize);
    }

    #[test]
    fn every_attempt_strictly_widens_the_delay_range() {
        // regression for the float-factor sizing: on a small graph
        // (ln n ≈ 2.3) the old `range_factor = guess / real_c` sizing
        // mapped several consecutive guesses to the same integer range, so
        // "doubling" re-tried an identical plan. The integer sizing must
        // produce strictly increasing spans on an instance congested
        // enough to force several attempts.
        let g = generators::path(12);
        let p = congested_problem(&g);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        assert!(
            result.attempts > 1,
            "instance must force the search to actually double"
        );
        assert_eq!(result.attempted_ranges.len(), result.attempts as usize);
        for w in result.attempted_ranges.windows(2) {
            assert!(
                w[1] > w[0],
                "attempt ranges must strictly widen: {:?}",
                result.attempted_ranges
            );
        }
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());

        let private = private_with_doubling(&p, &crate::PrivateScheduler::default()).unwrap();
        assert_eq!(private.attempted_ranges.len(), private.attempts as usize);
        for w in private.attempted_ranges.windows(2) {
            assert!(
                w[1] > w[0],
                "private attempt spans must strictly widen: {:?}",
                private.attempted_ranges
            );
        }
    }

    #[test]
    fn uniform_guess_derives_from_the_prime_span_actually_used() {
        // regression: the second attempt requests range 4 but draws from
        // next_prime(4) = 5 big-rounds; the reported guess (and the cap
        // check) must reflect the 5, not the 4.
        let g = generators::path(12);
        let p = congested_problem(&g);
        let ln_n = (g.node_count().max(2) as f64).ln();
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        assert!(result.attempts > 1, "need a doubled attempt");
        assert_eq!(
            result.attempted_ranges[1], 5,
            "second attempt must use the prime span above range 4"
        );
        let last_span = *result.attempted_ranges.last().unwrap();
        assert_eq!(
            result.final_guess,
            implied_congestion(last_span, ln_n),
            "final_guess must be derived from the prime span in force"
        );
    }

    #[test]
    fn forced_fallback_sets_fell_back_and_stays_correct() {
        let g = generators::path(12);
        let p = congested_problem(&g);
        let cfg = DoublingConfig {
            cap_override: Some(1),
            ..DoublingConfig::default()
        };
        let (result, _) = uniform_with_doubling_configured(
            &p,
            &UniformScheduler::default(),
            &ObsConfig::off(),
            &cfg,
        )
        .unwrap();
        assert!(result.fell_back, "a cap of 1 must force the fallback");
        assert_eq!(
            result.rejected_by_precheck, result.attempts,
            "every attempt failed on the fallback path"
        );
        assert!(
            result.final_guess > 1,
            "final_guess records the guess that tripped the cap"
        );
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct(), "the interleave fallback is exact");

        let (private, _) = private_with_doubling_configured(
            &p,
            &crate::PrivateScheduler::default(),
            &ObsConfig::off(),
            &cfg,
        )
        .unwrap();
        assert!(private.fell_back);
        assert!(verify::against_references(&p, &private.outcome)
            .unwrap()
            .all_correct());
    }

    #[test]
    fn artifact_cache_hits_every_attempt_after_the_first() {
        let g = generators::path(12);
        let p = congested_problem(&g);
        let uni = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        assert!(uni.attempts > 1);
        assert_eq!(uni.cache.artifact_builds, 1, "artifact built exactly once");
        assert_eq!(
            uni.cache.replan_cache_hits,
            u64::from(uni.attempts) - 1,
            "every later attempt re-sizes the cached artifact"
        );
        let prv = private_with_doubling(&p, &crate::PrivateScheduler::default()).unwrap();
        assert_eq!(prv.cache.artifact_builds, 1);
        assert_eq!(prv.cache.replan_cache_hits, u64::from(prv.attempts) - 1);

        // cache off: every attempt replans from scratch
        let cfg = DoublingConfig {
            reuse_artifact: false,
            ..DoublingConfig::default()
        };
        let (off, _) = uniform_with_doubling_configured(
            &p,
            &UniformScheduler::default(),
            &ObsConfig::off(),
            &cfg,
        )
        .unwrap();
        assert_eq!(off.cache.artifact_builds, 0);
        assert_eq!(off.cache.replan_cache_hits, 0);
    }
}
