//! Removing the known-parameters assumption by doubling.
//!
//! The paper assumes nodes know constant-factor approximations of
//! `congestion` and `dilation` and defers the removal of that assumption
//! to "standard doubling techniques". This module implements the standard
//! technique: guess a congestion budget, size a schedule plan for the
//! guess, check whether it succeeds (no message arrives late — in a real
//! deployment this is an `O(D)` convergecast of a success flag, which we
//! charge), and double the guess otherwise. The total cost is dominated by
//! the last, successful attempt, so the asymptotics are unchanged.
//!
//! The guess is applied as an exact **integer delay range in big-rounds**
//! ([`UniformScheduler::delay_range`] / [`PrivateScheduler::block_override`]),
//! not as a float multiplier of the true congestion: the float route
//! rounded consecutive guesses to the same range on small instances (and
//! leaked the true congestion into the sizing, which the doubling search
//! is not supposed to know), so attempts were silently repeated instead of
//! widened. Every attempt now strictly widens the delay span — see
//! [`DoublingOutcome::attempted_ranges`].
//!
//! Failed guesses are detected by [`crate::plan::analysis::predict`] on
//! the *plan*, without running the engine: the prediction of "no late
//! messages" is exact (see the analysis module docs), so the pre-check
//! never rejects a guess that would have succeeded and the engine executes
//! exactly once — on the final, successful plan. The charged round costs
//! are unchanged: every rejected guess still pays its predicted schedule
//! length plus the detection convergecast.

use crate::plan::{analysis, execute_plan_observed, SchedError};
use crate::problem::DasProblem;
use crate::schedule::ScheduleOutcome;
use crate::schedulers::Scheduler;
use crate::{InterleaveScheduler, PrivateScheduler, UniformScheduler};
use das_obs::{ObsConfig, ObsReport, Stage, TraceEvent};

/// The outcome of a doubling search.
#[derive(Debug)]
pub struct DoublingOutcome {
    /// The final (successful) schedule.
    pub outcome: ScheduleOutcome,
    /// The congestion guess that succeeded (the big-round span of the last
    /// attempt, scaled back to engine rounds — comparable to the true
    /// congestion the search does not know).
    pub final_guess: u64,
    /// Number of attempts (including the successful one).
    pub attempts: u32,
    /// Attempts rejected by the plan-level load prediction, without an
    /// engine run. Every failed attempt is rejected this way, so this is
    /// `attempts − 1` unless the search fell back to the baseline.
    pub rejected_by_precheck: u32,
    /// Rounds burnt across all failed attempts (also charged into
    /// `outcome.precompute_rounds`).
    pub wasted_rounds: u64,
    /// The delay span (in big-rounds) each attempt actually used: the
    /// uniform law's prime range, or the private law's first-block size.
    /// Strictly increasing — the doubling regression guard.
    pub attempted_ranges: Vec<u64>,
}

/// First delay span tried, in big-rounds. Starting at 2 (not 1) keeps the
/// prime-range steps strictly increasing from the very first doubling
/// (`next_prime(1) = next_prime(2) = 2`), and matches the old float
/// sizing's first attempt exactly.
const INITIAL_RANGE: u64 = 2;

/// Records one doubling attempt into the report: accept/reject counters
/// with the reason, plus (in full mode) a `Plan`-track span whose
/// deterministic timestamp is the rounds already burnt by earlier failed
/// attempts and whose duration is the attempt's charged cost.
fn record_attempt(
    report: &mut Option<ObsReport>,
    obs: &ObsConfig,
    attempt: u32,
    delay_span: u64,
    guess: u64,
    prediction: &analysis::LoadPrediction,
    wasted_before: u64,
) {
    let Some(r) = report.as_mut() else { return };
    r.metrics.inc("doubling.attempts", 1);
    let name = if prediction.feasible() {
        r.metrics.inc("doubling.accepted", 1);
        "attempt accepted"
    } else {
        r.metrics.inc("doubling.rejected_precheck", 1);
        "attempt rejected: predicted late"
    };
    if obs.events_enabled() {
        r.push_event(
            TraceEvent::span(
                Stage::Plan,
                0,
                name,
                wasted_before,
                prediction.predicted_engine_rounds,
            )
            .arg("attempt", u64::from(attempt))
            .arg("delay_span", delay_span)
            .arg("congestion_guess", guess)
            .arg("predicted_late", prediction.predicted_late),
        );
    }
}

/// Folds the final execution's recording and the search totals into the
/// report once the search terminates.
fn finish_report(
    report: &mut Option<ObsReport>,
    exec_report: Option<ObsReport>,
    wasted: u64,
    fell_back: bool,
) {
    let Some(r) = report.as_mut() else { return };
    if let Some(er) = exec_report {
        r.merge(&er);
    }
    r.metrics.inc("doubling.wasted_rounds", wasted);
    if fell_back {
        r.metrics.inc("doubling.fallback", 1);
    }
}

/// Runs the Theorem 1.1 scheduler without knowing `congestion`: doubles an
/// integer delay range until the planned schedule has no (predicted, hence
/// actual) late messages. Gives up (falling back to the always-correct
/// interleave baseline) once the implied congestion guess exceeds
/// `k · dilation · max-degree` — a trivial congestion upper bound.
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn uniform_with_doubling(
    problem: &DasProblem<'_>,
    base: &UniformScheduler,
) -> Result<DoublingOutcome, SchedError> {
    uniform_with_doubling_observed(problem, base, &ObsConfig::off()).map(|(o, _)| o)
}

/// [`uniform_with_doubling`] with observability: additionally returns an
/// [`ObsReport`] (when recording is enabled) carrying
/// `doubling.*` accept/reject counters, one `Plan`-track span per attempt
/// clocked on the cumulative charged rounds, and the final execution's
/// recording.
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn uniform_with_doubling_observed(
    problem: &DasProblem<'_>,
    base: &UniformScheduler,
    obs: &ObsConfig,
) -> Result<(DoublingOutcome, Option<ObsReport>), SchedError> {
    let k = problem.k() as u64;
    let dilation = problem.dilation() as u64;
    let cap = (k * dilation * problem.graph().max_degree().max(1) as u64).max(1);
    let ln_n = (problem.graph().node_count().max(2) as f64).ln();
    let mut range = INITIAL_RANGE;
    let mut attempts = 0u32;
    let mut rejected = 0u32;
    let mut wasted = 0u64;
    let mut attempted_ranges = Vec::new();
    let mut report = obs.enabled().then(ObsReport::new);
    loop {
        attempts += 1;
        // Sizing the scheduler for the guess: the delay range (in
        // big-rounds) is what a congestion budget controls — range · ln n
        // engine rounds of spread for a budget of that many messages.
        let mut sched = base.clone();
        sched.delay_range = Some(range);
        let span = das_prg::primes::next_prime(range);
        attempted_ranges.push(span);
        let guess = implied_congestion(range, ln_n);
        let plan = sched.plan(problem, sched.default_sched_seed())?;
        let prediction = analysis::predict(problem, &plan)?;
        record_attempt(&mut report, obs, attempts, span, guess, &prediction, wasted);
        if prediction.feasible() {
            let (mut outcome, exec_report) = execute_plan_observed(problem, &plan, obs)?;
            debug_assert_eq!(outcome.stats.late_messages, 0, "prediction is exact");
            outcome.precompute_rounds += wasted;
            finish_report(&mut report, exec_report, wasted, false);
            return Ok((
                DoublingOutcome {
                    outcome,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                },
                report,
            ));
        }
        // rejected on the plan alone; charge what the failed attempt
        // would have cost
        rejected += 1;
        wasted += prediction.predicted_engine_rounds + detection_cost(problem);
        if guess > cap {
            let fallback = InterleaveScheduler;
            let plan = fallback.plan(problem, fallback.default_sched_seed())?;
            let (mut outcome, exec_report) = execute_plan_observed(problem, &plan, obs)?;
            outcome.precompute_rounds += wasted;
            finish_report(&mut report, exec_report, wasted, true);
            return Ok((
                DoublingOutcome {
                    outcome,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                },
                report,
            ));
        }
        range *= 2;
    }
}

/// Runs the Theorem 4.1 private scheduler without knowing `congestion`,
/// by the same doubling discipline. The clustering and sharing
/// pre-computation depend only on `dilation` (which nodes can read off
/// their own algorithms), so only the *execution* attempts repeat; the
/// pre-computation is charged once.
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn private_with_doubling(
    problem: &DasProblem<'_>,
    base: &PrivateScheduler,
) -> Result<DoublingOutcome, SchedError> {
    private_with_doubling_observed(problem, base, &ObsConfig::off()).map(|(o, _)| o)
}

/// [`private_with_doubling`] with observability — same recording contract
/// as [`uniform_with_doubling_observed`].
///
/// # Errors
/// Propagates a [`SchedError`] from planning or the final execution.
pub fn private_with_doubling_observed(
    problem: &DasProblem<'_>,
    base: &PrivateScheduler,
    obs: &ObsConfig,
) -> Result<(DoublingOutcome, Option<ObsReport>), SchedError> {
    let k = problem.k() as u64;
    let dilation = problem.dilation() as u64;
    let cap = (k * dilation * problem.graph().max_degree().max(1) as u64).max(1);
    let ln_n = (problem.graph().node_count().max(2) as f64).ln();
    let mut block = INITIAL_RANGE;
    let mut attempts = 0u32;
    let mut rejected = 0u32;
    let mut wasted = 0u64;
    let mut attempted_ranges = Vec::new();
    let mut precompute_once: Option<u64> = None;
    let mut report = obs.enabled().then(ObsReport::new);
    loop {
        attempts += 1;
        let mut sched = base.clone();
        sched.block_override = Some(block);
        attempted_ranges.push(block);
        let guess = implied_congestion(block, ln_n);
        let plan = sched.plan(problem, sched.default_sched_seed())?;
        // pre-computation is independent of the congestion guess: charge it
        // once across attempts
        let pre = *precompute_once.get_or_insert(plan.precompute_rounds);
        let prediction = analysis::predict(problem, &plan)?;
        record_attempt(
            &mut report,
            obs,
            attempts,
            block,
            guess,
            &prediction,
            wasted,
        );
        if prediction.feasible() {
            let (mut outcome, exec_report) = execute_plan_observed(problem, &plan, obs)?;
            debug_assert_eq!(outcome.stats.late_messages, 0, "prediction is exact");
            outcome.precompute_rounds = pre + wasted;
            finish_report(&mut report, exec_report, wasted, false);
            return Ok((
                DoublingOutcome {
                    outcome,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                },
                report,
            ));
        }
        rejected += 1;
        wasted += prediction.predicted_engine_rounds + detection_cost(problem);
        if guess > cap {
            let fb = InterleaveScheduler;
            let plan = fb.plan(problem, fb.default_sched_seed())?;
            let (mut fallback, exec_report) = execute_plan_observed(problem, &plan, obs)?;
            fallback.precompute_rounds = pre + wasted;
            finish_report(&mut report, exec_report, wasted, true);
            return Ok((
                DoublingOutcome {
                    outcome: fallback,
                    final_guess: guess,
                    attempts,
                    rejected_by_precheck: rejected,
                    wasted_rounds: wasted,
                    attempted_ranges,
                },
                report,
            ));
        }
        block *= 2;
    }
}

/// The congestion a delay span of `range` big-rounds budgets for:
/// `range · ln n` messages per edge spread over `range` big-rounds of
/// `Θ(ln n)` rounds each. Used for the give-up cap and reporting only —
/// the sizing itself is exact-integer.
fn implied_congestion(range: u64, ln_n: f64) -> u64 {
    range.saturating_mul(ln_n.ceil().max(1.0) as u64)
}

/// The charged cost of detecting a failed attempt: an `O(diameter)`
/// convergecast + broadcast of a success flag.
fn detection_cost(problem: &DasProblem<'_>) -> u64 {
    2 * das_graph::traversal::diameter_estimate(problem.graph(), das_graph::NodeId(0))
        .map(|(lb, _)| lb as u64)
        .unwrap_or(problem.graph().node_count() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use crate::verify;
    use das_graph::generators;

    #[test]
    fn doubling_finds_a_working_guess() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..8)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());
        assert!(result.attempts >= 1);
        // wasted rounds are charged
        assert_eq!(
            result.outcome.total_rounds(),
            result.outcome.schedule_rounds() + result.wasted_rounds
        );
    }

    #[test]
    fn precheck_rejects_every_failed_guess_without_an_engine_run() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..8)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        // the successful attempt is the only one that executed: everything
        // before it was rejected on the plan alone, and the final outcome
        // is clean (the pre-check accepted it, exactly)
        assert_eq!(result.rejected_by_precheck, result.attempts - 1);
        assert_eq!(result.outcome.stats.late_messages, 0);
        // failed attempts still charge rounds
        if result.attempts > 1 {
            assert!(result.wasted_rounds > 0);
        }
    }

    #[test]
    fn private_doubling_finds_a_working_guess() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 8);
        let result = private_with_doubling(&p, &crate::PrivateScheduler::default()).unwrap();
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());
        assert!(result.outcome.precompute_rounds > 0);
        assert_eq!(result.rejected_by_precheck, result.attempts - 1);
    }

    #[test]
    fn doubling_cost_dominated_by_final_attempt() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..10)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        // geometric series: wasted <= O(final attempt + attempts * detection)
        let final_len = result.outcome.schedule_rounds();
        assert!(
            result.wasted_rounds <= 3 * final_len + 30 * result.attempts as u64,
            "wasted {} vs final {final_len}",
            result.wasted_rounds
        );
    }

    #[test]
    fn observed_doubling_matches_and_records_attempts() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..16)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let plain = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        let (observed, report) =
            uniform_with_doubling_observed(&p, &UniformScheduler::default(), &ObsConfig::full())
                .unwrap();
        assert_eq!(
            format!("{:?}", plain.outcome),
            format!("{:?}", observed.outcome),
            "recording must not perturb the doubling search"
        );
        let Some(r) = report else {
            return; // recording compiled out
        };
        assert_eq!(
            r.metrics.counter("doubling.attempts"),
            u64::from(observed.attempts)
        );
        assert_eq!(
            r.metrics.counter("doubling.rejected_precheck"),
            u64::from(observed.rejected_by_precheck)
        );
        assert_eq!(r.metrics.counter("doubling.accepted"), 1);
        assert_eq!(r.metrics.counter("doubling.fallback"), 0);
        assert_eq!(
            r.metrics.counter("doubling.wasted_rounds"),
            observed.wasted_rounds
        );
        // one Plan-track span per attempt, plus the engine's execute events
        let plan_spans = r
            .events
            .iter()
            .filter(|e| e.stage == das_obs::Stage::Plan)
            .count();
        assert_eq!(plan_spans, observed.attempts as usize);
    }

    #[test]
    fn every_attempt_strictly_widens_the_delay_range() {
        // regression for the float-factor sizing: on a small graph
        // (ln n ≈ 2.3) the old `range_factor = guess / real_c` sizing
        // mapped several consecutive guesses to the same integer range, so
        // "doubling" re-tried an identical plan. The integer sizing must
        // produce strictly increasing spans on an instance congested
        // enough to force several attempts.
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..16)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        assert!(
            result.attempts > 1,
            "instance must force the search to actually double"
        );
        assert_eq!(result.attempted_ranges.len(), result.attempts as usize);
        for w in result.attempted_ranges.windows(2) {
            assert!(
                w[1] > w[0],
                "attempt ranges must strictly widen: {:?}",
                result.attempted_ranges
            );
        }
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());

        let private = private_with_doubling(&p, &crate::PrivateScheduler::default()).unwrap();
        assert_eq!(private.attempted_ranges.len(), private.attempts as usize);
        for w in private.attempted_ranges.windows(2) {
            assert!(
                w[1] > w[0],
                "private attempt blocks must strictly widen: {:?}",
                private.attempted_ranges
            );
        }
    }
}
