//! Removing the known-parameters assumption by doubling.
//!
//! The paper assumes nodes know constant-factor approximations of
//! `congestion` and `dilation` and defers the removal of that assumption
//! to "standard doubling techniques". This module implements the standard
//! technique: guess `(C̃, D̃)`, run the schedule sized for the guess, check
//! whether it succeeded (no message arrived late — in a real deployment
//! this is an `O(D)` convergecast of a success flag, which we charge), and
//! double the guess otherwise. The total cost is dominated by the last,
//! successful attempt, so the asymptotics are unchanged.

use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedule::ScheduleOutcome;
use crate::schedulers::Scheduler;
use crate::{InterleaveScheduler, PrivateScheduler, UniformScheduler};

/// The outcome of a doubling search.
#[derive(Debug)]
pub struct DoublingOutcome {
    /// The final (successful) schedule.
    pub outcome: ScheduleOutcome,
    /// The congestion guess that succeeded.
    pub final_guess: u64,
    /// Number of attempts (including the successful one).
    pub attempts: u32,
    /// Rounds burnt across all failed attempts (also charged into
    /// `outcome.precompute_rounds`).
    pub wasted_rounds: u64,
}

/// Runs the Theorem 1.1 scheduler without knowing `congestion`: doubles a
/// congestion guess until the schedule has no late messages. Gives up
/// (falling back to the always-correct interleave baseline) once the guess
/// exceeds `k · dilation · max-degree` — a trivial congestion upper bound.
///
/// # Errors
/// Propagates a [`ReferenceError`] from the underlying scheduler.
pub fn uniform_with_doubling(
    problem: &DasProblem<'_>,
    base: &UniformScheduler,
) -> Result<DoublingOutcome, ReferenceError> {
    let k = problem.k() as u64;
    let dilation = problem.dilation() as u64;
    let cap = (k * dilation * problem.graph().max_degree().max(1) as u64).max(1);
    let mut guess = 1u64;
    let mut attempts = 0u32;
    let mut wasted = 0u64;
    loop {
        attempts += 1;
        // Sizing the scheduler for guessed congestion: the range factor
        // scales the delay range, which is what the guess controls.
        let params = problem.parameters()?;
        let real_c = params.congestion.max(1);
        let mut sched = base.clone();
        sched.range_factor = guess as f64 / real_c as f64;
        let outcome = sched.run(problem)?;
        let ok = outcome.stats.late_messages == 0;
        if ok || guess > cap {
            let mut outcome = if ok {
                outcome
            } else {
                wasted += outcome.schedule_rounds() + detection_cost(problem);
                InterleaveScheduler.run(problem)?
            };
            outcome.precompute_rounds += wasted;
            return Ok(DoublingOutcome {
                outcome,
                final_guess: guess,
                attempts,
                wasted_rounds: wasted,
            });
        }
        wasted += outcome.schedule_rounds() + detection_cost(problem);
        guess *= 2;
    }
}

/// Runs the Theorem 4.1 private scheduler without knowing `congestion`,
/// by the same doubling discipline. The clustering and sharing
/// pre-computation depend only on `dilation` (which nodes can read off
/// their own algorithms), so only the *execution* attempts repeat; the
/// pre-computation is charged once.
///
/// # Errors
/// Propagates a [`ReferenceError`] from the underlying scheduler.
pub fn private_with_doubling(
    problem: &DasProblem<'_>,
    base: &PrivateScheduler,
) -> Result<DoublingOutcome, ReferenceError> {
    let k = problem.k() as u64;
    let dilation = problem.dilation() as u64;
    let cap = (k * dilation * problem.graph().max_degree().max(1) as u64).max(1);
    let mut guess = 1u64;
    let mut attempts = 0u32;
    let mut wasted = 0u64;
    let mut precompute_once: Option<u64> = None;
    loop {
        attempts += 1;
        let params = problem.parameters()?;
        let real_c = params.congestion.max(1);
        let mut sched = base.clone();
        sched.block_factor = guess as f64 / real_c as f64;
        let mut outcome = sched.run(problem)?;
        // pre-computation is independent of the congestion guess: charge it
        // once across attempts
        let pre = *precompute_once.get_or_insert(outcome.precompute_rounds);
        outcome.precompute_rounds = pre;
        let ok = outcome.stats.late_messages == 0;
        if ok || guess > cap {
            let mut outcome = if ok {
                outcome
            } else {
                wasted += outcome.schedule_rounds() + detection_cost(problem);
                let mut fallback = InterleaveScheduler.run(problem)?;
                fallback.precompute_rounds = pre;
                fallback
            };
            outcome.precompute_rounds += wasted;
            return Ok(DoublingOutcome {
                outcome,
                final_guess: guess,
                attempts,
                wasted_rounds: wasted,
            });
        }
        wasted += outcome.schedule_rounds() + detection_cost(problem);
        guess *= 2;
    }
}

/// The charged cost of detecting a failed attempt: an `O(diameter)`
/// convergecast + broadcast of a success flag.
fn detection_cost(problem: &DasProblem<'_>) -> u64 {
    2 * das_graph::traversal::diameter_estimate(problem.graph(), das_graph::NodeId(0))
        .map(|(lb, _)| lb as u64)
        .unwrap_or(problem.graph().node_count() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use crate::verify;
    use das_graph::generators;

    #[test]
    fn doubling_finds_a_working_guess() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..8)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());
        assert!(result.attempts >= 1);
        // wasted rounds are charged
        assert_eq!(
            result.outcome.total_rounds(),
            result.outcome.schedule_rounds() + result.wasted_rounds
        );
    }

    #[test]
    fn private_doubling_finds_a_working_guess() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 8);
        let result = private_with_doubling(&p, &crate::PrivateScheduler::default()).unwrap();
        let report = verify::against_references(&p, &result.outcome).unwrap();
        assert!(report.all_correct());
        assert!(result.outcome.precompute_rounds > 0);
    }

    #[test]
    fn doubling_cost_dominated_by_final_attempt() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..10)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let result = uniform_with_doubling(&p, &UniformScheduler::default()).unwrap();
        // geometric series: wasted <= O(final attempt + attempts * detection)
        let final_len = result.outcome.schedule_rounds();
        assert!(
            result.wasted_rounds <= 3 * final_len + 30 * result.attempts as u64,
            "wasted {} vs final {final_len}",
            result.wasted_rounds
        );
    }
}
