//! The result of a scheduled execution.

use crate::exec::ExecStats;
use das_pattern::SimulationMap;

/// Everything a scheduler run produces.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// Per-algorithm, per-node outputs: `outputs[a][v]`.
    pub outputs: Vec<Vec<Option<Vec<u8>>>>,
    /// Execution statistics (schedule length, late messages, …).
    pub stats: ExecStats,
    /// Per-algorithm simulation maps (message → scheduled departure round),
    /// when recording was enabled; feed to
    /// [`das_pattern::verify_simulation`].
    pub departures: Option<Vec<SimulationMap>>,
    /// CONGEST rounds spent in pre-computation before the schedule ran
    /// (clustering + randomness sharing for the private scheduler; 0 for
    /// the shared-randomness and baseline schedulers).
    pub precompute_rounds: u64,
}

impl ScheduleOutcome {
    /// Schedule length in engine rounds (excluding pre-computation).
    pub fn schedule_rounds(&self) -> u64 {
        self.stats.engine_rounds
    }

    /// Total rounds including pre-computation.
    pub fn total_rounds(&self) -> u64 {
        self.stats.engine_rounds + self.precompute_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let o = ScheduleOutcome {
            outputs: vec![],
            stats: ExecStats {
                engine_rounds: 100,
                ..ExecStats::default()
            },
            departures: None,
            precompute_rounds: 40,
        };
        assert_eq!(o.schedule_rounds(), 100);
        assert_eq!(o.total_rounds(), 140);
    }
}
