//! Reducing the amount of shared randomness (Appendix A, last part).
//!
//! Newman's observation, transplanted to distributed algorithms: a
//! Bellagio algorithm using `R` bits of shared randomness is a collection
//! `F` of `2^R` deterministic algorithms, each input being answered
//! canonically by ≥ 2/3 of them. By the probabilistic method, a random
//! subcollection `F'` of size `poly(n)` is, w.h.p., still ≥ 3/5-correct
//! for *every* input — so `O(log n)` shared bits (an index into `F'`)
//! suffice.
//!
//! The paper notes the argument is existential but that nodes can find the
//! *same* good subcollection without communication by a deterministic
//! brute-force search in a canonical order (local computation is free in
//! CONGEST). [`find_subcollection`] implements exactly that search, and
//! the tests exercise it on a toy Bellagio family.

/// A description of a Bellagio collection for the reduction: `is_canonical
/// (input, seed)` says whether deterministic algorithm `seed` answers
/// `input` canonically.
pub struct Collection<'a> {
    /// Correctness oracle.
    pub is_canonical: &'a dyn Fn(u64, u64) -> bool,
    /// The full seed space (the `2^R` deterministic algorithms).
    pub seeds: &'a [u64],
}

/// Checks whether a candidate subcollection is `threshold`-good for every
/// input: each input is answered canonically by at least
/// `threshold · |sub|` members.
pub fn is_good(collection: &Collection<'_>, sub: &[u64], inputs: &[u64], threshold: f64) -> bool {
    let need = (threshold * sub.len() as f64).ceil() as usize;
    inputs.iter().all(|&x| {
        sub.iter()
            .filter(|&&s| (collection.is_canonical)(x, s))
            .count()
            >= need
    })
}

/// Deterministic brute-force search for a good subcollection of size
/// `size`: candidate subcollections are generated in a canonical order
/// (derived from a counter via SplitMix — the *same* order at every node,
/// so all nodes find the same collection without any communication), and
/// the first `threshold`-good one is returned together with its index.
///
/// Returns `None` if no good subcollection is found within `max_tries`
/// candidates (by the probabilistic method this essentially does not
/// happen once `size = Ω(log |inputs|)`).
pub fn find_subcollection(
    collection: &Collection<'_>,
    inputs: &[u64],
    size: usize,
    threshold: f64,
    max_tries: u64,
) -> Option<(u64, Vec<u64>)> {
    assert!(size > 0, "subcollection must be non-empty");
    for try_idx in 0..max_tries {
        let sub: Vec<u64> = (0..size as u64)
            .map(|j| {
                let r = das_congest::util::seed_mix(try_idx, j);
                collection.seeds[(r % collection.seeds.len() as u64) as usize]
            })
            .collect();
        if is_good(collection, &sub, inputs, threshold) {
            return Some((try_idx, sub));
        }
    }
    None
}

/// The number of shared bits needed to index the reduced collection —
/// `⌈log₂ size⌉`, the paper's `O(log n)`.
pub fn bits_needed(size: usize) -> u32 {
    (size.max(1) as f64).log2().ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_congest::util::seed_mix;

    /// Toy Bellagio family: algorithm `s` answers input `x` canonically
    /// iff a hash avoids a 1/4 bad region — so every input is answered
    /// correctly by ~3/4 ≥ 2/3 of the seeds.
    fn toy_oracle(x: u64, s: u64) -> bool {
        !seed_mix(x, s).is_multiple_of(4)
    }

    fn full_seeds() -> Vec<u64> {
        (0..4096u64).collect()
    }

    #[test]
    fn full_collection_is_bellagio() {
        let seeds = full_seeds();
        for x in 0..64u64 {
            let good = seeds.iter().filter(|&&s| toy_oracle(x, s)).count();
            assert!(
                good as f64 >= 2.0 / 3.0 * seeds.len() as f64,
                "input {x} only {good}/{} canonical",
                seeds.len()
            );
        }
    }

    #[test]
    fn small_subcollection_exists_and_is_found() {
        let seeds = full_seeds();
        let collection = Collection {
            is_canonical: &toy_oracle,
            seeds: &seeds,
        };
        let inputs: Vec<u64> = (0..256).collect();
        // O(log |inputs|) seeds suffice
        let size = 64;
        let (idx, sub) = find_subcollection(&collection, &inputs, size, 0.6, 100)
            .expect("a good subcollection exists");
        assert_eq!(sub.len(), size);
        assert!(is_good(&collection, &sub, &inputs, 0.6));
        // shared bits collapse from log2(4096) = 12 to log2(64) = 6
        assert_eq!(bits_needed(size), 6);
        assert!(bits_needed(seeds.len()) > bits_needed(size));
        // the search is deterministic: every "node" finds the same one
        let (idx2, sub2) = find_subcollection(&collection, &inputs, size, 0.6, 100).unwrap();
        assert_eq!((idx, &sub), (idx2, &sub2));
    }

    #[test]
    fn overly_strict_threshold_fails() {
        let seeds = full_seeds();
        let collection = Collection {
            is_canonical: &toy_oracle,
            seeds: &seeds,
        };
        let inputs: Vec<u64> = (0..64).collect();
        // demanding perfection from a tiny subcollection must fail fast
        assert!(find_subcollection(&collection, &inputs, 48, 1.0, 20).is_none());
    }

    #[test]
    fn good_check_counts_exactly() {
        let seeds = vec![0u64, 1, 2, 3];
        let oracle = |x: u64, s: u64| s >= x; // seed s canonical for inputs <= s
        let collection = Collection {
            is_canonical: &oracle,
            seeds: &seeds,
        };
        // input 2: seeds {2,3} canonical = 2/4 = 0.5
        assert!(is_good(&collection, &seeds, &[2], 0.5));
        assert!(!is_good(&collection, &seeds, &[2], 0.6));
    }
}
