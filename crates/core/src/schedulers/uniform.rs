//! Shared-randomness random-delay schedulers: Theorem 1.1 and the §3
//! remark variant.

use crate::exec::Unit;
use crate::plan::cache::{
    ArtifactData, PlanArtifact, SweepArtifact, SweepData, UniformArtifact, UniformSweep,
};
use crate::plan::SchedulePlan;
use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedulers::Scheduler;
use das_prg::{primes, DelayLaw, KWiseGenerator, Uniform};

/// How many pseudo-random words each algorithm's AID bucket reserves.
const BUCKET_WIDTH: u64 = 4;

/// The Theorem 1.1 scheduler: given **shared randomness**, break time into
/// phases of `Θ(log n)` rounds, delay each algorithm by a uniform random
/// number of phases in `[Θ(congestion / log n)]`, then run everything at
/// one algorithm-round per phase. W.h.p. each edge carries `O(log n)`
/// messages per phase — which fits — and the whole schedule takes
/// `O(congestion + dilation · log n)` rounds.
///
/// The shared randomness is modeled explicitly: all delay draws come from
/// one `Θ(log n)`-wise independent generator seeded with the plan's
/// `sched_seed`, which every node is assumed to know. (The paper notes
/// `Θ(log n)`-wise independence suffices for the Chernoff argument, so
/// `O(log² n)` shared bits are enough — exactly what
/// [`PrivateScheduler`](super::PrivateScheduler) later distributes per
/// cluster.)
#[derive(Clone, Debug)]
pub struct UniformScheduler {
    /// The shared random seed (the model assumption of Theorem 1.1); used
    /// as the `sched_seed` by the fused [`Scheduler::run`] path.
    pub shared_seed: u64,
    /// Phase length multiplier: `phase_len = ⌈phase_factor · ln n⌉`.
    pub phase_factor: f64,
    /// Delay range multiplier: range `= ⌈range_factor · C / ln n⌉` phases.
    pub range_factor: f64,
    /// Exact delay range in big-rounds, overriding the
    /// `range_factor`-derived sizing when set. [`crate::doubling`] uses
    /// this to double the range in exact integer steps instead of going
    /// through a lossy float factor.
    pub delay_range: Option<u64>,
}

impl Default for UniformScheduler {
    fn default() -> Self {
        UniformScheduler {
            shared_seed: 0xDA5C0DE,
            phase_factor: 3.0,
            range_factor: 1.0,
            delay_range: None,
        }
    }
}

impl UniformScheduler {
    /// Sets the shared seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shared_seed = seed;
        self
    }

    /// The delay range an attempt actually sizes for: an explicit `guess`
    /// wins, then the configured [`UniformScheduler::delay_range`]
    /// override, then the `range_factor`-derived default.
    fn effective_range(&self, guess: Option<u64>, congestion: u64, ln_n: f64) -> u64 {
        guess.or(self.delay_range).unwrap_or_else(|| {
            ((self.range_factor * congestion as f64) / ln_n)
                .ceil()
                .max(1.0) as u64
        })
    }
}

fn kwise_from_shared(seed: u64, n: usize, p: u64) -> KWiseGenerator {
    let k = (2.0 * (n.max(2) as f64).log2()).ceil() as usize;
    KWiseGenerator::from_seed_bytes(&seed.to_le_bytes(), k, p)
}

/// The per-algorithm `(r1, r2)` bucket draws, in algorithm order — the
/// raw generator words both the direct plan path and the artifact cache
/// reduce into delays.
fn bucket_pairs(problem: &DasProblem<'_>, gen: &KWiseGenerator) -> Vec<(u64, u64)> {
    problem
        .algorithms()
        .iter()
        .map(|algo| {
            let r1 = gen.bucket_value(algo.aid().0, 0, BUCKET_WIDTH);
            let r2 = gen.bucket_value(algo.aid().0, 1, BUCKET_WIDTH);
            (r1, r2)
        })
        .collect()
}

/// Reduces raw bucket draws into one globally-delayed unit per algorithm.
fn units_from_pairs(pairs: &[(u64, u64)], law: &Uniform, n: usize) -> Vec<Unit> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(r1, r2))| Unit::global(i, law.sample_from_pair(r1, r2), n))
        .collect()
}

fn delayed_units(problem: &DasProblem<'_>, gen: &KWiseGenerator, law: &Uniform) -> Vec<Unit> {
    let n = problem.graph().node_count();
    units_from_pairs(&bucket_pairs(problem, gen), law, n)
}

impl Scheduler for UniformScheduler {
    fn name(&self) -> &'static str {
        "uniform-shared"
    }

    fn default_sched_seed(&self) -> u64 {
        self.shared_seed
    }

    fn plan(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        let params = problem.parameters()?;
        let n = problem.graph().node_count();
        let ln_n = (n.max(2) as f64).ln();
        let phase_len = (self.phase_factor * ln_n).ceil().max(1.0) as u64;
        let range = self.effective_range(None, params.congestion, ln_n);
        let law = Uniform::prime_at_least(range);
        let gen = kwise_from_shared(sched_seed, n, law.range());
        let units = delayed_units(problem, &gen, &law);
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            phase_len,
            0,
            problem,
            units,
        ))
    }

    fn build_artifact(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<PlanArtifact, ReferenceError> {
        let params = problem.parameters()?;
        let n = problem.graph().node_count();
        let ln_n = (n.max(2) as f64).ln();
        let phase_len = (self.phase_factor * ln_n).ceil().max(1.0) as u64;
        // The generator and its draws are cached at the scheduler's own
        // default span; sizing transfers them whenever a guess maps to
        // the same prime modulus.
        let range = self.effective_range(None, params.congestion, ln_n);
        let law = Uniform::prime_at_least(range);
        let gen = kwise_from_shared(sched_seed, n, law.range());
        let draws = bucket_pairs(problem, &gen);
        Ok(PlanArtifact::new(
            self.name(),
            sched_seed,
            ArtifactData::Uniform(UniformArtifact {
                phase_len,
                gen,
                draws,
            }),
        ))
    }

    fn size_plan(
        &self,
        problem: &DasProblem<'_>,
        artifact: &PlanArtifact,
        guess: Option<u64>,
    ) -> Result<SchedulePlan, ReferenceError> {
        artifact.expect_scheduler(self.name());
        let ArtifactData::Uniform(art) = &artifact.data else {
            unreachable!("uniform artifacts carry ArtifactData::Uniform")
        };
        let params = problem.parameters()?;
        let n = problem.graph().node_count();
        let ln_n = (n.max(2) as f64).ln();
        let range = self.effective_range(guess, params.congestion, ln_n);
        let law = Uniform::prime_at_least(range);
        // The uniform law's modulus *is* the prime span (footnote 6), so
        // the cached draws transfer only when the guess lands on the
        // cached prime; otherwise rebuild the Θ(log n)-coefficient
        // generator — the cheap part — and redraw.
        let units = if law.range() == art.gen.modulus() {
            units_from_pairs(&art.draws, &law, n)
        } else {
            let gen = kwise_from_shared(artifact.sched_seed(), n, law.range());
            units_from_pairs(&bucket_pairs(problem, &gen), &law, n)
        };
        Ok(SchedulePlan::assemble(
            self.name(),
            artifact.sched_seed(),
            art.phase_len,
            0,
            problem,
            units,
        ))
    }

    fn build_sweep_artifact(
        &self,
        problem: &DasProblem<'_>,
    ) -> Result<SweepArtifact, ReferenceError> {
        // Only the sizing is seed-independent; the Θ(log n)-coefficient
        // generator and its draws are cheap and rebuilt per seed.
        let params = problem.parameters()?;
        let n = problem.graph().node_count();
        let ln_n = (n.max(2) as f64).ln();
        Ok(SweepArtifact::new(
            self.name(),
            SweepData::Uniform(UniformSweep {
                phase_len: (self.phase_factor * ln_n).ceil().max(1.0) as u64,
                range: self.effective_range(None, params.congestion, ln_n),
            }),
        ))
    }

    fn plan_swept(
        &self,
        problem: &DasProblem<'_>,
        artifact: &SweepArtifact,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        artifact.expect_scheduler(self.name());
        let SweepData::Uniform(sweep) = &artifact.data else {
            unreachable!("uniform sweep artifacts carry SweepData::Uniform")
        };
        let n = problem.graph().node_count();
        let law = Uniform::prime_at_least(sweep.range);
        let gen = kwise_from_shared(sched_seed, n, law.range());
        let units = delayed_units(problem, &gen, &law);
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            sweep.phase_len,
            0,
            problem,
            units,
        ))
    }
}

/// The §3-remark variant: phases of `Θ(log n / log log n)` rounds and
/// delays uniform in `Θ(congestion)` *phases*. The expected per-edge
/// per-phase load is `O(1)`, so w.h.p. the max is
/// `O(log n / log log n)` — matching the phase length — and the schedule
/// takes `O((congestion + dilation) · log n / log log n)` rounds, tight
/// against the Theorem 3.1 lower bound.
#[derive(Clone, Debug)]
pub struct TunedUniformScheduler {
    /// The shared random seed; used as the `sched_seed` by the fused
    /// [`Scheduler::run`] path.
    pub shared_seed: u64,
    /// Phase length multiplier:
    /// `phase_len = ⌈phase_factor · ln n / ln ln n⌉`.
    pub phase_factor: f64,
    /// Delay range multiplier: range `= ⌈range_factor · C⌉` phases.
    pub range_factor: f64,
}

impl Default for TunedUniformScheduler {
    fn default() -> Self {
        TunedUniformScheduler {
            shared_seed: 0xDA5C0DE,
            phase_factor: 2.0,
            range_factor: 1.0,
        }
    }
}

impl Scheduler for TunedUniformScheduler {
    fn name(&self) -> &'static str {
        "tuned-shared"
    }

    fn default_sched_seed(&self) -> u64 {
        self.shared_seed
    }

    fn plan(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        let params = problem.parameters()?;
        let n = problem.graph().node_count();
        let ln_n = (n.max(3) as f64).ln();
        let lnln = ln_n.ln().max(1.0);
        let phase_len = (self.phase_factor * ln_n / lnln).ceil().max(1.0) as u64;
        let range = (self.range_factor * params.congestion as f64)
            .ceil()
            .max(1.0) as u64;
        let law = Uniform::prime_at_least(range);
        let gen = kwise_from_shared(sched_seed, n, law.range());
        let units = delayed_units(problem, &gen, &law);
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            phase_len,
            0,
            problem,
            units,
        ))
    }

    fn build_sweep_artifact(
        &self,
        problem: &DasProblem<'_>,
    ) -> Result<SweepArtifact, ReferenceError> {
        let params = problem.parameters()?;
        let n = problem.graph().node_count();
        let ln_n = (n.max(3) as f64).ln();
        let lnln = ln_n.ln().max(1.0);
        Ok(SweepArtifact::new(
            self.name(),
            SweepData::Uniform(UniformSweep {
                phase_len: (self.phase_factor * ln_n / lnln).ceil().max(1.0) as u64,
                range: (self.range_factor * params.congestion as f64)
                    .ceil()
                    .max(1.0) as u64,
            }),
        ))
    }

    fn plan_swept(
        &self,
        problem: &DasProblem<'_>,
        artifact: &SweepArtifact,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        artifact.expect_scheduler(self.name());
        let SweepData::Uniform(sweep) = &artifact.data else {
            unreachable!("tuned sweep artifacts carry SweepData::Uniform")
        };
        let n = problem.graph().node_count();
        let law = Uniform::prime_at_least(sweep.range);
        let gen = kwise_from_shared(sched_seed, n, law.range());
        let units = delayed_units(problem, &gen, &law);
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            sweep.phase_len,
            0,
            problem,
            units,
        ))
    }
}

/// The theoretical length bound of Theorem 1.1 for given parameters and
/// constants — used by experiments to report measured/bound ratios.
pub fn uniform_length_bound(congestion: u64, dilation: u32, n: usize) -> u64 {
    let ln_n = (n.max(2) as f64).ln();
    congestion + (dilation as f64 * ln_n).ceil() as u64
}

/// Sanity guard: the prime delay range stays close to the requested range
/// (Bertrand), so schedules don't silently double.
pub fn prime_range_overhead(range: u64) -> f64 {
    primes::next_prime(range) as f64 / range.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RelayChain;
    use crate::verify;
    use das_graph::{generators, NodeId};

    fn stacked_relays(g: &das_graph::Graph, k: usize) -> DasProblem<'_> {
        let algos = (0..k)
            .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        DasProblem::new(g, algos, 5)
    }

    #[test]
    fn uniform_schedules_stacked_relays_correctly() {
        let g = generators::path(12);
        let p = stacked_relays(&g, 10);
        let outcome = UniformScheduler::default().run(&p).unwrap();
        let report = verify::against_references(&p, &outcome).unwrap();
        assert!(
            report.all_correct(),
            "mismatches: {:?}, late: {}",
            report.mismatches,
            outcome.stats.late_messages
        );
    }

    #[test]
    fn uniform_beats_sequential_for_many_short_algorithms() {
        // many relays on overlapping path segments: congestion per edge is
        // low (~segment overlap), so pipelining pays off, while sequential
        // pays k · dilation
        let g = generators::path(60);
        let seg = 12usize;
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..30)
            .map(|i| {
                let start = (i * 2) % (60 - seg);
                let route: Vec<NodeId> = (start..=start + seg).map(|v| NodeId(v as u32)).collect();
                Box::new(RelayChain::along(i as u64, &g, route))
                    as Box<dyn crate::BlackBoxAlgorithm>
            })
            .collect();
        let p = DasProblem::new(&g, algos, 1);
        let seq = crate::SequentialScheduler.run(&p).unwrap();
        let uni = UniformScheduler::default().run(&p).unwrap();
        assert!(
            verify::against_references(&p, &uni).unwrap().all_correct(),
            "late: {}",
            uni.stats.late_messages
        );
        assert!(
            uni.schedule_rounds() < seq.schedule_rounds(),
            "uniform {} vs sequential {}",
            uni.schedule_rounds(),
            seq.schedule_rounds()
        );
    }

    #[test]
    fn tuned_schedules_correctly_on_moderate_instance() {
        let g = generators::path(10);
        let p = stacked_relays(&g, 8);
        let outcome = TunedUniformScheduler::default().run(&p).unwrap();
        let report = verify::against_references(&p, &outcome).unwrap();
        // the tuned variant has only log/loglog headroom; on tiny instances
        // it can be lossy, so require high-but-not-perfect correctness and
        // report the rate for visibility
        assert!(
            report.correctness_rate() > 0.9,
            "rate {}",
            report.correctness_rate()
        );
    }

    #[test]
    fn deterministic_given_shared_seed() {
        let g = generators::path(10);
        let p = stacked_relays(&g, 6);
        let a = UniformScheduler::default().run(&p).unwrap();
        let b = UniformScheduler::default().run(&p).unwrap();
        assert_eq!(a.schedule_rounds(), b.schedule_rounds());
        assert_eq!(a.outputs, b.outputs);
        let c = UniformScheduler::default().with_seed(99).run(&p).unwrap();
        // different shared seed draws different delays (schedule length or
        // message timing will almost surely differ)
        assert!(
            c.schedule_rounds() != a.schedule_rounds() || c.departures != a.departures,
            "seed change should alter the schedule"
        );
    }

    #[test]
    fn run_uses_the_configured_shared_seed_as_sched_seed() {
        let g = generators::path(10);
        let p = stacked_relays(&g, 6);
        let sched = UniformScheduler::default().with_seed(99);
        assert_eq!(sched.default_sched_seed(), 99);
        let via_run = sched.run(&p).unwrap();
        let via_plan = crate::plan::execute_plan(&p, &sched.plan(&p, 99).unwrap()).unwrap();
        assert_eq!(via_run.outputs, via_plan.outputs);
        assert_eq!(via_run.stats, via_plan.stats);
    }

    #[test]
    fn bound_helpers() {
        assert!(uniform_length_bound(100, 10, 64) >= 100);
        assert!(prime_range_overhead(10) <= 2.0);
        assert_eq!(prime_range_overhead(13), 1.0);
    }
}
