//! The scheduling algorithms: baselines, Theorem 1.1, the §3 remark
//! variant, and the private-randomness scheduler of Theorem 4.1.

mod baseline;
mod private;
mod uniform;

pub use baseline::{InterleaveScheduler, SequentialScheduler};
pub use private::{PrivateDelayLaw, PrivateScheduler};
pub use uniform::{
    prime_range_overhead, uniform_length_bound, TunedUniformScheduler, UniformScheduler,
};

use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedule::ScheduleOutcome;

/// A DAS scheduler: turns a problem instance into a scheduled execution.
///
/// Schedulers are `Send + Sync` so a trial harness can share one across
/// worker threads.
pub trait Scheduler: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Schedules and executes all algorithms of `problem`.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`] if an algorithm violates the
    /// CONGEST model in its alone run (the measured congestion/dilation
    /// parameters come from there).
    fn run(&self, problem: &DasProblem<'_>) -> Result<ScheduleOutcome, ReferenceError>;
}
