//! The scheduling algorithms: baselines, Theorem 1.1, the §3 remark
//! variant, and the private-randomness scheduler of Theorem 4.1.
//!
//! Every scheduler is a *planner*: [`Scheduler::plan`] maps `(problem,
//! sched_seed)` to a [`SchedulePlan`], and the shared
//! [`crate::plan::execute_plan`] realizes any plan on the engine.
//! [`Scheduler::run`] is the fused convenience path — plan with the
//! scheduler's default seed, then execute.

mod baseline;
mod private;
mod uniform;

pub use baseline::{InterleaveScheduler, SequentialScheduler};
pub use private::{PrivateDelayLaw, PrivateScheduler};
pub use uniform::{
    prime_range_overhead, uniform_length_bound, TunedUniformScheduler, UniformScheduler,
};

use crate::plan::cache::{ArtifactData, PlanArtifact, SweepArtifact, SweepData};
use crate::plan::{execute_plan, SchedError, SchedulePlan};
use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedule::ScheduleOutcome;

/// A DAS scheduler: turns a problem instance into a [`SchedulePlan`] (and,
/// through [`Scheduler::run`], into a scheduled execution).
///
/// Schedulers are `Send + Sync` so a trial harness can share one across
/// worker threads.
pub trait Scheduler: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The `sched_seed` that [`Scheduler::run`] plans with — the
    /// scheduler's own configured seed, so the fused path stays
    /// reproducible from the scheduler value alone. Deterministic
    /// schedulers ignore the seed and return 0.
    fn default_sched_seed(&self) -> u64 {
        0
    }

    /// Plans the schedule: delays, truncations, and phase length for all
    /// algorithms of `problem`, drawing any scheduler randomness from
    /// `sched_seed`. Pure: same `(problem, sched_seed)`, same plan.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`] if an algorithm violates the
    /// CONGEST model in its alone run (the measured congestion/dilation
    /// parameters come from there).
    fn plan(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError>;

    /// Builds the cached, guess-independent planning artifact for
    /// `(problem, sched_seed)` — everything [`Scheduler::plan`] computes
    /// that does not depend on a congestion guess. [`crate::doubling`]
    /// builds it once and re-sizes it per guess via
    /// [`Scheduler::size_plan`].
    ///
    /// The default implementation caches the finished plan outright,
    /// which is exact for schedulers whose plans ignore the guess
    /// entirely (sequential, interleave, tuned).
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`], as [`Scheduler::plan`] does.
    fn build_artifact(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<PlanArtifact, ReferenceError> {
        Ok(PlanArtifact::fixed(
            self.name(),
            sched_seed,
            self.plan(problem, sched_seed)?,
        ))
    }

    /// Sizes a [`SchedulePlan`] from a cached artifact for a concrete
    /// congestion `guess` (an exact delay-span override in big-rounds;
    /// `None` keeps the scheduler's own default sizing). The result is
    /// **byte-identical** to [`Scheduler::plan`] run from scratch with
    /// the corresponding override set — the artifact split must be
    /// invisible in the plan bytes. Schedulers without a span override
    /// (sequential, interleave, tuned) ignore `guess`.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`], as [`Scheduler::plan`] does.
    ///
    /// # Panics
    /// Panics if `artifact` was built by a different scheduler.
    fn size_plan(
        &self,
        problem: &DasProblem<'_>,
        artifact: &PlanArtifact,
        guess: Option<u64>,
    ) -> Result<SchedulePlan, ReferenceError> {
        let _ = (problem, guess);
        artifact.expect_scheduler(self.name());
        match &artifact.data {
            ArtifactData::Fixed(plan) => Ok(plan.clone()),
            _ => unreachable!(
                "scheduler `{}` uses the default fixed-plan artifact",
                self.name()
            ),
        }
    }

    /// Builds the *seed-sweep* artifact for `problem` — everything
    /// [`Scheduler::plan`] computes that does not depend on `sched_seed`.
    /// A trial sweep builds this once per `(problem, scheduler)` and
    /// derives each seed's plan with [`Scheduler::plan_swept`].
    ///
    /// The default implementation caches nothing (the replan form of
    /// [`SweepArtifact`]): `plan_swept` then falls back to a from-scratch
    /// [`Scheduler::plan`], which is trivially byte-identical. Schedulers
    /// override this when part of their planning is genuinely
    /// seed-independent — all five built-ins do.
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`], as [`Scheduler::plan`] does.
    fn build_sweep_artifact(
        &self,
        problem: &DasProblem<'_>,
    ) -> Result<SweepArtifact, ReferenceError> {
        let _ = problem;
        Ok(SweepArtifact::replan(self.name()))
    }

    /// Derives the plan for one `sched_seed` of a sweep from a cached
    /// [`SweepArtifact`]. The result is **byte-identical** to
    /// [`Scheduler::plan`]`(problem, sched_seed)` run from scratch — the
    /// sweep split must be invisible in the plan bytes
    /// (`tests/plan_cache_equivalence.rs` enforces it).
    ///
    /// # Errors
    /// Propagates a [`ReferenceError`], as [`Scheduler::plan`] does.
    ///
    /// # Panics
    /// Panics if `artifact` was built by a different scheduler.
    fn plan_swept(
        &self,
        problem: &DasProblem<'_>,
        artifact: &SweepArtifact,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        artifact.expect_scheduler(self.name());
        match &artifact.data {
            SweepData::Replan => self.plan(problem, sched_seed),
            SweepData::SeedTagged(plan) => {
                let mut plan = plan.clone();
                plan.sched_seed = sched_seed;
                Ok(plan)
            }
            _ => unreachable!(
                "scheduler `{}` must override plan_swept for its sweep payload",
                self.name()
            ),
        }
    }

    /// Schedules and executes all algorithms of `problem`: plans with
    /// [`Scheduler::default_sched_seed`] and hands the plan to
    /// [`crate::plan::execute_plan`].
    ///
    /// # Errors
    /// Propagates a [`SchedError`]: a [`ReferenceError`] from planning, or
    /// an execution failure (e.g. the engine-round cap).
    fn run(&self, problem: &DasProblem<'_>) -> Result<ScheduleOutcome, SchedError> {
        let plan = self.plan(problem, self.default_sched_seed())?;
        execute_plan(problem, &plan)
    }
}
