//! Baseline schedulers: sequential composition and time-division
//! multiplexing. Both are deterministic, interference-free, and slow —
//! the yardsticks the paper's schedulers are measured against.

use crate::exec::Unit;
use crate::plan::cache::SweepArtifact;
use crate::plan::SchedulePlan;
use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedulers::Scheduler;

/// Runs the algorithms one after another: algorithm `i` starts when
/// `i − 1` has finished. Length `Σ_i rounds(A_i)` — up to `k · dilation`.
#[derive(Clone, Debug, Default)]
pub struct SequentialScheduler;

impl Scheduler for SequentialScheduler {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn plan(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        let n = problem.graph().node_count();
        let mut units = Vec::with_capacity(problem.k());
        let mut start = 0u64;
        for (i, algo) in problem.algorithms().iter().enumerate() {
            units.push(Unit::global(i, start, n));
            start += algo.rounds() as u64;
        }
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            1,
            0,
            problem,
            units,
        ))
    }

    fn build_sweep_artifact(
        &self,
        problem: &DasProblem<'_>,
    ) -> Result<SweepArtifact, ReferenceError> {
        // The plan ignores `sched_seed` except as provenance: cache it
        // finished and let re-seeding rewrite the tag.
        Ok(SweepArtifact::seed_tagged(
            self.name(),
            self.plan(problem, self.default_sched_seed())?,
        ))
    }
}

/// Time-division multiplexing: round-robin over the `k` algorithms, one
/// engine round each — algorithm `i` runs its round `r` in engine round
/// `r·k + i`. Length exactly `k · dilation`, never any interference.
#[derive(Clone, Debug, Default)]
pub struct InterleaveScheduler;

impl Scheduler for InterleaveScheduler {
    fn name(&self) -> &'static str {
        "interleave"
    }

    fn plan(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        let n = problem.graph().node_count();
        let k = problem.k() as u64;
        let units = (0..problem.k())
            .map(|i| Unit {
                algo: i,
                delay: vec![i as u64; n],
                stride: k,
                trunc: vec![u32::MAX; n],
            })
            .collect::<Vec<_>>();
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            1,
            0,
            problem,
            units,
        ))
    }

    fn build_sweep_artifact(
        &self,
        problem: &DasProblem<'_>,
    ) -> Result<SweepArtifact, ReferenceError> {
        Ok(SweepArtifact::seed_tagged(
            self.name(),
            self.plan(problem, self.default_sched_seed())?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{FloodBall, RelayChain};
    use crate::verify;
    use das_graph::{generators, NodeId};

    fn mixed_problem(g: &das_graph::Graph) -> DasProblem<'_> {
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = vec![
            Box::new(RelayChain::new(0, g)),
            Box::new(RelayChain::new(1, g)),
            Box::new(FloodBall::new(2, g, NodeId(0), 4)),
        ];
        DasProblem::new(g, algos, 17)
    }

    #[test]
    fn sequential_is_correct_and_sums_rounds() {
        let g = generators::path(8);
        let p = mixed_problem(&g);
        let outcome = SequentialScheduler.run(&p).unwrap();
        assert!(verify::against_references(&p, &outcome)
            .unwrap()
            .all_correct());
        assert_eq!(outcome.stats.late_messages, 0);
        // 7 + 7 + 5 rounds
        assert_eq!(outcome.schedule_rounds(), 19);
    }

    #[test]
    fn sequential_plan_predicts_its_length() {
        let g = generators::path(8);
        let p = mixed_problem(&g);
        let plan = SequentialScheduler.plan(&p, 0).unwrap();
        assert_eq!(plan.phase_len, 1);
        assert_eq!(plan.precompute_rounds, 0);
        assert_eq!(plan.predicted_rounds, 19);
        assert_eq!(plan.unit_count(), 3);
    }

    #[test]
    fn interleave_is_correct_with_k_dilation_length() {
        let g = generators::path(8);
        let p = mixed_problem(&g);
        let outcome = InterleaveScheduler.run(&p).unwrap();
        assert!(verify::against_references(&p, &outcome)
            .unwrap()
            .all_correct());
        assert_eq!(outcome.stats.late_messages, 0);
        // k = 3, dilation = 7: last step at big-round <= 2 + 6*3 = 20
        assert!(outcome.schedule_rounds() <= 3 * 7);
    }

    #[test]
    fn sequential_simulations_are_causal() {
        let g = generators::path(6);
        let p = mixed_problem(&g);
        let outcome = SequentialScheduler.run(&p).unwrap();
        let refs = p.references().unwrap();
        for (i, map) in outcome.departures.as_ref().unwrap().iter().enumerate() {
            das_pattern::verify_simulation(&g, &refs[i].pattern, map).unwrap();
        }
    }
}
