//! The private-randomness scheduler of Theorem 1.3 / 4.1 — the paper's
//! main algorithmic contribution.
//!
//! Pipeline:
//!
//! 1. **Carve** `Θ(log n)` layers of clusters with weak diameter
//!    `O(dilation · log n)` (Lemma 4.2), learning per-node contained radii.
//! 2. **Share** `Θ(log² n)` random bits inside every cluster (Lemma 4.3).
//! 3. Each cluster feeds its shared bits into a `Θ(log n)`-wise
//!    independent PRG and draws, per algorithm, a delay from the
//!    **block-decay** law of Lemma 4.4 — consistent within the cluster,
//!    independent across algorithms.
//! 4. Every algorithm runs once per (layer, cluster), **truncated** at each
//!    node's contained radius; the canonical-machine executor deduplicates
//!    messages across layers, so only the first-scheduled copy of each
//!    message is transmitted. Nodes whose dilation-ball is contained in
//!    some cluster (w.h.p. all of them, in `Θ(log n)` layers) reconstruct
//!    the full alone-run behavior.
//!
//! Cost: `O(dilation · log² n)` rounds of pre-computation, then a schedule
//! of `O(congestion + dilation · log n)` rounds.

use crate::exec::Unit;
use crate::plan::cache::{
    ArtifactData, PlanArtifact, PrivateArtifact, PrivateSweep, SweepArtifact, SweepData,
};
use crate::plan::SchedulePlan;
use crate::problem::DasProblem;
use crate::reference::ReferenceError;
use crate::schedulers::Scheduler;
use das_cluster::{share_layer_centralized, CarveConfig, Clustering, Layer, ShareConfig};
use das_congest::util::seed_mix;
use das_prg::{BlockDecay, DelayLaw, KWiseGenerator};

/// 2^61 − 1 (Mersenne prime): the PRG field. Delay draws reduce PRG values
/// modulo block sizes; with a 61-bit field the modulo bias is ≤ 2⁻⁴⁰.
const PRG_PRIME: u64 = 2_305_843_009_213_693_951;

/// How many pseudo-random words each algorithm's AID bucket reserves.
const BUCKET_WIDTH: u64 = 4;

/// Which delay law drives the per-cluster delays — Lemma 4.4's design
/// choice, exposed for the ablation experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrivateDelayLaw {
    /// The paper's non-uniform block-decay law: only the *first*-scheduled
    /// copy of each message costs bandwidth, so the delay span stays
    /// `Θ(congestion / log n)` big-rounds and the schedule is
    /// `O(congestion + dilation log n)`.
    #[default]
    BlockDecay,
    /// The "simpler solution" from the proof of Lemma 4.4: uniform delays
    /// over `Θ(congestion)` big-rounds, paying for all `Θ(log n)` copies —
    /// schedule `O((congestion + dilation) log n)`.
    UniformWide,
}

/// The Theorem 4.1 scheduler. Uses **no shared randomness**: every random
/// bit either stays private to a node or travels in messages (the sharing
/// protocol of Lemma 4.3), and the pre-computation rounds are charged to
/// the result.
#[derive(Clone, Debug)]
pub struct PrivateScheduler {
    /// Base seed for all private draws (radii, labels, cluster chunks);
    /// used as the `sched_seed` by the fused [`Scheduler::run`] path.
    pub seed: u64,
    /// Phase length multiplier: `phase_len = ⌈phase_factor · ln n⌉`.
    pub phase_factor: f64,
    /// First-block-size multiplier: `L = ⌈block_factor · C / ln n⌉`.
    pub block_factor: f64,
    /// Exact first-block size in big-rounds, overriding the
    /// `block_factor`-derived sizing when set (the `UniformWide` ablation
    /// law scales it by the layer count, keeping the laws' relative spans).
    /// [`crate::doubling`] uses this to double the span in exact integer
    /// steps instead of going through a lossy float factor.
    pub block_override: Option<u64>,
    /// Override the number of clustering layers (default `⌈3 log₂ n⌉`).
    pub layers: Option<usize>,
    /// Run the honest distributed pre-computation protocols on the CONGEST
    /// engine (slower); otherwise use the bit-identical centralized
    /// references and charge their analytic round cost.
    pub distributed_precompute: bool,
    /// The delay law (Lemma 4.4 block-decay by default; see
    /// [`PrivateDelayLaw`]).
    pub delay_law: PrivateDelayLaw,
}

impl Default for PrivateScheduler {
    fn default() -> Self {
        PrivateScheduler {
            seed: 0x9417A7E,
            phase_factor: 2.0,
            block_factor: 1.0,
            block_override: None,
            layers: None,
            distributed_precompute: false,
            delay_law: PrivateDelayLaw::BlockDecay,
        }
    }
}

/// Per-layer, per-cluster shared seed words from the Lemma 4.3 sharing
/// step: `layer_seeds[layer][cluster]` is that cluster's seed vector.
type LayerSeeds = Vec<Vec<Vec<u64>>>;

/// Carved clustering, per-layer shared seeds, and the charged
/// pre-computation rounds — the guess-independent prefix of planning.
type Precomputed = (Clustering, LayerSeeds, u64);

impl PrivateScheduler {
    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of clustering layers.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = Some(layers);
        self
    }

    /// Enables the honest distributed pre-computation.
    pub fn with_distributed_precompute(mut self, on: bool) -> Self {
        self.distributed_precompute = on;
        self
    }

    /// Selects the delay law (for the ablation experiment).
    pub fn with_delay_law(mut self, law: PrivateDelayLaw) -> Self {
        self.delay_law = law;
        self
    }

    /// The carve configuration for `problem`'s graph — deterministic
    /// arithmetic, shared by the carve and share halves.
    fn carve_config(&self, g: &das_graph::Graph, dilation: u32) -> CarveConfig {
        let mut carve_cfg = CarveConfig::for_dilation(g, dilation);
        if let Some(l) = self.layers {
            carve_cfg = carve_cfg.with_num_layers(l);
        }
        carve_cfg
    }

    /// Step 1 — carving (Lemma 4.2). The carve draws from the scheduler's
    /// *own* seed, never from a plan's `sched_seed`: each node's radius
    /// and label draws are private coins that exist before any scheduling
    /// randomness is negotiated, so the clustering is the
    /// sched-seed-independent half of pre-computation. That independence
    /// is what lets a seed sweep share one carve across every plan.
    fn carve(&self, problem: &DasProblem<'_>) -> Result<Clustering, ReferenceError> {
        let g = problem.graph();
        let params = problem.parameters()?;
        let carve_cfg = self.carve_config(g, params.dilation);
        Ok(if self.distributed_precompute {
            Clustering::carve_distributed(g, &carve_cfg, self.seed)
        } else {
            Clustering::carve_centralized(g, &carve_cfg, self.seed)
        })
    }

    /// Step 2 — in-cluster randomness sharing (Lemma 4.3), drawn per
    /// `sched_seed`. Returns the per-layer shared seeds and the total
    /// pre-computation charge (carve + sharing).
    fn share(
        &self,
        problem: &DasProblem<'_>,
        clustering: &Clustering,
        sched_seed: u64,
    ) -> Result<(LayerSeeds, u64), ReferenceError> {
        let g = problem.graph();
        let n = g.node_count();
        let params = problem.parameters()?;
        let mut precompute_rounds = clustering.precompute_rounds();

        let share_cfg = ShareConfig::for_graph(g, self.carve_config(g, params.dilation).horizon);
        let chunk_seed = seed_mix(sched_seed, 0xC0FFEE);
        let chunks = das_cluster::share::center_chunks(n, share_cfg.chunks, chunk_seed);
        let mut layer_seeds: Vec<Vec<Vec<u64>>> = Vec::with_capacity(clustering.layers().len());
        for layer in clustering.layers() {
            let seeds = if self.distributed_precompute {
                let (seeds, rounds, delivered) = das_cluster::share::share_layer_distributed(
                    g,
                    layer,
                    &chunks,
                    &share_cfg,
                    seed_mix(sched_seed, 0x5A),
                );
                assert!(delivered, "sharing under-provisioned: raise the slack");
                precompute_rounds += rounds;
                seeds
            } else {
                precompute_rounds += share_cfg.rounds_needed();
                share_layer_centralized(layer, &chunks)
            };
            layer_seeds.push(seeds);
        }
        Ok((layer_seeds, precompute_rounds))
    }

    /// Steps 1–2 of the pipeline — carving (Lemma 4.2) and in-cluster
    /// randomness sharing (Lemma 4.3). Nothing here depends on a
    /// congestion guess, which is why the doubling search can charge it
    /// once; the carve half depends on the scheduler value only, which is
    /// why a seed sweep can share it (see [`PrivateScheduler::carve`]).
    fn precompute(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<Precomputed, ReferenceError> {
        let clustering = self.carve(problem)?;
        let (layer_seeds, precompute_rounds) = self.share(problem, &clustering, sched_seed)?;
        Ok((clustering, layer_seeds, precompute_rounds))
    }

    /// Steps 3–4 — size the delay law and reduce each layer's shared
    /// seeds into per-(layer, algorithm) units. Shared tail of
    /// [`Scheduler::plan`] and [`Scheduler::plan_swept`].
    fn finish_plan(
        &self,
        problem: &DasProblem<'_>,
        clustering: &Clustering,
        layer_seeds: &[Vec<Vec<u64>>],
        precompute_rounds: u64,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        let n = problem.graph().node_count();
        let params = problem.parameters()?;
        let ln_n = (n.max(2) as f64).ln();

        // 3. The delay law: Lemma 4.4's block-decay, or (ablation) the
        // "simpler solution" uniform over Theta(congestion) big-rounds.
        let num_layers = clustering.layers().len();
        let law = self.sized_delay_law(params.congestion, ln_n, num_layers, self.block_override);

        // 4. One unit per (layer, algorithm): per-cluster delays from the
        // cluster's shared seed, per-node truncation at the contained
        // radius.
        let mut units = Vec::with_capacity(num_layers * problem.k());
        for (l, layer) in clustering.layers().iter().enumerate() {
            let draws = layer_draws(problem, layer, &layer_seeds[l]);
            layer_units(
                &draws,
                &layer.contained_radius,
                law.as_ref(),
                problem.k(),
                n,
                &mut units,
            );
        }

        let phase_len = (self.phase_factor * ln_n).ceil().max(1.0) as u64;
        Ok(SchedulePlan::assemble(
            self.name(),
            sched_seed,
            phase_len,
            precompute_rounds,
            problem,
            units,
        ))
    }

    /// Step 3 — the delay law sized for `override_` (an exact first-block
    /// size in big-rounds) or, when `None`, for the measured congestion.
    /// `congestion` and `ln_n` feed only the default sizing and are
    /// ignored when `override_` is set.
    fn sized_delay_law(
        &self,
        congestion: u64,
        ln_n: f64,
        num_layers: usize,
        override_: Option<u64>,
    ) -> Box<dyn DelayLaw> {
        match self.delay_law {
            PrivateDelayLaw::BlockDecay => {
                let block_l = override_.unwrap_or_else(|| {
                    ((self.block_factor * congestion as f64) / ln_n)
                        .ceil()
                        .max(1.0) as u64
                });
                let beta = num_layers.max(2);
                let alpha = (1.0 - 1.0 / beta as f64)
                    .powi(num_layers as i32)
                    .clamp(0.2, 0.9);
                Box::new(BlockDecay::new(block_l, beta, alpha))
            }
            PrivateDelayLaw::UniformWide => {
                // spread enough that even the concentrated minimum of the
                // per-layer draws keeps per-big-round loads at O(log n):
                // range = C·(#layers)/ln n big-rounds, i.e. the simple
                // solution's Θ(C log n) span
                let range = match override_ {
                    Some(block) => block.saturating_mul(num_layers as u64).max(1),
                    None => ((self.block_factor * congestion as f64 * num_layers as f64) / ln_n)
                        .ceil()
                        .max(1.0) as u64,
                };
                Box::new(das_prg::Uniform::new(range))
            }
        }
    }

    /// The full span (in big-rounds) of the delay law sized for an exact
    /// first block of `block` over `num_layers` layers. The doubling
    /// search reports this as each attempt's `delay_span`, unifying the
    /// convention with the uniform search's prime range: both report the
    /// span the attempt's law actually draws from.
    pub fn doubling_delay_span(&self, block: u64, num_layers: usize) -> u64 {
        self.sized_delay_law(0, 1.0, num_layers, Some(block))
            .support()
    }
}

/// The raw `(r1, r2)` generator words of one layer, indexed
/// `algo · n + node`: each cluster's shared seed feeds a `Θ(log n)`-wise
/// generator over the fixed Mersenne field, so these words are the same
/// for every congestion guess — the cacheable half of step 3/4.
fn layer_draws(problem: &DasProblem<'_>, layer: &Layer, seeds: &[Vec<u64>]) -> Vec<(u64, u64)> {
    let n = problem.graph().node_count();
    // Build each cluster's generator once (every member holds the same
    // seed bytes — that is what sharing bought us).
    let mut gens: std::collections::HashMap<das_graph::NodeId, KWiseGenerator> =
        std::collections::HashMap::new();
    for &c in &layer.centers() {
        let bytes: Vec<u8> = seeds[c.index()]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        let kk = (2.0 * (n.max(2) as f64).log2()).ceil() as usize;
        gens.insert(c, KWiseGenerator::from_seed_bytes(&bytes, kk, PRG_PRIME));
    }
    let mut draws = Vec::with_capacity(problem.k() * n);
    for algo in problem.algorithms() {
        let aid = algo.aid().0;
        for v in 0..n {
            let gen = &gens[&layer.center[v]];
            draws.push((
                gen.bucket_value(aid, 0, BUCKET_WIDTH),
                gen.bucket_value(aid, 1, BUCKET_WIDTH),
            ));
        }
    }
    draws
}

/// Reduces one layer's cached raw draws into per-(algorithm) units under
/// the sized delay law.
fn layer_units(
    draws: &[(u64, u64)],
    trunc: &[u32],
    law: &dyn DelayLaw,
    k: usize,
    n: usize,
    units: &mut Vec<Unit>,
) {
    for i in 0..k {
        let delay: Vec<u64> = (0..n)
            .map(|v| {
                let (r1, r2) = draws[i * n + v];
                law.sample_from_pair(r1, r2)
            })
            .collect();
        units.push(Unit {
            algo: i,
            delay,
            stride: 1,
            trunc: trunc.to_vec(),
        });
    }
}

impl Scheduler for PrivateScheduler {
    fn name(&self) -> &'static str {
        "private"
    }

    fn default_sched_seed(&self) -> u64 {
        self.seed
    }

    fn plan(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        // 1–2. Carving (Lemma 4.2) + in-cluster sharing (Lemma 4.3).
        let (clustering, layer_seeds, precompute_rounds) = self.precompute(problem, sched_seed)?;
        // 3–4. Delay law + per-(layer, algorithm) units.
        self.finish_plan(
            problem,
            &clustering,
            &layer_seeds,
            precompute_rounds,
            sched_seed,
        )
    }

    fn build_artifact(
        &self,
        problem: &DasProblem<'_>,
        sched_seed: u64,
    ) -> Result<PlanArtifact, ReferenceError> {
        let n = problem.graph().node_count();
        let ln_n = (n.max(2) as f64).ln();
        let (clustering, layer_seeds, precompute_rounds) = self.precompute(problem, sched_seed)?;
        let trunc: Vec<Vec<u32>> = clustering
            .layers()
            .iter()
            .map(|layer| layer.contained_radius.clone())
            .collect();
        let draws: Vec<Vec<(u64, u64)>> = clustering
            .layers()
            .iter()
            .enumerate()
            .map(|(l, layer)| layer_draws(problem, layer, &layer_seeds[l]))
            .collect();
        Ok(PlanArtifact::new(
            self.name(),
            sched_seed,
            ArtifactData::Private(PrivateArtifact {
                phase_len: (self.phase_factor * ln_n).ceil().max(1.0) as u64,
                precompute_rounds,
                num_layers: clustering.layers().len(),
                trunc,
                draws,
            }),
        ))
    }

    fn size_plan(
        &self,
        problem: &DasProblem<'_>,
        artifact: &PlanArtifact,
        guess: Option<u64>,
    ) -> Result<SchedulePlan, ReferenceError> {
        artifact.expect_scheduler(self.name());
        let ArtifactData::Private(art) = &artifact.data else {
            unreachable!("private artifacts carry ArtifactData::Private")
        };
        let n = problem.graph().node_count();
        let params = problem.parameters()?;
        let ln_n = (n.max(2) as f64).ln();
        let law = self.sized_delay_law(
            params.congestion,
            ln_n,
            art.num_layers,
            guess.or(self.block_override),
        );
        let mut units = Vec::with_capacity(art.num_layers * problem.k());
        for l in 0..art.num_layers {
            layer_units(
                &art.draws[l],
                &art.trunc[l],
                law.as_ref(),
                problem.k(),
                n,
                &mut units,
            );
        }
        Ok(SchedulePlan::assemble(
            self.name(),
            artifact.sched_seed(),
            art.phase_len,
            art.precompute_rounds,
            problem,
            units,
        ))
    }

    fn build_sweep_artifact(
        &self,
        problem: &DasProblem<'_>,
    ) -> Result<SweepArtifact, ReferenceError> {
        // Only the carve is seed-independent; sharing, the chunk split,
        // and every generator draw move with the sched_seed.
        Ok(SweepArtifact::new(
            self.name(),
            SweepData::Private(PrivateSweep {
                clustering: self.carve(problem)?,
            }),
        ))
    }

    fn plan_swept(
        &self,
        problem: &DasProblem<'_>,
        artifact: &SweepArtifact,
        sched_seed: u64,
    ) -> Result<SchedulePlan, ReferenceError> {
        artifact.expect_scheduler(self.name());
        let SweepData::Private(sweep) = &artifact.data else {
            unreachable!("private sweep artifacts carry SweepData::Private")
        };
        let (layer_seeds, precompute_rounds) =
            self.share(problem, &sweep.clustering, sched_seed)?;
        self.finish_plan(
            problem,
            &sweep.clustering,
            &layer_seeds,
            precompute_rounds,
            sched_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{FloodBall, RelayChain};
    use crate::verify;
    use das_graph::{generators, NodeId};

    #[test]
    fn private_schedules_relays_correctly() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 2);
        let outcome = PrivateScheduler::default().run(&p).unwrap();
        let report = verify::against_references(&p, &outcome).unwrap();
        assert!(
            report.all_correct(),
            "mismatches {:?}, late {}",
            report.mismatches,
            outcome.stats.late_messages
        );
        assert!(outcome.precompute_rounds > 0, "pre-computation is charged");
    }

    #[test]
    fn private_schedules_floods_on_grid() {
        let g = generators::grid(5, 5);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..8)
            .map(|i| {
                Box::new(FloodBall::new(i, &g, NodeId((3 * i % 25) as u32), 4))
                    as Box<dyn crate::BlackBoxAlgorithm>
            })
            .collect();
        let p = DasProblem::new(&g, algos, 7);
        let outcome = PrivateScheduler::default().run(&p).unwrap();
        let report = verify::against_references(&p, &outcome).unwrap();
        assert!(
            report.all_correct(),
            "mismatches {:?}, late {}",
            report.mismatches,
            outcome.stats.late_messages
        );
    }

    #[test]
    fn distributed_precompute_matches_centralized() {
        let g = generators::path(10);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..3)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 4);
        let sched = PrivateScheduler::default().with_layers(4);
        let central = sched.clone().run(&p).unwrap();
        let dist = sched.with_distributed_precompute(true).run(&p).unwrap();
        assert_eq!(central.outputs, dist.outputs);
        assert_eq!(central.schedule_rounds(), dist.schedule_rounds());
        assert_eq!(central.precompute_rounds, dist.precompute_rounds);
    }

    #[test]
    fn plan_carries_precompute_layers_and_truncations() {
        let g = generators::path(12);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..4)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 2);
        let sched = PrivateScheduler::default();
        let plan = sched.plan(&p, sched.default_sched_seed()).unwrap();
        assert!(plan.precompute_rounds > 0, "pre-computation is in the plan");
        assert_eq!(
            plan.unit_count() % p.k(),
            0,
            "one unit per (layer, algorithm)"
        );
        assert!(plan.unit_count() > p.k(), "more than one layer");
        assert!(
            plan.units
                .iter()
                .any(|u| u.trunc.iter().any(|&t| t != u32::MAX)),
            "layers truncate at contained radii"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::path(9);
        let algos: Vec<Box<dyn crate::BlackBoxAlgorithm>> = (0..4)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn crate::BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 4);
        let a = PrivateScheduler::default().run(&p).unwrap();
        let b = PrivateScheduler::default().run(&p).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.schedule_rounds(), b.schedule_rounds());
    }
}
