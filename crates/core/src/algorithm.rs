//! The black-box algorithm interface (the paper's §2 execution format).

use das_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique algorithm identifier in a `poly(n)` range, used to index the
/// per-algorithm bucket of pseudo-random delay values (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Aid(pub u64);

impl fmt::Debug for Aid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for Aid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A message an algorithm asks to send to a neighbor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgoSend {
    /// Destination (must be a graph neighbor).
    pub to: NodeId,
    /// Contents (size-limited by the engine when actually transmitted).
    pub payload: Vec<u8>,
}

/// The per-node state machine of one algorithm — the paper's format:
/// *"when this algorithm is run alone, in each round each node knows what
/// to send in the next round"*, as a function of the node's input, its
/// random tape (fixed at creation), and the messages received so far.
///
/// The scheduler calls [`AlgoNode::step`] exactly `rounds()` times, in
/// order. Implementations must be deterministic: same construction + same
/// inboxes ⇒ same sends and output. The scheduler may deliver an
/// *incomplete* inbox if it has mis-scheduled — the machine cannot detect
/// this (it does not know its communication pattern a priori) and will
/// simply compute on; correctness is the scheduler's burden.
///
/// Machines are `Send` so whole executions can move to worker threads.
pub trait AlgoNode: Send {
    /// Executes one algorithm round: `inbox` holds the messages this node
    /// received from the previous round's sends. Returns this round's
    /// sends.
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend>;

    /// The node's output once all rounds have been stepped (`None` if this
    /// node produces no output for this algorithm).
    fn output(&self) -> Option<Vec<u8>>;
}

/// A black-box distributed algorithm: a factory for its per-node machines.
///
/// Factories are `Send + Sync` so a problem instance can be shared with or
/// moved across worker threads by a trial harness.
pub trait BlackBoxAlgorithm: Send + Sync {
    /// The algorithm's unique identifier.
    fn aid(&self) -> Aid;

    /// The algorithm's running time `T` when run alone (its dilation
    /// contribution). Machines are stepped exactly `T` times.
    fn rounds(&self) -> u32;

    /// Builds the machine for node `v`. `seed` fixes the node's random
    /// tape — the paper treats algorithm randomness as part of the input,
    /// sampled once before execution.
    fn create_node(&self, v: NodeId, n: usize, seed: u64) -> Box<dyn AlgoNode>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aid_formats() {
        assert_eq!(format!("{}", Aid(3)), "A3");
        assert_eq!(format!("{:?}", Aid(3)), "A3");
    }

    #[test]
    fn aid_ordering() {
        assert!(Aid(1) < Aid(2));
        assert_eq!(Aid(5), Aid(5));
    }
}
