//! The black-box algorithm interface (the paper's §2 execution format).
//!
//! The contract has two tiers. The *specification tier* is
//! [`AlgoNode::step`]: one virtual call per (algorithm, node, round),
//! exactly the paper's format. The *batched tier* is opt-in and exists
//! purely for throughput: [`AlgoNode::step_many`] delivers several
//! consecutive rounds of one machine's inboxes in a single call, and
//! [`BlackBoxAlgorithm::create_nodes`] builds a whole node-contiguous
//! [`NodeBatch`] slab at once instead of one `Box<dyn AlgoNode>` per
//! (algorithm, node). Every batched entry point has a default
//! implementation that loops the specification tier, so an algorithm
//! that only implements `step`/`create_node` keeps working unchanged —
//! and the batched engine ([`crate::EngineKind::ColumnarBatched`]) stays
//! byte-identical to the per-step engines by construction.

use das_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique algorithm identifier in a `poly(n)` range, used to index the
/// per-algorithm bucket of pseudo-random delay values (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Aid(pub u64);

impl fmt::Debug for Aid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for Aid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A message an algorithm asks to send to a neighbor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgoSend {
    /// Destination (must be a graph neighbor).
    pub to: NodeId,
    /// Contents (size-limited by the engine when actually transmitted).
    pub payload: Vec<u8>,
}

/// Several consecutive rounds' inboxes for **one** machine, in round
/// order, as handed to [`AlgoNode::step_many`].
///
/// The batching caller must already know the full inbox of every round in
/// the batch — i.e. no message that would land in one of these inboxes
/// can still be produced by a step inside the batch. The paper's format
/// makes this safe even for *mis-scheduled* (incomplete) inboxes: a
/// machine cannot detect a missing message and simply computes on, so
/// "the inboxes the caller has" is always a legal sequence to deliver.
#[derive(Clone, Copy, Debug)]
pub struct BatchedInboxes<'a> {
    rounds: &'a [Vec<(NodeId, Vec<u8>)>],
}

impl<'a> BatchedInboxes<'a> {
    /// Wraps per-round inboxes (`rounds[i]` is the inbox of the i-th
    /// batched round, in the same sorted order `step` would see).
    pub fn new(rounds: &'a [Vec<(NodeId, Vec<u8>)>]) -> Self {
        BatchedInboxes { rounds }
    }

    /// Number of rounds in the batch.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// True when the batch contains no rounds at all.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The inbox of the i-th batched round.
    pub fn inbox(&self, i: usize) -> &'a [(NodeId, Vec<u8>)] {
        &self.rounds[i]
    }
}

/// Flat, reusable send arena filled by the batched tier: payload bytes
/// live in one buffer, sends are grouped into *segments* (one segment per
/// executed step, in execution order), and nothing is allocated per send
/// once the arena has warmed up.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchedSends {
    /// One entry per send: destination, payload offset, payload length.
    meta: Vec<(NodeId, u32, u32)>,
    /// All payload bytes, back to back.
    bytes: Vec<u8>,
    /// Exclusive end index into `meta` for each closed segment.
    bounds: Vec<u32>,
}

impl BatchedSends {
    /// An empty arena.
    pub fn new() -> Self {
        BatchedSends::default()
    }

    /// Appends one send to the currently open segment.
    pub fn push(&mut self, to: NodeId, payload: &[u8]) {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(payload);
        self.meta.push((to, off, payload.len() as u32));
    }

    /// Closes the current segment (even if it received no sends). Every
    /// executed step must close exactly one segment, in execution order.
    pub fn end_segment(&mut self) {
        self.bounds.push(self.meta.len() as u32);
    }

    /// Number of closed segments.
    pub fn segments(&self) -> usize {
        self.bounds.len()
    }

    /// Total sends across all segments (open tail included).
    pub fn total_sends(&self) -> usize {
        self.meta.len()
    }

    /// Whether closed segment `i` holds no sends — a constant-time check
    /// engines use to skip validation work for send-free steps.
    pub fn segment_is_empty(&self, i: usize) -> bool {
        let start = if i == 0 { 0 } else { self.bounds[i - 1] };
        self.bounds[i] == start
    }

    /// Iterates the sends of closed segment `i` in push order.
    pub fn segment(&self, i: usize) -> impl Iterator<Item = (NodeId, &[u8])> + '_ {
        let end = self.bounds[i] as usize;
        let start = if i == 0 {
            0
        } else {
            self.bounds[i - 1] as usize
        };
        self.meta[start..end]
            .iter()
            .map(move |&(to, off, len)| (to, &self.bytes[off as usize..(off + len) as usize]))
    }

    /// Clears the arena for reuse, keeping its capacity.
    pub fn clear(&mut self) {
        self.meta.clear();
        self.bytes.clear();
        self.bounds.clear();
    }
}

/// The per-node state machine of one algorithm — the paper's format:
/// *"when this algorithm is run alone, in each round each node knows what
/// to send in the next round"*, as a function of the node's input, its
/// random tape (fixed at creation), and the messages received so far.
///
/// The scheduler calls [`AlgoNode::step`] exactly `rounds()` times, in
/// order. Implementations must be deterministic: same construction + same
/// inboxes ⇒ same sends and output. The scheduler may deliver an
/// *incomplete* inbox if it has mis-scheduled — the machine cannot detect
/// this (it does not know its communication pattern a priori) and will
/// simply compute on; correctness is the scheduler's burden.
///
/// Machines are `Send` so whole executions can move to worker threads.
pub trait AlgoNode: Send {
    /// Executes one algorithm round: `inbox` holds the messages this node
    /// received from the previous round's sends. Returns this round's
    /// sends.
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend>;

    /// Batched tier: executes the next `inboxes.rounds()` rounds in one
    /// call, returning one [`BatchedSends`] segment per round, in round
    /// order. Must be *extensionally equal* to folding [`AlgoNode::step`]
    /// over the same inboxes — the `step_many_equivalence` proptest pins
    /// this for every shipped family. A caller may only batch rounds
    /// whose complete inboxes it already holds (see [`BatchedInboxes`]).
    fn step_many(&mut self, inboxes: BatchedInboxes<'_>) -> BatchedSends {
        let mut out = BatchedSends::new();
        for i in 0..inboxes.rounds() {
            for s in self.step(inboxes.inbox(i)) {
                out.push(s.to, &s.payload);
            }
            out.end_segment();
        }
        out
    }

    /// The node's output once all rounds have been stepped (`None` if this
    /// node produces no output for this algorithm).
    fn output(&self) -> Option<Vec<u8>>;
}

/// One step of a [`NodeBatch`] inside an [`AlgoSlab::step_block`] call:
/// which slab-local machine to step, the algorithm round it is at, and
/// where its (already sorted) inbox lives in the shared inbox buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockStep {
    /// Slab-local machine index (position in the `nodes` slice the slab
    /// was created from — **not** a graph [`NodeId`]).
    pub node: u32,
    /// Algorithm round this step executes (0-based; informational — slabs
    /// track their own round counters, this must match them).
    pub round: u32,
    /// Start of this step's inbox in the shared buffer.
    pub inbox_start: u32,
    /// Length of this step's inbox.
    pub inbox_len: u32,
}

/// A node-contiguous slab of machines for one algorithm: the state of all
/// machines in one place, stepped without per-node `Box<dyn>` dispatch.
///
/// The slab is the engine-facing half of the batched tier. A whole block
/// of steps (distinct machines, one step each) dispatches as **one**
/// virtual [`AlgoSlab::step_block`] call; sends land in a flat
/// [`BatchedSends`] arena — one segment per step, in block order — so the
/// caller can validate and enqueue them in exactly the per-step engines'
/// order, which is what keeps the batched engine byte-identical.
pub trait AlgoSlab: Send {
    /// Steps machine `i` once with `inbox` and appends its sends to `out`
    /// as exactly one closed segment.
    fn step_into(&mut self, i: usize, inbox: &[(NodeId, Vec<u8>)], out: &mut BatchedSends);

    /// Executes a block of steps against the shared inbox buffer,
    /// appending exactly `steps.len()` segments to `out`, in block order.
    /// Machines within a block are distinct, so execution order cannot
    /// change any machine's state trajectory. The default loops
    /// [`AlgoSlab::step_into`] (a direct call on the concrete type).
    fn step_block(
        &mut self,
        steps: &[BlockStep],
        inbox: &[(NodeId, Vec<u8>)],
        out: &mut BatchedSends,
    ) {
        for s in steps {
            let lo = s.inbox_start as usize;
            let hi = lo + s.inbox_len as usize;
            self.step_into(s.node as usize, &inbox[lo..hi], out);
        }
    }

    /// The output of machine `i` once all its rounds have been stepped.
    fn output(&self, i: usize) -> Option<Vec<u8>>;
}

/// All machines of one algorithm over a node set, built in one pass by
/// [`BlackBoxAlgorithm::create_nodes`]: a `Box<dyn AlgoSlab>` plus its
/// machine count. One heap allocation per (algorithm, node set) instead
/// of one per (algorithm, node).
pub struct NodeBatch {
    slab: Box<dyn AlgoSlab>,
    len: usize,
}

impl NodeBatch {
    /// Wraps a slab holding `len` machines.
    pub fn new(slab: Box<dyn AlgoSlab>, len: usize) -> Self {
        NodeBatch { slab, len }
    }

    /// Wraps already-built boxed machines in the default slab — the bridge
    /// for factories that only implement a per-node constructor.
    pub fn from_boxed(machines: Vec<Box<dyn AlgoNode>>) -> Self {
        let len = machines.len();
        NodeBatch::new(Box::new(BoxedSlab { machines }), len)
    }

    /// Number of machines in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no machines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Steps machine `i` once (see [`AlgoSlab::step_into`]).
    pub fn step_into(&mut self, i: usize, inbox: &[(NodeId, Vec<u8>)], out: &mut BatchedSends) {
        self.slab.step_into(i, inbox, out);
    }

    /// Executes a block of steps as one virtual call (see
    /// [`AlgoSlab::step_block`]).
    pub fn step_block(
        &mut self,
        steps: &[BlockStep],
        inbox: &[(NodeId, Vec<u8>)],
        out: &mut BatchedSends,
    ) {
        self.slab.step_block(steps, inbox, out);
    }

    /// The output of machine `i`.
    pub fn output(&self, i: usize) -> Option<Vec<u8>> {
        self.slab.output(i)
    }
}

/// The default slab: one boxed [`AlgoNode`] per machine, stepped through
/// the specification tier. Used by algorithms that don't override
/// [`BlackBoxAlgorithm::create_nodes`].
struct BoxedSlab {
    machines: Vec<Box<dyn AlgoNode>>,
}

impl AlgoSlab for BoxedSlab {
    fn step_into(&mut self, i: usize, inbox: &[(NodeId, Vec<u8>)], out: &mut BatchedSends) {
        for s in self.machines[i].step(inbox) {
            out.push(s.to, &s.payload);
        }
        out.end_segment();
    }

    fn output(&self, i: usize) -> Option<Vec<u8>> {
        self.machines[i].output()
    }
}

/// A black-box distributed algorithm: a factory for its per-node machines.
///
/// Factories are `Send + Sync` so a problem instance can be shared with or
/// moved across worker threads by a trial harness.
pub trait BlackBoxAlgorithm: Send + Sync {
    /// The algorithm's unique identifier.
    fn aid(&self) -> Aid;

    /// The algorithm's running time `T` when run alone (its dilation
    /// contribution). Machines are stepped exactly `T` times.
    fn rounds(&self) -> u32;

    /// Builds the machine for node `v`. `seed` fixes the node's random
    /// tape — the paper treats algorithm randomness as part of the input,
    /// sampled once before execution.
    fn create_node(&self, v: NodeId, n: usize, seed: u64) -> Box<dyn AlgoNode>;

    /// Batched tier: builds the machines for all of `nodes` at once, with
    /// `seeds[i]` the random tape of `nodes[i]` (the caller derives seeds
    /// exactly as it would for [`BlackBoxAlgorithm::create_node`]). Slab
    /// machine `i` must behave identically to
    /// `create_node(nodes[i], n, seeds[i])`. The default wraps a
    /// `create_node` loop; families override it to build contiguous state
    /// in one pass.
    fn create_nodes(&self, nodes: &[NodeId], n: usize, seeds: &[u64]) -> NodeBatch {
        assert_eq!(nodes.len(), seeds.len(), "one seed per node");
        NodeBatch::from_boxed(
            nodes
                .iter()
                .zip(seeds)
                .map(|(&v, &s)| self.create_node(v, n, s))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aid_formats() {
        assert_eq!(format!("{}", Aid(3)), "A3");
        assert_eq!(format!("{:?}", Aid(3)), "A3");
    }

    #[test]
    fn aid_ordering() {
        assert!(Aid(1) < Aid(2));
        assert_eq!(Aid(5), Aid(5));
    }

    #[test]
    fn batched_sends_segments_round_trip() {
        let mut out = BatchedSends::new();
        out.push(NodeId(1), &[1, 2, 3]);
        out.push(NodeId(2), &[]);
        out.end_segment();
        out.end_segment(); // empty segment
        out.push(NodeId(3), &[9]);
        out.end_segment();
        assert_eq!(out.segments(), 3);
        assert_eq!(out.total_sends(), 3);
        let s0: Vec<_> = out.segment(0).collect();
        assert_eq!(
            s0,
            vec![(NodeId(1), &[1u8, 2, 3][..]), (NodeId(2), &[][..])]
        );
        assert_eq!(out.segment(1).count(), 0);
        let s2: Vec<_> = out.segment(2).collect();
        assert_eq!(s2, vec![(NodeId(3), &[9u8][..])]);
        out.clear();
        assert_eq!(out.segments(), 0);
        assert_eq!(out.total_sends(), 0);
    }

    /// A counter machine: sends its running inbox total to node 0 each
    /// round. Exercises the default `step_many` path.
    struct Counting {
        total: u64,
    }

    impl AlgoNode for Counting {
        fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
            self.total += inbox.len() as u64;
            vec![AlgoSend {
                to: NodeId(0),
                payload: self.total.to_le_bytes().to_vec(),
            }]
        }

        fn output(&self) -> Option<Vec<u8>> {
            Some(self.total.to_le_bytes().to_vec())
        }
    }

    #[test]
    fn default_step_many_is_the_fold_of_step() {
        let inboxes: Vec<Vec<(NodeId, Vec<u8>)>> = vec![
            vec![(NodeId(1), vec![7]), (NodeId(2), vec![8])],
            vec![],
            vec![(NodeId(3), vec![9])],
        ];
        let mut batched = Counting { total: 0 };
        let out = batched.step_many(BatchedInboxes::new(&inboxes));
        assert_eq!(out.segments(), 3);

        let mut stepped = Counting { total: 0 };
        for (i, inbox) in inboxes.iter().enumerate() {
            let sends = stepped.step(inbox);
            let seg: Vec<_> = out.segment(i).map(|(to, p)| (to, p.to_vec())).collect();
            let expect: Vec<_> = sends.into_iter().map(|s| (s.to, s.payload)).collect();
            assert_eq!(seg, expect, "round {i}");
        }
        assert_eq!(batched.output(), stepped.output());
    }
}
