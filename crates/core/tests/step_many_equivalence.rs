//! The two-tier black-box contract, proven at the trait boundary:
//!
//! 1. [`AlgoNode::step_many`] over any inbox sequence must equal the fold
//!    of [`AlgoNode::step`] over the same sequence — segment for segment,
//!    byte for byte, and in the final output.
//! 2. A slab built by [`BlackBoxAlgorithm::create_nodes`] must be
//!    machine-for-machine indistinguishable from the per-node boxed
//!    machines of `create_node`, both through `step_into` (one machine at
//!    a time) and through `step_block` (the engine's node-block dispatch),
//!    even when nodes are skipped in some rounds (truncation).
//!
//! Inbox sequences are adversarial in exactly the ways the paper's
//! scheduler produces them: empty rounds, mis-scheduled/truncated subsets
//! of the neighbors (machines cannot detect incompleteness), and
//! max-size payloads.

use das_congest::util::seed_mix;
use das_core::synthetic::{FloodBall, Prescribed, RelayChain};
use das_core::{
    Aid, AlgoNode, AlgoSend, BatchedInboxes, BatchedSends, BlackBoxAlgorithm, BlockStep,
};
use das_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The engine's CONGEST payload cap (`ExecutorConfig::message_bytes`
/// default) — the "max-size payload" adversarial case.
const MAX_PAYLOAD: usize = 40;

/// A mixed pool of families on `g`: every vectorized slab override
/// (relay CSR, prescribed binary-search, flood SoA) plus a family with no
/// overrides at all, exercising the default `create_nodes` /
/// `step_many` / `step_block` paths.
fn build_algos(g: &Graph, seed: u64) -> Vec<Box<dyn BlackBoxAlgorithm>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    let triples: Vec<(u32, NodeId, NodeId)> = (0..6)
        .map(|_| {
            let e = das_graph::EdgeId(rng.gen_range(0..m));
            let (a, b) = g.endpoints(e);
            let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
            (rng.gen_range(0..5u32), from, to)
        })
        .collect();
    let mut route = vec![NodeId(rng.gen_range(0..n))];
    for _ in 0..5 {
        let cur = *route.last().expect("non-empty");
        let nbrs = g.neighbors(cur);
        let (next, _) = nbrs[rng.gen_range(0..nbrs.len())];
        route.push(next);
    }
    vec![
        Box::new(RelayChain::along(0, g, route)),
        Box::new(Prescribed::new(1, g, &triples)),
        Box::new(FloodBall::new(2, g, NodeId(rng.gen_range(0..n)), 3)),
        Box::new(Echo::new(3, g, 4)),
    ]
}

/// A deliberately override-free family: state-folding neighbor echo whose
/// slab is the default boxed one, so these properties cover the default
/// trait implementations too.
struct Echo {
    aid: Aid,
    rounds: u32,
    neighbors: Vec<Vec<NodeId>>,
}

impl Echo {
    fn new(aid: u64, g: &Graph, rounds: u32) -> Self {
        Echo {
            aid: Aid(aid),
            rounds,
            neighbors: g
                .nodes()
                .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
                .collect(),
        }
    }
}

struct EchoNode {
    neighbors: Vec<NodeId>,
    state: u64,
    round: u32,
    rounds: u32,
}

impl BlackBoxAlgorithm for Echo {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        Box::new(EchoNode {
            neighbors: self.neighbors[v.index()].clone(),
            state: seed_mix(seed, self.aid.0),
            round: 0,
            rounds: self.rounds,
        })
    }
}

impl AlgoNode for EchoNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (from, payload) in inbox {
            let token = u64::from_le_bytes(payload[..8].try_into().expect("8-byte token"));
            self.state = seed_mix(self.state, seed_mix(token, u64::from(from.0)));
        }
        let mut out = Vec::new();
        if self.round + 1 < self.rounds {
            for &u in &self.neighbors {
                out.push(AlgoSend {
                    to: u,
                    payload: seed_mix(self.state, u64::from(self.round))
                        .to_le_bytes()
                        .to_vec(),
                });
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.state.to_le_bytes().to_vec())
    }
}

/// A random adversarial inbox sequence for node `v`: each round an
/// arbitrary (possibly empty) subset of the neighbors — exactly how a
/// mis-scheduled executor truncates deliveries — with 8-byte tokens or
/// max-size payloads.
fn random_rounds(g: &Graph, v: NodeId, t: u32, rng: &mut StdRng) -> Vec<Vec<(NodeId, Vec<u8>)>> {
    (0..t)
        .map(|_| {
            let mut inbox: Vec<(NodeId, Vec<u8>)> = Vec::new();
            for &(u, _) in g.neighbors(v) {
                if !rng.gen_bool(0.5) {
                    continue;
                }
                let len = if rng.gen_bool(0.25) { MAX_PAYLOAD } else { 8 };
                let p: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
                inbox.push((u, p));
            }
            // canonical (sorted) order, as the executor delivers
            inbox.sort();
            inbox
        })
        .collect()
}

/// The spec fold: step round by round, collecting each round's sends as
/// one segment, plus the final output.
type Segments = Vec<Vec<(NodeId, Vec<u8>)>>;

fn fold_of_step(
    m: &mut dyn AlgoNode,
    rounds: &[Vec<(NodeId, Vec<u8>)>],
) -> (Segments, Option<Vec<u8>>) {
    let segs = rounds
        .iter()
        .map(|inbox| {
            m.step(inbox)
                .into_iter()
                .map(|s| (s.to, s.payload))
                .collect()
        })
        .collect();
    (segs, m.output())
}

fn segments_of(b: &BatchedSends) -> Segments {
    (0..b.segments())
        .map(|i| b.segment(i).map(|(to, p)| (to, p.to_vec())).collect())
        .collect()
}

/// `step_many` ≡ fold of `step`, and the slab's `step_into` ≡ the boxed
/// machine's `step`, per node, on the same adversarial inbox sequence.
fn assert_step_many_is_fold(g: &Graph, algo: &dyn BlackBoxAlgorithm, seed: u64, ws: u64) {
    let n = g.node_count();
    let nodes: Vec<NodeId> = (0..n).map(|v| NodeId(v as u32)).collect();
    let seeds: Vec<u64> = (0..n).map(|v| seed_mix(seed, v as u64)).collect();
    let t = algo.rounds();
    let mut slab = algo.create_nodes(&nodes, n, &seeds);
    let mut sends = BatchedSends::new();
    for (v, &node_seed) in seeds.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed_mix(ws, v as u64));
        let rounds = random_rounds(g, NodeId(v as u32), t, &mut rng);
        let mut spec = algo.create_node(NodeId(v as u32), n, node_seed);
        let (expect, expect_out) = fold_of_step(spec.as_mut(), &rounds);

        // tier 1: the multi-round batched entry point
        let mut many = algo.create_node(NodeId(v as u32), n, node_seed);
        let batched = many.step_many(BatchedInboxes::new(&rounds));
        assert_eq!(
            segments_of(&batched),
            expect,
            "aid {:?} node {v}: step_many diverged from the fold of step",
            algo.aid()
        );
        assert_eq!(
            many.output(),
            expect_out,
            "aid {:?} node {v}: output after step_many diverged",
            algo.aid()
        );

        // tier 2: the slab, one machine at a time
        for (r, inbox) in rounds.iter().enumerate() {
            sends.clear();
            slab.step_into(v, inbox, &mut sends);
            assert_eq!(
                segments_of(&sends),
                vec![expect[r].clone()],
                "aid {:?} node {v} round {r}: slab step_into diverged",
                algo.aid()
            );
        }
        assert_eq!(
            slab.output(v),
            expect_out,
            "aid {:?} node {v}: slab output diverged",
            algo.aid()
        );
    }
}

/// `step_block` over a whole node block ≡ per-node `step`, with random
/// per-round truncation (skipped nodes), empty inboxes, and max-size
/// payloads.
fn assert_step_block_matches_per_node(g: &Graph, algo: &dyn BlackBoxAlgorithm, seed: u64, ws: u64) {
    let n = g.node_count();
    let nodes: Vec<NodeId> = (0..n).map(|v| NodeId(v as u32)).collect();
    let seeds: Vec<u64> = (0..n).map(|v| seed_mix(seed, v as u64)).collect();
    let mut slab = algo.create_nodes(&nodes, n, &seeds);
    let mut spec: Vec<Box<dyn AlgoNode>> = (0..n)
        .map(|v| algo.create_node(NodeId(v as u32), n, seeds[v]))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed_mix(ws, 0xB10C));
    let mut rounds_done = vec![0u32; n];
    let mut sends = BatchedSends::new();
    for _ in 0..algo.rounds() {
        // mis-scheduled truncation: only a subset of nodes steps this round
        let stepping: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.8)).collect();
        let mut flat: Vec<(NodeId, Vec<u8>)> = Vec::new();
        let mut steps: Vec<BlockStep> = Vec::new();
        let mut inboxes: Vec<Vec<(NodeId, Vec<u8>)>> = Vec::new();
        for &v in &stepping {
            let mut inbox = random_rounds(g, NodeId(v as u32), 1, &mut rng).remove(0);
            let start = flat.len() as u32;
            flat.extend(inbox.iter().cloned());
            steps.push(BlockStep {
                node: v as u32,
                round: rounds_done[v],
                inbox_start: start,
                inbox_len: inbox.len() as u32,
            });
            rounds_done[v] += 1;
            inboxes.push(std::mem::take(&mut inbox));
        }
        sends.clear();
        slab.step_block(&steps, &flat, &mut sends);
        assert_eq!(
            sends.segments(),
            steps.len(),
            "aid {:?}: step_block must emit one segment per block step",
            algo.aid()
        );
        for (si, &v) in stepping.iter().enumerate() {
            let expect: Vec<(NodeId, Vec<u8>)> = spec[v]
                .step(&inboxes[si])
                .into_iter()
                .map(|s| (s.to, s.payload))
                .collect();
            let got: Vec<(NodeId, Vec<u8>)> =
                sends.segment(si).map(|(to, p)| (to, p.to_vec())).collect();
            assert_eq!(
                got,
                expect,
                "aid {:?} node {v}: step_block segment diverged from step",
                algo.aid()
            );
        }
    }
    for (v, machine) in spec.iter().enumerate() {
        assert_eq!(
            slab.output(v),
            machine.output(),
            "aid {:?} node {v}: outputs diverged after blocked stepping",
            algo.aid()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `step_many` is the fold of `step`, and slabs match boxed machines
    /// through `step_into`, for every family on random connected graphs.
    #[test]
    fn step_many_equals_fold_of_step(gs in 0u64..200, ws in 0u64..200) {
        let g = generators::gnp_connected(10, 3.0 / 10.0, gs);
        for algo in build_algos(&g, gs) {
            assert_step_many_is_fold(&g, algo.as_ref(), gs.wrapping_add(11), ws);
        }
    }

    /// Node-block dispatch (`step_block`) matches per-node `step` under
    /// random truncation, for every family.
    #[test]
    fn step_block_equals_per_node_step(gs in 0u64..200, ws in 0u64..200) {
        let g = generators::gnp_connected(10, 3.0 / 10.0, gs);
        for algo in build_algos(&g, gs) {
            assert_step_block_matches_per_node(&g, algo.as_ref(), gs.wrapping_add(13), ws);
        }
    }
}

/// The all-empty sequence: a machine that never hears anything must batch
/// identically to the fold — the degenerate mis-scheduling case.
#[test]
fn step_many_on_all_empty_inboxes() {
    let g = generators::path(7);
    for algo in build_algos(&g, 3) {
        let t = algo.rounds();
        let empties: Vec<Vec<(NodeId, Vec<u8>)>> = vec![Vec::new(); t as usize];
        for v in 0..g.node_count() {
            let s = seed_mix(5, v as u64);
            let mut spec = algo.create_node(NodeId(v as u32), g.node_count(), s);
            let (expect, expect_out) = fold_of_step(spec.as_mut(), &empties);
            let mut many = algo.create_node(NodeId(v as u32), g.node_count(), s);
            let batched = many.step_many(BatchedInboxes::new(&empties));
            assert_eq!(segments_of(&batched), expect);
            assert_eq!(many.output(), expect_out);
        }
    }
}
