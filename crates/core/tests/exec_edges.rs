//! Executor edge cases: degenerate plans, tiny algorithms, and stat
//! bookkeeping corners.

use das_core::synthetic::Prescribed;
use das_core::{BlackBoxAlgorithm, DasProblem, Executor, ExecutorConfig, StepPlan, Unit};
use das_graph::{generators, NodeId};

fn one_hop(g: &das_graph::Graph) -> Box<dyn BlackBoxAlgorithm> {
    Box::new(Prescribed::new(0, g, &[(0, NodeId(0), NodeId(1))]))
}

#[test]
fn single_message_algorithm_executes() {
    let g = generators::path(2);
    let p = DasProblem::new(&g, vec![one_hop(&g)], 1);
    let units = vec![Unit::global(0, 0, 2)];
    let outcome = Executor::run(
        &g,
        p.algorithms(),
        &[p.algo_seed(0)],
        &units,
        &ExecutorConfig::default(),
    )
    .unwrap();
    assert_eq!(outcome.stats.delivered, 1);
    assert_eq!(outcome.stats.late_messages, 0);
    assert_eq!(outcome.outputs[0], p.references().unwrap()[0].outputs);
}

#[test]
fn fully_truncated_unit_executes_nothing() {
    let g = generators::path(2);
    let p = DasProblem::new(&g, vec![one_hop(&g)], 1);
    let units = vec![Unit {
        algo: 0,
        delay: vec![0; 2],
        stride: 1,
        trunc: vec![0; 2],
    }];
    let outcome = Executor::run(
        &g,
        p.algorithms(),
        &[p.algo_seed(0)],
        &units,
        &ExecutorConfig::default(),
    )
    .unwrap();
    assert_eq!(outcome.stats.delivered, 0);
    // machines never stepped: outputs are the initial states, not the
    // reference — visible, not silent
    assert_ne!(outcome.outputs[0], p.references().unwrap()[0].outputs);
}

#[test]
fn step_plan_reports_earliest_of_overlapping_units() {
    let g = generators::path(3);
    let p = DasProblem::new(&g, vec![one_hop(&g)], 1);
    let units = vec![
        Unit::global(0, 7, 3),
        Unit {
            algo: 0,
            delay: vec![2, 9, 9],
            stride: 1,
            trunc: vec![u32::MAX; 3],
        },
    ];
    let plan = StepPlan::build(&g, p.algorithms(), &units);
    // node 0: min(7, 2) = 2; node 1: min(7, 9) = 7
    assert_eq!(plan.steps(0, NodeId(0))[0], 2);
    assert_eq!(plan.steps(0, NodeId(1))[0], 7);
    assert_eq!(plan.last_big_round(), Some(7 + 1)); // round 1 at node 1: 8
}

#[test]
fn huge_phase_len_still_counts_rounds_correctly() {
    let g = generators::path(2);
    let p = DasProblem::new(&g, vec![one_hop(&g)], 1);
    let units = vec![Unit::global(0, 0, 2)];
    let outcome = Executor::run(
        &g,
        p.algorithms(),
        &[p.algo_seed(0)],
        &units,
        &ExecutorConfig::default().with_phase_len(100),
    )
    .unwrap();
    // 2 algo rounds * 100 rounds per big-round
    assert_eq!(outcome.schedule_rounds(), 200);
    assert_eq!(outcome.stats.phase_len, 100);
}

#[test]
fn departures_can_be_disabled() {
    let g = generators::path(2);
    let p = DasProblem::new(&g, vec![one_hop(&g)], 1);
    let units = vec![Unit::global(0, 0, 2)];
    let outcome = Executor::run(
        &g,
        p.algorithms(),
        &[p.algo_seed(0)],
        &units,
        &ExecutorConfig::default().with_record_departures(false),
    )
    .unwrap();
    assert!(outcome.departures.is_none());
}
