//! The tentpole byte-identity property, extended over the wire: a
//! coordinator plus N workers talking framed TCP on localhost must produce
//! the *byte-identical* `ScheduleOutcome` of the fused executor and the
//! in-process sharded executor, for every scheduler, on both graph
//! families, at 1 and 3 workers.
//!
//! A pinned-seed matrix (rather than proptest) keeps the socket churn
//! bounded; the seeds sweep both graph randomness and workload randomness.

use das_core::synthetic::{FloodBall, Prescribed, RelayChain};
use das_core::{
    execute_plan, execute_plan_networked, execute_plan_sharded, run_worker, BlackBoxAlgorithm,
    DasProblem, InterleaveScheduler, NetConfig, PrivateScheduler, Scheduler, SequentialScheduler,
    TunedUniformScheduler, UniformScheduler,
};
use das_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;

const WORKER_COUNTS: [usize; 2] = [1, 3];

/// A random mixed workload (prescribed / flood / relay) on `g` — the same
/// generator the sharded-equivalence property uses.
fn build_algos(g: &Graph, k: usize, seed: u64) -> Vec<Box<dyn BlackBoxAlgorithm>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    (0..k as u64)
        .map(|i| match i % 3 {
            0 => {
                let triples: Vec<(u32, NodeId, NodeId)> = (0..4)
                    .map(|_| {
                        let e = das_graph::EdgeId(rng.gen_range(0..m));
                        let (a, b) = g.endpoints(e);
                        let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                        (rng.gen_range(0..5u32), from, to)
                    })
                    .collect();
                Box::new(Prescribed::new(i, g, &triples)) as Box<dyn BlackBoxAlgorithm>
            }
            1 => Box::new(FloodBall::new(i, g, NodeId(rng.gen_range(0..n)), 3)),
            _ => {
                let mut route = vec![NodeId(rng.gen_range(0..n))];
                for _ in 0..4 {
                    let cur = *route.last().expect("non-empty");
                    let nbrs = g.neighbors(cur);
                    let (next, _) = nbrs[rng.gen_range(0..nbrs.len())];
                    route.push(next);
                }
                Box::new(RelayChain::along(i, g, route))
            }
        })
        .collect()
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SequentialScheduler),
        Box::new(InterleaveScheduler),
        Box::new(UniformScheduler::default()),
        Box::new(TunedUniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ]
}

/// Runs the plan over localhost TCP: a coordinator thread (this one) plus
/// `workers` worker threads sharing the same in-memory problem, exactly as
/// separate processes would rebuild it from identical flags.
fn run_networked(
    p: &DasProblem<'_>,
    plan: &das_core::SchedulePlan,
    workers: usize,
) -> (das_core::ScheduleOutcome, das_core::NetReport) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr").to_string();
    let net = NetConfig::default().with_io_timeout_ms(20_000);
    std::thread::scope(|scope| {
        let effective = workers.min(p.graph().node_count());
        let mut handles = Vec::new();
        for _ in 0..effective {
            let addr = addr.clone();
            let net = net.clone();
            handles.push(scope.spawn(move || run_worker(p, &addr, &net)));
        }
        let result =
            execute_plan_networked(p, plan, workers, listener, &net).expect("networked execution");
        for h in handles {
            h.join().expect("worker thread").expect("worker outcome");
        }
        result
    })
}

/// Zeroes the wall-clock fields of a shard report so the deterministic
/// remainder can be compared byte-for-byte.
fn strip_timings(report: &das_core::ShardReport) -> das_core::ShardReport {
    let mut r = report.clone();
    for s in &mut r.per_shard {
        s.step_nanos = 0;
        s.drain_nanos = 0;
    }
    r
}

/// Asserts fused == in-process sharded == networked bytes for every
/// scheduler and worker count on the given graph.
fn assert_networked_equivalent(g: &Graph, k: usize, seed: u64) {
    let p = DasProblem::new(g, build_algos(g, k, seed), seed);
    for sched in all_schedulers() {
        let plan = sched.plan(&p, seed).expect("model-valid workload");
        let fused = execute_plan(&p, &plan).expect("fused execution");
        let fused_bytes = format!("{fused:?}");
        for workers in WORKER_COUNTS {
            let (sharded, shard_report) =
                execute_plan_sharded(&p, &plan, workers).expect("sharded execution");
            assert_eq!(
                fused_bytes,
                format!("{sharded:?}"),
                "scheduler {}: in-process sharded diverged at {workers} shards",
                sched.name()
            );
            let (networked, net_report) = run_networked(&p, &plan, workers);
            assert_eq!(
                fused_bytes,
                format!("{networked:?}"),
                "scheduler {}: networked diverged at {workers} workers",
                sched.name()
            );
            // The partition-dependent shard report must also agree with the
            // in-process sharded run (modulo wall-clock timings): same
            // partition, same protocol.
            assert_eq!(
                format!("{:?}", strip_timings(&shard_report)),
                format!("{:?}", strip_timings(&net_report.shard)),
                "scheduler {}: networked shard report diverged at {workers} workers",
                sched.name()
            );
            assert_eq!(net_report.traffic.len(), shard_report.shards);
            for t in &net_report.traffic {
                assert!(t.frames_sent > 0 && t.frames_received > 0);
            }
        }
    }
}

#[test]
fn networked_matches_fused_on_gnp() {
    for seed in [1u64, 17, 131] {
        let g = generators::gnp_connected(12, 2.5 / 12.0, seed);
        assert_networked_equivalent(&g, 3, seed.wrapping_mul(0x9e37_79b9));
    }
}

#[test]
fn networked_matches_fused_on_layered() {
    let g = generators::layered(4, 3);
    for seed in [2u64, 23, 271] {
        assert_networked_equivalent(&g, 3, seed);
    }
}

/// More workers than nodes: the coordinator clamps to the node count (the
/// partition's own clamp) and only accepts that many connections; the
/// outcome is still byte-identical.
#[test]
fn networked_clamps_workers_to_node_count() {
    let g = generators::layered(2, 2);
    let p = DasProblem::new(&g, build_algos(&g, 2, 5), 5);
    let plan = SequentialScheduler.plan(&p, 5).expect("plan");
    let fused = execute_plan(&p, &plan).expect("fused");
    let n = g.node_count();
    let (networked, report) = run_networked(&p, &plan, n + 10);
    assert_eq!(format!("{fused:?}"), format!("{networked:?}"));
    assert_eq!(report.shard.shards, n);
}
