//! Property-based neutrality of the plan-artifact split: sizing a plan
//! from a cached, guess-independent [`das_core::PlanArtifact`] must be
//! **byte-identical** (canonical JSON) to running the scheduler's full
//! `plan()` with the corresponding override — for every scheduler, graph,
//! workload, and congestion guess. The doubling searches ride on this
//! split, so the file also checks that a search with the artifact cache on
//! reports exactly what the replan-from-scratch path reports.

use das_core::synthetic::{FloodBall, Prescribed, RelayChain};
use das_core::{
    doubling, BlackBoxAlgorithm, DasProblem, DoublingConfig, DoublingOutcome, InterleaveScheduler,
    PrivateScheduler, Scheduler, SequentialScheduler, TunedUniformScheduler, UniformScheduler,
};
use das_graph::{generators, Graph, NodeId};
use das_obs::ObsConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Congestion guesses the override sweep tries: small spans around the
/// doubling search's early attempts (including 5, a prime the uniform
/// artifact may have cached draws for) and one far past the default.
const GUESSES: [u64; 4] = [2, 5, 8, 64];

/// A random mixed workload (prescribed / flood / relay) on `g` — the same
/// generator the shard-equivalence property uses.
fn build_algos(g: &Graph, k: usize, seed: u64) -> Vec<Box<dyn BlackBoxAlgorithm>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    (0..k as u64)
        .map(|i| match i % 3 {
            0 => {
                let triples: Vec<(u32, NodeId, NodeId)> = (0..4)
                    .map(|_| {
                        let e = das_graph::EdgeId(rng.gen_range(0..m));
                        let (a, b) = g.endpoints(e);
                        let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                        (rng.gen_range(0..5u32), from, to)
                    })
                    .collect();
                Box::new(Prescribed::new(i, g, &triples)) as Box<dyn BlackBoxAlgorithm>
            }
            1 => Box::new(FloodBall::new(i, g, NodeId(rng.gen_range(0..n)), 3)),
            _ => {
                let mut route = vec![NodeId(rng.gen_range(0..n))];
                for _ in 0..4 {
                    let cur = *route.last().expect("non-empty");
                    let nbrs = g.neighbors(cur);
                    let (next, _) = nbrs[rng.gen_range(0..nbrs.len())];
                    route.push(next);
                }
                Box::new(RelayChain::along(i, g, route))
            }
        })
        .collect()
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SequentialScheduler),
        Box::new(InterleaveScheduler),
        Box::new(UniformScheduler::default()),
        Box::new(TunedUniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ]
}

/// Asserts `size_plan(build_artifact(..), ..)` == `plan()` bytes for every
/// scheduler at the default sizing, and for the two guess-sized schedulers
/// across the override sweep.
fn assert_sizing_matches_scratch(g: &Graph, k: usize, seed: u64) {
    let p = DasProblem::new(g, build_algos(g, k, seed), seed);
    for sched in all_schedulers() {
        let scratch = sched.plan(&p, seed).expect("model-valid workload");
        let artifact = sched.build_artifact(&p, seed).expect("artifact build");
        let sized = sched
            .size_plan(&p, &artifact, None)
            .expect("default sizing");
        assert_eq!(
            scratch.to_json(),
            sized.to_json(),
            "scheduler {} default sizing diverged from plan()",
            sched.name()
        );
    }
    // guess overrides: sizing the cached artifact for `guess` must equal a
    // from-scratch plan with the override baked into the scheduler
    let uni = UniformScheduler::default();
    let uni_art = uni.build_artifact(&p, seed).expect("uniform artifact");
    let prv = PrivateScheduler::default();
    let prv_art = prv.build_artifact(&p, seed).expect("private artifact");
    for guess in GUESSES {
        let mut u = uni.clone();
        u.delay_range = Some(guess);
        assert_eq!(
            u.plan(&p, seed).expect("uniform plan").to_json(),
            uni.size_plan(&p, &uni_art, Some(guess))
                .expect("uniform sizing")
                .to_json(),
            "uniform sizing diverged at guess {guess}"
        );
        let mut pr = prv.clone();
        pr.block_override = Some(guess);
        assert_eq!(
            pr.plan(&p, seed).expect("private plan").to_json(),
            prv.size_plan(&p, &prv_art, Some(guess))
                .expect("private sizing")
                .to_json(),
            "private sizing diverged at guess {guess}"
        );
    }
}

/// Asserts `plan_swept(build_sweep_artifact(..), s)` == `plan(.., s)` bytes
/// for every scheduler across a spread of sched-seeds — one artifact, many
/// seeds, zero byte drift (the seed-sweep half of the cache contract).
fn assert_sweep_matches_scratch(g: &Graph, k: usize, seed: u64) {
    let p = DasProblem::new(g, build_algos(g, k, seed), seed);
    let sweep_seeds = [
        seed,
        seed ^ 0x5EED,
        seed.wrapping_mul(31).wrapping_add(7),
        0,
        u64::MAX,
    ];
    for sched in all_schedulers() {
        let artifact = sched.build_sweep_artifact(&p).expect("sweep artifact");
        assert!(
            artifact.shares_planning(),
            "all built-in schedulers share planning work across a sweep"
        );
        for &s in &sweep_seeds {
            let scratch = sched.plan(&p, s).expect("model-valid workload");
            let swept = sched.plan_swept(&p, &artifact, s).expect("swept plan");
            assert_eq!(
                scratch.to_json(),
                swept.to_json(),
                "scheduler {} sweep-derived plan diverged at sched_seed {s}",
                sched.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Artifact sizing is byte-identical to from-scratch planning on
    /// random connected G(n, p) graphs.
    #[test]
    fn sizing_matches_scratch_on_gnp(gs in 0u64..200, ws in 0u64..200, k in 1usize..5) {
        let g = generators::gnp_connected(12, 2.5 / 12.0, gs);
        assert_sizing_matches_scratch(&g, k, ws);
    }

    /// Same property on layered graphs (skewed degrees stress the private
    /// scheduler's carve differently).
    #[test]
    fn sizing_matches_scratch_on_layered(ws in 0u64..400, k in 1usize..5) {
        let g = generators::layered(4, 3);
        assert_sizing_matches_scratch(&g, k, ws);
    }

    /// One sweep artifact serves every sched-seed byte-identically on
    /// random connected G(n, p) graphs.
    #[test]
    fn sweep_matches_scratch_on_gnp(gs in 0u64..200, ws in 0u64..200, k in 1usize..5) {
        let g = generators::gnp_connected(12, 2.5 / 12.0, gs);
        assert_sweep_matches_scratch(&g, k, ws);
    }

    /// Same sweep property on layered graphs.
    #[test]
    fn sweep_matches_scratch_on_layered(ws in 0u64..400, k in 1usize..5) {
        let g = generators::layered(4, 3);
        assert_sweep_matches_scratch(&g, k, ws);
    }
}

/// The sweep split survives the private scheduler's honest distributed
/// pre-computation (per-seed sharing re-runs the engine protocols) and its
/// sizing overrides / ablation law.
#[test]
fn sweep_covers_distributed_precompute_and_overrides() {
    let g = generators::path(10);
    let p = congested_problem(&g);
    let variants = vec![
        PrivateScheduler::default().with_distributed_precompute(true),
        PrivateScheduler {
            block_override: Some(3),
            ..PrivateScheduler::default()
        },
        PrivateScheduler::default().with_delay_law(das_core::PrivateDelayLaw::UniformWide),
        PrivateScheduler::default().with_layers(4).with_seed(0xFEED),
    ];
    for sched in variants {
        let artifact = sched.build_sweep_artifact(&p).expect("sweep artifact");
        for s in [sched.default_sched_seed(), 1, 0xBEEF] {
            assert_eq!(
                sched.plan(&p, s).expect("plan").to_json(),
                sched
                    .plan_swept(&p, &artifact, s)
                    .expect("swept plan")
                    .to_json(),
                "private variant {sched:?} diverged at sched_seed {s}"
            );
        }
    }
}

/// Asserts two doubling searches reported the same thing, ignoring only
/// the [`das_core::PlanCacheStats`] accounting (which is *supposed* to
/// differ between cache-on and cache-off).
fn assert_same_search(on: &DoublingOutcome, off: &DoublingOutcome, ctx: &str) {
    assert_eq!(
        format!("{:?}", on.outcome),
        format!("{:?}", off.outcome),
        "{ctx}: the final schedule must be byte-identical"
    );
    assert_eq!(on.final_guess, off.final_guess, "{ctx}");
    assert_eq!(on.attempts, off.attempts, "{ctx}");
    assert_eq!(on.rejected_by_precheck, off.rejected_by_precheck, "{ctx}");
    assert_eq!(on.wasted_rounds, off.wasted_rounds, "{ctx}");
    assert_eq!(on.attempted_ranges, off.attempted_ranges, "{ctx}");
    assert_eq!(on.fell_back, off.fell_back, "{ctx}");
}

/// A path instance congested enough to force several doubling attempts.
fn congested_problem(g: &Graph) -> DasProblem<'_> {
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..16)
        .map(|i| Box::new(RelayChain::new(i, g)) as Box<dyn BlackBoxAlgorithm>)
        .collect();
    DasProblem::new(g, algos, 3)
}

#[test]
fn doubling_with_cache_matches_doubling_without() {
    let g = generators::path(12);
    let p = congested_problem(&g);
    let on_cfg = DoublingConfig::default();
    let off_cfg = DoublingConfig {
        reuse_artifact: false,
        ..DoublingConfig::default()
    };
    let obs = ObsConfig::off();

    let (on, _) =
        doubling::uniform_with_doubling_configured(&p, &UniformScheduler::default(), &obs, &on_cfg)
            .unwrap();
    let (off, _) = doubling::uniform_with_doubling_configured(
        &p,
        &UniformScheduler::default(),
        &obs,
        &off_cfg,
    )
    .unwrap();
    assert!(
        on.attempts > 1,
        "instance must force a multi-attempt search"
    );
    assert_same_search(&on, &off, "uniform");
    assert_eq!(on.cache.artifact_builds, 1);
    assert_eq!(on.cache.replan_cache_hits, u64::from(on.attempts) - 1);
    assert_eq!(off.cache.artifact_builds, 0);
    assert_eq!(off.cache.replan_cache_hits, 0);

    let (on, _) =
        doubling::private_with_doubling_configured(&p, &PrivateScheduler::default(), &obs, &on_cfg)
            .unwrap();
    let (off, _) = doubling::private_with_doubling_configured(
        &p,
        &PrivateScheduler::default(),
        &obs,
        &off_cfg,
    )
    .unwrap();
    assert_same_search(&on, &off, "private");
    assert_eq!(on.cache.artifact_builds, 1);
    assert_eq!(off.cache.replan_cache_hits, 0);
}

#[test]
fn doubling_fallback_path_matches_too() {
    let g = generators::path(12);
    let p = congested_problem(&g);
    let obs = ObsConfig::off();
    let on_cfg = DoublingConfig {
        cap_override: Some(1),
        ..DoublingConfig::default()
    };
    let off_cfg = DoublingConfig {
        reuse_artifact: false,
        cap_override: Some(1),
        ..DoublingConfig::default()
    };
    let (on, _) =
        doubling::uniform_with_doubling_configured(&p, &UniformScheduler::default(), &obs, &on_cfg)
            .unwrap();
    let (off, _) = doubling::uniform_with_doubling_configured(
        &p,
        &UniformScheduler::default(),
        &obs,
        &off_cfg,
    )
    .unwrap();
    assert!(on.fell_back, "a cap of 1 must force the fallback");
    assert_same_search(&on, &off, "uniform fallback");
}
