//! Schema checks for the Chrome `trace_events` export: the JSON emitted by
//! [`das_obs::ObsReport::to_chrome_trace`] for real fused and sharded runs
//! must be loadable by Perfetto / `chrome://tracing` — top-level
//! `traceEvents` array, per-event `name`/`ph`/`pid`/`tid`/`ts` fields,
//! metadata tracks naming each pipeline stage and each shard lane.

use das_core::synthetic::RelayChain;
use das_core::{doubling, run_traced, BlackBoxAlgorithm, DasProblem, UniformScheduler};
use das_graph::generators;
use das_obs::{ObsConfig, Stage, TraceEvent};
use serde_json::Value;
use std::collections::BTreeSet;

fn problem(g: &das_graph::Graph, k: usize) -> DasProblem<'_> {
    let algos = (0..k)
        .map(|i| Box::new(RelayChain::new(i as u64, g)) as Box<dyn BlackBoxAlgorithm>)
        .collect();
    DasProblem::new(g, algos, 17)
}

/// Parses the export and checks every `trace_events` schema requirement,
/// returning the parsed document for run-specific assertions.
fn check_chrome_schema(json: &str) -> Value {
    let doc: Value = serde_json::from_str(json).expect("chrome export is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a real run must emit events");
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a phase");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected event phase {ph}"
        );
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        assert!(e.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
        match ph {
            "M" => {
                // metadata events carry their payload in args.name
                let name = e.get("name").and_then(|v| v.as_str()).unwrap();
                assert!(matches!(name, "process_name" | "thread_name"));
                assert!(e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    .is_some());
            }
            "X" => {
                assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_u64()).is_some());
            }
            "i" => {
                assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
                assert_eq!(e.get("s").and_then(|v| v.as_str()), Some("t"));
            }
            _ => {
                assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
            }
        }
    }
    doc
}

/// Names of the Execute-stage (`pid == 2`) thread-name metadata tracks.
fn execute_lane_names(doc: &Value) -> BTreeSet<String> {
    doc.get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("name").and_then(|v| v.as_str()) == Some("thread_name")
                && e.get("pid").and_then(|v| v.as_u64()) == Some(2)
        })
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string()
        })
        .collect()
}

#[test]
fn fused_run_exports_valid_chrome_trace() {
    let g = generators::path(14);
    let p = problem(&g, 4);
    let traced = run_traced(&p, &UniformScheduler::default(), 5, 1, &ObsConfig::full()).unwrap();
    if !ObsConfig::full().enabled() {
        return; // recording compiled out
    }
    let doc = check_chrome_schema(&traced.report.to_chrome_trace());
    // fused execution runs on exactly one Execute lane
    assert_eq!(
        execute_lane_names(&doc),
        BTreeSet::from(["shard-0".to_string()])
    );
}

#[test]
fn sharded_run_exports_one_track_per_shard() {
    let g = generators::path(14);
    let p = problem(&g, 4);
    let traced = run_traced(&p, &UniformScheduler::default(), 5, 3, &ObsConfig::full()).unwrap();
    if !ObsConfig::full().enabled() {
        return;
    }
    let doc = check_chrome_schema(&traced.report.to_chrome_trace());
    assert_eq!(
        execute_lane_names(&doc),
        BTreeSet::from([
            "shard-0".to_string(),
            "shard-1".to_string(),
            "shard-2".to_string()
        ]),
        "each shard gets its own named track"
    );
}

/// The named `u64` argument of a trace event.
fn span_arg(e: &TraceEvent, key: &str) -> u64 {
    e.args
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("span `{}` missing arg `{key}`", e.name))
        .1
}

/// Regression for the doubling timeline's double-count: the *accepted*
/// attempt's `Plan`-track span must cover only the planning charge — its
/// engine rounds land on the `Execute` track when the final plan runs, so
/// a span of `predicted_engine_rounds` made them appear twice. Also pins
/// the unified `delay_span` convention: every attempt's arg equals the
/// full law span recorded in `attempted_ranges`, for both searches.
#[test]
fn doubling_attempt_spans_cover_planning_only_once() {
    let g = generators::path(12);
    let p = problem(&g, 16); // congested: forces a multi-attempt search
    let obs = ObsConfig::full();
    if !obs.enabled() {
        return; // recording compiled out
    }

    let (uni, report) =
        doubling::uniform_with_doubling_observed(&p, &UniformScheduler::default(), &obs).unwrap();
    let r = report.expect("recording enabled");
    let spans: Vec<&TraceEvent> = r.events.iter().filter(|e| e.stage == Stage::Plan).collect();
    assert!(uni.attempts > 1, "instance must force the search to double");
    assert_eq!(spans.len(), uni.attempts as usize);
    for (i, e) in spans.iter().enumerate() {
        assert_eq!(
            span_arg(e, "delay_span"),
            uni.attempted_ranges[i],
            "attempt {i}'s delay_span must be the law span actually drawn from"
        );
        assert_eq!(
            span_arg(e, "reused_artifact"),
            u64::from(i > 0),
            "every attempt after the first re-sizes the cached artifact"
        );
    }
    let (rejected, accepted) = spans.split_at(spans.len() - 1);
    assert_eq!(accepted[0].name, "attempt accepted");
    assert_eq!(
        accepted[0].dur, 0,
        "uniform planning is free of pre-computation: the accepted span \
         must not re-plot the engine rounds the Execute track already shows"
    );
    for e in rejected {
        assert_eq!(e.name, "attempt rejected: predicted late");
        assert!(e.dur > 0, "rejected attempts show their charged cost");
    }
    // the report still round-trips through the Chrome exporter
    check_chrome_schema(&r.to_chrome_trace());

    let (prv, report) =
        doubling::private_with_doubling_observed(&p, &das_core::PrivateScheduler::default(), &obs)
            .unwrap();
    let r = report.expect("recording enabled");
    let spans: Vec<&TraceEvent> = r.events.iter().filter(|e| e.stage == Stage::Plan).collect();
    assert_eq!(spans.len(), prv.attempts as usize);
    for (i, e) in spans.iter().enumerate() {
        assert_eq!(
            span_arg(e, "delay_span"),
            prv.attempted_ranges[i],
            "private delay_span must use the same full-span convention"
        );
    }
    let accepted = spans.last().unwrap();
    assert_eq!(accepted.name, "attempt accepted");
    assert_eq!(
        accepted.dur,
        prv.outcome.precompute_rounds - prv.wasted_rounds,
        "the accepted private span covers exactly the once-charged pre-computation"
    );
}

#[test]
fn jsonl_export_is_one_valid_object_per_line() {
    let g = generators::path(12);
    let p = problem(&g, 3);
    let traced = run_traced(&p, &UniformScheduler::default(), 5, 2, &ObsConfig::full()).unwrap();
    if !ObsConfig::full().enabled() {
        return;
    }
    let jsonl = traced.report.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), traced.report.events.len());
    for line in lines {
        let v: Value = serde_json::from_str(line).expect("each line is standalone JSON");
        assert!(v.get("stage").is_some());
        assert!(v.get("ts").is_some());
    }
}
