//! Fault injection for the networked path: every failure mode must
//! surface as its *typed* [`ExecError`] within the configured deadline —
//! never a hang. Each test pins a short `io_timeout_ms` and asserts both
//! the error variant and that wall-clock stayed well under a generous
//! multiple of that deadline.

use das_core::synthetic::Prescribed;
use das_core::{
    execute_plan_networked, problem_fingerprint, run_worker, wire, BlackBoxAlgorithm, DasProblem,
    ExecError, NetConfig, SchedError, Scheduler, SequentialScheduler, PROTOCOL_VERSION,
};
use das_graph::{generators, Graph};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn small_graph() -> Graph {
    generators::layered(2, 2)
}

fn build_problem(g: &Graph) -> DasProblem<'_> {
    let e = g.edges().next().expect("at least one edge");
    let (a, b) = g.endpoints(e);
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> =
        vec![Box::new(Prescribed::new(0, g, &[(0, a, b), (2, b, a)]))];
    DasProblem::new(g, algos, 7)
}

// -- minimal test-side framing, hand-rolled so rogue peers can misbehave --

fn send_frame(stream: &mut TcpStream, kind: u8, body: &[u8]) {
    let mut buf = Vec::with_capacity(5 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(body);
    stream.write_all(&buf).expect("frame write");
}

fn recv_frame(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("frame body");
    (header[4], body)
}

fn join_body(problem: &DasProblem<'_>, version: u32) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&version.to_le_bytes());
    b.extend_from_slice(&problem_fingerprint(problem).to_le_bytes());
    b
}

fn exec_err(result: Result<impl std::fmt::Debug, SchedError>) -> ExecError {
    match result {
        Err(SchedError::Exec(e)) => e,
        other => panic!("expected a typed ExecError, got {other:?}"),
    }
}

/// Kill a worker mid-big-round: the rogue handshakes correctly, sends its
/// first (empty) outbox, reads the inbox, then drops the socket while the
/// coordinator is waiting for its activity report. The coordinator must
/// return `WorkerDisconnected {{ shard: 0 }}` within the deadline.
#[test]
fn worker_killed_mid_big_round_yields_typed_disconnect() {
    let g = small_graph();
    let p = build_problem(&g);
    let plan = SequentialScheduler.plan(&p, 7).expect("plan");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let net = NetConfig::default().with_io_timeout_ms(2_000);
    let started = Instant::now();
    let rogue = std::thread::spawn({
        let p_fp = problem_fingerprint(&p);
        move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut join = Vec::new();
            join.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
            join.extend_from_slice(&p_fp.to_le_bytes());
            send_frame(&mut s, wire::JOIN, &join);
            let (kind, _) = recv_frame(&mut s);
            assert_eq!(kind, wire::ASSIGN);
            // one well-formed empty outbox for big-round 0...
            let mut outbox = Vec::new();
            outbox.extend_from_slice(&0u64.to_le_bytes());
            outbox.extend_from_slice(&0u32.to_le_bytes());
            send_frame(&mut s, wire::OUTBOX, &outbox);
            let (kind, _) = recv_frame(&mut s);
            assert_eq!(kind, wire::INBOX);
            // ...then die mid-big-round, before reporting activity
        }
    });
    let err = exec_err(execute_plan_networked(&p, &plan, 1, listener, &net));
    rogue.join().expect("rogue thread");
    match err {
        ExecError::WorkerDisconnected { shard, .. } => assert_eq!(shard, 0),
        other => panic!("expected WorkerDisconnected, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "disconnect detection must be deadline-bounded"
    );
}

/// A peer that promises a 100-byte frame, delivers 4, and closes must
/// surface as `TruncatedFrame` — not a hang, not a generic error.
#[test]
fn truncated_frame_yields_typed_error() {
    let g = small_graph();
    let p = build_problem(&g);
    let plan = SequentialScheduler.plan(&p, 7).expect("plan");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let net = NetConfig::default().with_io_timeout_ms(2_000);
    let started = Instant::now();
    let rogue = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut clipped = Vec::new();
        clipped.extend_from_slice(&100u32.to_le_bytes()); // promises 100 bytes
        clipped.push(wire::JOIN);
        clipped.extend_from_slice(&[1, 2, 3, 4]); // delivers 4
        s.write_all(&clipped).expect("partial frame");
        // dropping s closes the stream mid-body
    });
    let err = exec_err(execute_plan_networked(&p, &plan, 1, listener, &net));
    rogue.join().expect("rogue thread");
    assert!(
        matches!(err, ExecError::TruncatedFrame { .. }),
        "expected TruncatedFrame, got {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(10));
}

/// A coordinator announcing a slice hash that does not match the shipped
/// slice bytes must be refused by the worker with `PlanHashMismatch`.
#[test]
fn mismatched_plan_hash_yields_typed_error() {
    let g = small_graph();
    let p = build_problem(&g);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let started = Instant::now();
    let fake_coordinator = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let (kind, _) = recv_frame(&mut s);
        assert_eq!(kind, wire::JOIN);
        let bogus_plan = b"{}";
        let mut assign = Vec::new();
        assign.extend_from_slice(&0u32.to_le_bytes()); // shard
        assign.extend_from_slice(&1u32.to_le_bytes()); // shards
        assign.extend_from_slice(&0u64.to_le_bytes()); // full-plan hash
        assign.extend_from_slice(&0xdead_beefu64.to_le_bytes()); // wrong slice hash
        assign.extend_from_slice(&(bogus_plan.len() as u32).to_le_bytes());
        assign.extend_from_slice(bogus_plan);
        send_frame(&mut s, wire::ASSIGN, &assign);
        // hold the socket open so the worker's error is the hash check,
        // not a disconnect
        let mut sink = [0u8; 16];
        let _ = s.read(&mut sink);
    });
    let net = NetConfig::default().with_io_timeout_ms(2_000);
    let err = exec_err(run_worker(&p, &addr, &net));
    fake_coordinator.join().expect("fake coordinator");
    match err {
        ExecError::PlanHashMismatch { expected, got } => {
            assert_eq!(expected, 0xdead_beef);
            assert_ne!(got, expected);
        }
        other => panic!("expected PlanHashMismatch, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(10));
}

/// A worker speaking a different protocol version is rejected: the
/// coordinator returns `VersionMismatch` and the worker receives a REJECT
/// frame carrying both versions.
#[test]
fn version_mismatch_is_rejected_both_sides() {
    let g = small_graph();
    let p = build_problem(&g);
    let plan = SequentialScheduler.plan(&p, 7).expect("plan");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let net = NetConfig::default().with_io_timeout_ms(2_000);
    let join = join_body(&p, 999);
    let rogue = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        send_frame(&mut s, wire::JOIN, &join);
        recv_frame(&mut s)
    });
    let err = exec_err(execute_plan_networked(&p, &plan, 1, listener, &net));
    match err {
        ExecError::VersionMismatch {
            coordinator,
            worker,
        } => {
            assert_eq!(coordinator, PROTOCOL_VERSION);
            assert_eq!(worker, 999);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    let (kind, body) = rogue.join().expect("rogue thread");
    assert_eq!(kind, wire::REJECT);
    let code = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
    assert_eq!(code, wire::REJECT_VERSION);
}

/// Two workers racing for a single shard slot: exactly one wins the slot
/// and completes; the straggler gets a typed `LateJoin` REJECT from the
/// doorman instead of a hang or a silent drop.
#[test]
fn late_join_after_assignment_is_rejected_typed() {
    let g = small_graph();
    let p = build_problem(&g);
    let plan = SequentialScheduler.plan(&p, 7).expect("plan");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let net = NetConfig::default().with_io_timeout_ms(5_000);
    let started = Instant::now();
    let results: Vec<Result<_, SchedError>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let net = net.clone();
                let p = &p;
                scope.spawn(move || run_worker(p, &addr, &net))
            })
            .collect();
        execute_plan_networked(&p, &plan, 1, listener, &net).expect("one-worker run");
        workers
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    let won = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(won, 1, "exactly one worker may win the slot: {results:?}");
    let loser = results
        .into_iter()
        .find_map(|r| r.err())
        .expect("one loser");
    match exec_err(Err::<(), _>(loser)) {
        ExecError::LateJoin { shards } => assert_eq!(shards, 1),
        other => panic!("expected LateJoin, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "late-JOIN rejection must be deadline-bounded"
    );
}

/// A coordinator with no workers must time out typed, not hang.
#[test]
fn missing_workers_time_out() {
    let g = small_graph();
    let p = build_problem(&g);
    let plan = SequentialScheduler.plan(&p, 7).expect("plan");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let net = NetConfig::default().with_io_timeout_ms(300);
    let started = Instant::now();
    let err = exec_err(execute_plan_networked(&p, &plan, 2, listener, &net));
    match err {
        ExecError::NetTimeout { during, ms } => {
            assert!(during.contains("0 of 2 joined"), "got: {during}");
            assert_eq!(ms, 300);
        }
        other => panic!("expected NetTimeout, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(280),
        "must wait out the deadline"
    );
    assert!(elapsed < Duration::from_secs(5), "must not hang");
}

/// A worker pointed at a dead address must exhaust its bounded retries and
/// return `NetTimeout`, not spin forever.
#[test]
fn worker_connect_retries_are_bounded() {
    let g = small_graph();
    let p = build_problem(&g);
    // grab a port nobody is listening on
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let mut net = NetConfig::default().with_io_timeout_ms(500);
    net.connect_retries = 3;
    net.connect_backoff_ms = 20;
    let started = Instant::now();
    let err = exec_err(run_worker(&p, &dead, &net));
    assert!(
        matches!(err, ExecError::NetTimeout { .. }),
        "expected NetTimeout, got {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(10));
}

/// Every networked error variant renders a human-oriented message.
#[test]
fn net_error_display_is_descriptive() {
    let cases = [
        (
            ExecError::WorkerDisconnected {
                shard: 2,
                detail: "connection reset".to_string(),
            },
            "worker for shard 2 disconnected",
        ),
        (
            ExecError::TruncatedFrame {
                detail: "mid-body".to_string(),
            },
            "truncated frame",
        ),
        (
            ExecError::VersionMismatch {
                coordinator: 1,
                worker: 9,
            },
            "version mismatch",
        ),
        (
            ExecError::PlanHashMismatch {
                expected: 1,
                got: 2,
            },
            "plan hash mismatch",
        ),
        (
            ExecError::NetTimeout {
                during: "x".to_string(),
                ms: 5,
            },
            "timed out",
        ),
        (ExecError::LateJoin { shards: 3 }, "late JOIN rejected"),
        (
            ExecError::Aborted {
                detail: "ctrl-c".to_string(),
            },
            "aborted",
        ),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
    }
}
