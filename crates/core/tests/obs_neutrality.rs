//! The observability neutrality property: recording must NEVER perturb
//! outcomes. For every scheduler, every shard count, every engine
//! (legacy row, columnar default, and batched), and every obs level, the
//! `ScheduleOutcome` must be byte-identical to the unobserved fused
//! execution — instrumentation reads the deterministic big-round clock and
//! never feeds anything back into the engine.
//!
//! CI additionally enforces this end-to-end on the bench binary: the
//! `obs-neutrality` job diffs `bench_smoke --dump-outcome` files between
//! `--obs full` and `--obs off` runs.

use das_core::synthetic::{FloodBall, Prescribed, RelayChain};
use das_core::{
    execute_plan, execute_plan_observed, execute_plan_observed_with, execute_plan_sharded_observed,
    execute_plan_sharded_observed_with, BlackBoxAlgorithm, DasProblem, EngineKind, ExecutorConfig,
    InterleaveScheduler, PrivateScheduler, Scheduler, SequentialScheduler, TunedUniformScheduler,
    UniformScheduler,
};
use das_graph::{generators, Graph, NodeId};
use das_obs::ObsConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn obs_levels() -> [ObsConfig; 3] {
    [ObsConfig::off(), ObsConfig::metrics(), ObsConfig::full()]
}

/// A random mixed workload (prescribed / flood / relay) on `g`.
fn build_algos(g: &Graph, k: usize, seed: u64) -> Vec<Box<dyn BlackBoxAlgorithm>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    (0..k as u64)
        .map(|i| match i % 3 {
            0 => {
                let triples: Vec<(u32, NodeId, NodeId)> = (0..4)
                    .map(|_| {
                        let e = das_graph::EdgeId(rng.gen_range(0..m));
                        let (a, b) = g.endpoints(e);
                        let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                        (rng.gen_range(0..5u32), from, to)
                    })
                    .collect();
                Box::new(Prescribed::new(i, g, &triples)) as Box<dyn BlackBoxAlgorithm>
            }
            1 => Box::new(FloodBall::new(i, g, NodeId(rng.gen_range(0..n)), 3)),
            _ => {
                let mut route = vec![NodeId(rng.gen_range(0..n))];
                for _ in 0..4 {
                    let cur = *route.last().expect("non-empty");
                    let nbrs = g.neighbors(cur);
                    let (next, _) = nbrs[rng.gen_range(0..nbrs.len())];
                    route.push(next);
                }
                Box::new(RelayChain::along(i, g, route))
            }
        })
        .collect()
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SequentialScheduler),
        Box::new(InterleaveScheduler),
        Box::new(UniformScheduler::default()),
        Box::new(TunedUniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ]
}

/// Asserts obs-on == obs-off bytes for every scheduler, obs level, and
/// shard count on the given graph.
fn assert_obs_neutral(g: &Graph, k: usize, seed: u64) {
    let p = DasProblem::new(g, build_algos(g, k, seed), seed);
    for sched in all_schedulers() {
        let plan = sched.plan(&p, seed).expect("model-valid workload");
        let baseline = format!("{:?}", execute_plan(&p, &plan).expect("fused execution"));
        for obs in obs_levels() {
            let (fused, _) = execute_plan_observed(&p, &plan, &obs).expect("observed fused");
            assert_eq!(
                baseline,
                format!("{fused:?}"),
                "scheduler {} diverged under fused obs {:?}",
                sched.name(),
                obs.mode
            );
            // The legacy row engine must match the columnar baseline under
            // every obs level too.
            let row_cfg = ExecutorConfig::default().with_engine(EngineKind::Row);
            let (row, _) =
                execute_plan_observed_with(&p, &plan, &obs, &row_cfg).expect("observed row");
            assert_eq!(
                baseline,
                format!("{row:?}"),
                "scheduler {} row engine diverged under fused obs {:?}",
                sched.name(),
                obs.mode
            );
            // Probes in the batched engine count block-dispatched steps, so
            // the batched outcome must stay neutral under every obs level.
            let batched_cfg = ExecutorConfig::default().with_engine(EngineKind::ColumnarBatched);
            let (batched, _) = execute_plan_observed_with(&p, &plan, &obs, &batched_cfg)
                .expect("observed batched");
            assert_eq!(
                baseline,
                format!("{batched:?}"),
                "scheduler {} batched engine diverged under fused obs {:?}",
                sched.name(),
                obs.mode
            );
            for shards in SHARD_COUNTS {
                let (sharded, _, _) = execute_plan_sharded_observed(&p, &plan, shards, &obs)
                    .expect("observed sharded");
                assert_eq!(
                    baseline,
                    format!("{sharded:?}"),
                    "scheduler {} diverged under obs {:?} at {} shards",
                    sched.name(),
                    obs.mode,
                    shards
                );
                let batched_shard_cfg = ExecutorConfig::default()
                    .with_shards(shards)
                    .with_engine(EngineKind::ColumnarBatched);
                let (batched_sharded, _, _) =
                    execute_plan_sharded_observed_with(&p, &plan, &obs, &batched_shard_cfg)
                        .expect("observed batched sharded");
                assert_eq!(
                    baseline,
                    format!("{batched_sharded:?}"),
                    "scheduler {} batched engine diverged under obs {:?} at {} shards",
                    sched.name(),
                    obs.mode,
                    shards
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Recording is outcome-neutral on random connected G(n, p) graphs,
    /// for every scheduler, obs level, and shard count.
    #[test]
    fn observation_never_perturbs_outcomes_on_gnp(gs in 0u64..200, ws in 0u64..200, k in 1usize..5) {
        let g = generators::gnp_connected(12, 2.5 / 12.0, gs);
        assert_obs_neutral(&g, k, ws);
    }

    /// Same property on layered graphs (skewed degrees stress the
    /// partitioner and hence the per-shard probes differently).
    #[test]
    fn observation_never_perturbs_outcomes_on_layered(ws in 0u64..400, k in 1usize..5) {
        let g = generators::layered(4, 3);
        assert_obs_neutral(&g, k, ws);
    }
}

/// Issues one blocking HTTP/1.1 GET against the live server and returns
/// the raw response (head + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect to live server");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: live\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    buf
}

/// The tentpole neutrality leg: a live HTTP server attached to the run
/// with a client polling it *mid-execution* must leave the
/// `ScheduleOutcome` byte-identical — publication is write-only and
/// clocked on big-round barriers, so concurrent readers cannot feed
/// anything back into the engine.
#[test]
fn live_server_polling_mid_run_is_outcome_neutral() {
    use das_core::{run_traced, run_traced_live};
    use das_obs::{LiveHub, ObsServer};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let g = generators::gnp_connected(14, 0.3, 11);
    let p = DasProblem::new(&g, build_algos(&g, 4, 11), 11);
    let sched = UniformScheduler::default();
    let obs = ObsConfig::full();
    for shards in [1usize, 3] {
        let baseline = run_traced(&p, &sched, 11, shards, &obs).expect("unserved run");
        let hub = Arc::new(LiveHub::new());
        let server = ObsServer::bind("127.0.0.1:0", hub.clone()).expect("bind live server");
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let poller = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                // at least one full poll, then keep hammering until the
                // run completes — overlapping the execution when it is
                // long enough to be overlapped
                let mut polls = 0u32;
                loop {
                    for path in ["/status", "/profile", "/metrics", "/events?since=0"] {
                        let rsp = http_get(addr, path);
                        assert!(rsp.starts_with("HTTP/1.1 200"), "{path} -> {rsp}");
                    }
                    polls += 1;
                    if stop.load(Ordering::SeqCst) {
                        return polls;
                    }
                }
            })
        };
        let served =
            run_traced_live(&p, &sched, 11, shards, &obs, Some(hub.clone())).expect("served run");
        stop.store(true, Ordering::SeqCst);
        let polls = poller.join().expect("poller thread");
        assert!(polls > 0, "the client must have polled at least once");
        assert_eq!(
            format!("{:?}", baseline.outcome),
            format!("{:?}", served.outcome),
            "live serving perturbed the outcome at {shards} shard(s)"
        );
        assert_eq!(baseline.report.events, served.report.events);
        assert_eq!(baseline.report.metrics, served.report.metrics);
        let status = http_get(addr, "/status");
        assert!(
            status.contains("\"done\":true"),
            "hub must report done after the run: {status}"
        );
    }
}

/// Wall-clock recording is the one explicitly nondeterministic channel;
/// even with it on, outcomes must stay byte-identical (only `wall.*`
/// metrics may differ between runs).
#[test]
fn wall_clock_recording_is_outcome_neutral() {
    let g = generators::gnp_connected(12, 0.25, 7);
    let p = DasProblem::new(&g, build_algos(&g, 4, 7), 7);
    let sched = UniformScheduler::default();
    let plan = sched.plan(&p, 7).unwrap();
    let baseline = format!("{:?}", execute_plan(&p, &plan).unwrap());
    let mut obs = ObsConfig::full();
    obs.wall_clock = true;
    for shards in SHARD_COUNTS {
        let (outcome, _, report) = execute_plan_sharded_observed(&p, &plan, shards, &obs).unwrap();
        assert_eq!(baseline, format!("{outcome:?}"));
        if let Some(r) = report {
            // wall-clock lives in the wall.* side channel, never in events
            assert!(r
                .events
                .iter()
                .all(|e| e.args.iter().all(|(k, _)| k != "wall_ns")));
        }
    }
}
