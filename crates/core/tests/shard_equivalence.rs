//! Property-based equivalence: the sharded big-round-synchronous executor
//! must produce the *byte-identical* outcome of the sequential (fused)
//! `execute_plan`, for every plan, every scheduler, and every shard count —
//! and the legacy row engine and the batched engine must both agree with
//! the columnar default, fused and sharded.
//!
//! CI runs this file under `RAYON_NUM_THREADS=1` and `=8`; the sharded
//! executor uses one dedicated thread per shard, so the equality must hold
//! regardless of the ambient thread-pool width.

use das_core::synthetic::{FloodBall, Prescribed, RelayChain};
use das_core::{
    execute_plan, execute_plan_sharded, execute_plan_sharded_with, execute_plan_with,
    BlackBoxAlgorithm, DasProblem, EngineKind, ExecutorConfig, InterleaveScheduler,
    PrivateScheduler, Scheduler, SequentialScheduler, TunedUniformScheduler, UniformScheduler,
};
use das_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shard counts the property sweeps, including degenerate (1) and
/// more-shards-than-useful (7 on small graphs).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// A random mixed workload (prescribed / flood / relay) on `g`.
fn build_algos(g: &Graph, k: usize, seed: u64) -> Vec<Box<dyn BlackBoxAlgorithm>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    (0..k as u64)
        .map(|i| match i % 3 {
            0 => {
                let triples: Vec<(u32, NodeId, NodeId)> = (0..4)
                    .map(|_| {
                        let e = das_graph::EdgeId(rng.gen_range(0..m));
                        let (a, b) = g.endpoints(e);
                        let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                        (rng.gen_range(0..5u32), from, to)
                    })
                    .collect();
                Box::new(Prescribed::new(i, g, &triples)) as Box<dyn BlackBoxAlgorithm>
            }
            1 => Box::new(FloodBall::new(i, g, NodeId(rng.gen_range(0..n)), 3)),
            _ => {
                let mut route = vec![NodeId(rng.gen_range(0..n))];
                for _ in 0..4 {
                    let cur = *route.last().expect("non-empty");
                    let nbrs = g.neighbors(cur);
                    let (next, _) = nbrs[rng.gen_range(0..nbrs.len())];
                    route.push(next);
                }
                Box::new(RelayChain::along(i, g, route))
            }
        })
        .collect()
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SequentialScheduler),
        Box::new(InterleaveScheduler),
        Box::new(UniformScheduler::default()),
        Box::new(TunedUniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ]
}

/// Asserts the partition-dependent [`das_core::ShardReport`] is internally
/// consistent and agrees with the fused outcome's totals.
fn assert_shard_report_consistent(
    g: &Graph,
    fused: &das_core::ScheduleOutcome,
    report: &das_core::ShardReport,
    requested_shards: usize,
    sched: &str,
) {
    let ctx = format!("scheduler {sched}, {requested_shards} shards");
    assert_eq!(
        report.shards,
        requested_shards.min(g.node_count()),
        "{ctx}: shard count must be the request clamped to n"
    );
    assert_eq!(report.per_shard.len(), report.shards, "{ctx}");
    // every node and its degree is owned by exactly one shard
    let nodes: usize = report.per_shard.iter().map(|s| s.nodes).sum();
    assert_eq!(nodes, g.node_count(), "{ctx}: nodes must partition");
    let degree: usize = report.per_shard.iter().map(|s| s.degree).sum();
    assert_eq!(
        degree,
        2 * g.edge_count(),
        "{ctx}: owned degrees must sum to the handshake total"
    );
    // per-shard delivery sums to the (partition-independent) fused total
    let delivered: u64 = report.per_shard.iter().map(|s| s.delivered).sum();
    assert_eq!(
        delivered, fused.stats.delivered,
        "{ctx}: per-shard delivered must sum to the fused total"
    );
    // the headline cross-shard figure is exactly the per-shard sends
    let cross: u64 = report.per_shard.iter().map(|s| s.cross_sent).sum();
    assert_eq!(
        cross, report.cross_shard_messages,
        "{ctx}: cross_shard_messages must equal the per-shard sum"
    );
    if report.shards == 1 {
        assert_eq!(report.cross_shard_messages, 0, "{ctx}");
    }
    // cross-shard traffic never exceeds total traffic
    assert!(
        report.cross_shard_messages <= fused.stats.delivered + fused.stats.late_messages,
        "{ctx}: cross-shard sends cannot exceed all sends"
    );
    for (i, s) in report.per_shard.iter().enumerate() {
        assert_eq!(s.shard, i, "{ctx}: per_shard must be in shard order");
    }
}

/// Asserts row == columnar == sharded bytes for every scheduler and shard
/// count on the given graph.
fn assert_equivalent(g: &Graph, k: usize, seed: u64) {
    let p = DasProblem::new(g, build_algos(g, k, seed), seed);
    for sched in all_schedulers() {
        let plan = sched.plan(&p, seed).expect("model-valid workload");
        let fused = execute_plan(&p, &plan).expect("fused execution");
        let fused_bytes = format!("{fused:?}");
        // The legacy row engine is the reference semantics: the columnar
        // default must reproduce it byte for byte.
        let row_cfg = ExecutorConfig::default()
            .with_phase_len(plan.phase_len)
            .with_engine(EngineKind::Row);
        let row = execute_plan_with(&p, &plan, &row_cfg).expect("row execution");
        assert_eq!(
            fused_bytes,
            format!("{row:?}"),
            "scheduler {}: columnar fused diverged from the row engine",
            sched.name()
        );
        // The batched engine (node-block step_block dispatch over slabs)
        // must also reproduce the row reference byte for byte.
        let batched_cfg = ExecutorConfig::default()
            .with_phase_len(plan.phase_len)
            .with_engine(EngineKind::ColumnarBatched);
        let batched = execute_plan_with(&p, &plan, &batched_cfg).expect("batched execution");
        assert_eq!(
            fused_bytes,
            format!("{batched:?}"),
            "scheduler {}: batched fused diverged from the row engine",
            sched.name()
        );
        for shards in SHARD_COUNTS {
            let (sharded, report) =
                execute_plan_sharded(&p, &plan, shards).expect("sharded execution");
            assert_eq!(
                fused_bytes,
                format!("{sharded:?}"),
                "scheduler {} diverged at {} shards",
                sched.name(),
                shards
            );
            assert_shard_report_consistent(g, &fused, &report, shards, sched.name());
            // Sharded execution through the row engine must also agree.
            let row_shard_cfg = ExecutorConfig::default()
                .with_shards(shards)
                .with_engine(EngineKind::Row);
            let (row_sharded, _) =
                execute_plan_sharded_with(&p, &plan, &row_shard_cfg).expect("row sharded");
            assert_eq!(
                fused_bytes,
                format!("{row_sharded:?}"),
                "scheduler {} row engine diverged at {} shards",
                sched.name(),
                shards
            );
            // ... as must batched shard workers.
            let batched_shard_cfg = ExecutorConfig::default()
                .with_shards(shards)
                .with_engine(EngineKind::ColumnarBatched);
            let (batched_sharded, _) =
                execute_plan_sharded_with(&p, &plan, &batched_shard_cfg).expect("batched sharded");
            assert_eq!(
                fused_bytes,
                format!("{batched_sharded:?}"),
                "scheduler {} batched engine diverged at {} shards",
                sched.name(),
                shards
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded execution is byte-identical to fused on random connected
    /// G(n, p) graphs, for every scheduler and shard count.
    #[test]
    fn sharded_matches_fused_on_gnp(gs in 0u64..200, ws in 0u64..200, k in 1usize..5) {
        let g = generators::gnp_connected(12, 2.5 / 12.0, gs);
        assert_equivalent(&g, k, ws);
    }

    /// Same property on layered graphs, whose skewed degree profile
    /// stresses the degree-balanced partitioner differently (workload
    /// randomness comes from `ws`).
    #[test]
    fn sharded_matches_fused_on_layered(ws in 0u64..400, k in 1usize..5) {
        let g = generators::layered(4, 3);
        assert_equivalent(&g, k, ws);
    }
}
