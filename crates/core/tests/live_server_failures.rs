//! Fault injection for the live observability server: rogue HTTP clients
//! (clipped requests, slow-loris dribbles, oversized heads) hammer the
//! server *while a live-attached run executes*, and the run must complete
//! with a byte-identical outcome inside a bounded wall-clock — the server
//! reads are deadline-bounded and size-capped, and publication is
//! write-only, so no client behaviour can wedge or perturb the engine.
//!
//! A second leg drives the networked coordinator with a live hub attached
//! and asserts the per-worker telemetry (ACTIVITY-piggybacked totals and
//! coordinator-side link traffic) lands on the HTTP endpoints.

use das_core::synthetic::RelayChain;
use das_core::{
    execute_plan, execute_plan_networked, run_traced, run_traced_live, run_worker,
    BlackBoxAlgorithm, DasProblem, NetConfig, Scheduler, UniformScheduler,
};
use das_graph::generators;
use das_obs::{LiveHub, ObsConfig, ObsServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_problem(g: &das_graph::Graph) -> DasProblem<'_> {
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..6)
        .map(|i| Box::new(RelayChain::new(i, g)) as Box<dyn BlackBoxAlgorithm>)
        .collect();
    DasProblem::new(g, algos, 13)
}

/// One well-formed blocking GET; returns the raw response text.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: live\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read");
    buf
}

#[test]
fn rogue_http_clients_cannot_wedge_or_perturb_a_live_run() {
    let g = generators::path(40);
    let p = build_problem(&g);
    let sched = UniformScheduler::default();
    let obs = ObsConfig::full();
    let baseline = run_traced(&p, &sched, 13, 3, &obs).expect("unserved run");

    let hub = Arc::new(LiveHub::new());
    let server = ObsServer::bind("127.0.0.1:0", hub.clone()).expect("bind");
    let addr = server.local_addr();
    let started = Instant::now();

    // Rogue 1: a clipped request — half a request line, then a hard close.
    let clipped = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /status HTT").expect("partial write");
        // dropping the stream closes it mid-head
    });
    // Rogue 2: slow-loris — one byte at a time, never finishing the head.
    // The server's read deadline (2 s) drops it; the thread gives up on
    // its own schedule either way.
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        for b in b"GET /status" {
            if s.write_all(&[*b]).is_err() {
                break; // server already hung up — that is the point
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    // Rogue 3: an oversized head — far past the 8 KiB cap, no terminator.
    let oversized = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        let junk = vec![b'A'; 64 * 1024];
        let _ = s.write_all(b"GET /");
        let _ = s.write_all(&junk);
        let mut rsp = String::new();
        let _ = s.read_to_string(&mut rsp);
        rsp
    });

    // The live run proceeds under fire.
    let served = run_traced_live(&p, &sched, 13, 3, &obs, Some(hub)).expect("served run");
    assert_eq!(
        format!("{:?}", baseline.outcome),
        format!("{:?}", served.outcome),
        "rogue clients perturbed a live run"
    );

    clipped.join().expect("clipped rogue");
    let oversized_rsp = oversized.join().expect("oversized rogue");
    assert!(
        oversized_rsp.is_empty() || oversized_rsp.starts_with("HTTP/1.1 400"),
        "an oversized head must be rejected, got: {oversized_rsp:?}"
    );
    // A well-formed client still gets clean answers after all of that.
    let status = http_get(addr, "/status");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(status.contains("\"done\":true"), "{status}");
    loris.join().expect("slow-loris rogue");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "live run under rogue fire must finish promptly"
    );
}

#[test]
fn networked_coordinator_exposes_per_worker_telemetry() {
    let g = generators::path(40);
    let p = build_problem(&g);
    let plan = UniformScheduler::default().plan(&p, 13).expect("plan");
    let baseline = format!("{:?}", execute_plan(&p, &plan).expect("fused"));

    let hub = Arc::new(LiveHub::new());
    hub.set_run_info("networked", 3);
    let server = ObsServer::bind("127.0.0.1:0", hub.clone()).expect("bind obs");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind coord");
    let coord_addr = listener.local_addr().expect("addr");
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let g = generators::path(40);
                let p = build_problem(&g);
                run_worker(&p, &coord_addr.to_string(), &NetConfig::default()).expect("worker")
            })
        })
        .collect();
    let net = NetConfig::default().with_live(Some(hub.clone()));
    let (outcome, report) =
        execute_plan_networked(&p, &plan, 3, listener, &net).expect("networked run");
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(baseline, format!("{outcome:?}"));

    // The ACTIVITY-piggybacked totals mirror the workers' final stats...
    let profile = http_get(server.local_addr(), "/profile");
    for s in &report.shard.per_shard {
        let lane = format!(
            "{{\"shard\":{},\"steps\":{},\"delivered\":{},",
            s.shard, s.steps, s.delivered
        );
        assert!(
            profile.contains(&lane),
            "lane totals for shard {} missing: {profile}",
            s.shard
        );
    }
    // ...and the coordinator-side link traffic matches the NetReport.
    let net_body = http_get(server.local_addr(), "/net");
    assert_eq!(report.traffic.len(), 3);
    for (shard, t) in report.traffic.iter().enumerate() {
        assert!(t.bytes_sent > 0 && t.bytes_received > 0);
        let link = format!(
            "{{\"shard\":{shard},\"frames_sent\":{},\"bytes_sent\":{},",
            t.frames_sent, t.bytes_sent
        );
        assert!(
            net_body.contains(&link),
            "link for shard {shard} missing: {net_body}"
        );
    }
}
